#!/usr/bin/env python3
"""Quickstart: deploy TeaStore on a 128-logical-CPU server and load it.

Builds the paper's platform, deploys the six-service TeaStore with the
tuned default configuration, drives it with 1000 closed-loop browse users
for a few simulated seconds, and prints the headline metrics plus the
per-service CPU breakdown.

Run:  python examples/quickstart.py
"""

from repro import (
    ClosedLoopWorkload,
    Deployment,
    TeaStoreConfig,
    build_teastore,
    run_experiment,
    single_socket_rome,
)


def main() -> None:
    machine = single_socket_rome()
    print(machine.describe())
    print()

    deployment = Deployment(machine, seed=42)
    store = build_teastore(deployment, TeaStoreConfig())
    print(f"deployed: {store}")

    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=1000, think_time=0.125)
    result = run_experiment(deployment, workload, warmup=1.0, duration=3.0)

    print()
    print(f"throughput:        {result.throughput:8.1f} req/s")
    print(f"mean latency:      {result.latency_mean * 1e3:8.2f} ms")
    print(f"p99 latency:       {result.latency_p99 * 1e3:8.2f} ms")
    print(f"machine util:      {result.machine_utilization * 100:8.1f} %")
    print(f"errors:            {result.errors:8d}")
    print()
    print("per-service CPU share:")
    for service, share in sorted(result.service_share.items(),
                                 key=lambda kv: kv[1], reverse=True):
        bar = "#" * int(share * 50)
        print(f"  {service:12s} {share * 100:5.1f}%  {bar}")


if __name__ == "__main__":
    main()
