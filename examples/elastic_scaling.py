#!/usr/bin/env python3
"""Elastic scaling under diurnal load (extension beyond the paper).

Combines the paper's two levers — per-service sizing and CCX-granular
placement — into a control loop: a WebUI-like frontend service scales
between 1 and 6 L3 domains as an open-loop arrival rate swings through a
day-like sine wave.  Prints a timeline of rate, replica count, and
utilization.

Run:  python examples/elastic_scaling.py
"""

import math

from repro import Deployment, ServiceSpec, WorkloadProfile, medium_machine
from repro._units import mib, ms
from repro.placement import Autoscaler
from repro.workload import OpenLoopWorkload

PERIOD = 6.0  # simulated "day"


def main() -> None:
    deployment = Deployment(medium_machine(), seed=9)
    frontend = ServiceSpec("frontend", WorkloadProfile(
        "frontend", code_bytes=mib(3.0), data_bytes=mib(5.0),
        mem_intensity=0.4, frontend_intensity=0.6), workers=48)

    @frontend.endpoint("page")
    def page(ctx):
        yield ctx.compute(ms(2.5))
        return "html"

    scaler = Autoscaler(deployment, frontend, ccx_pool=[0, 1, 2, 3, 4, 5],
                        min_replicas=1, interval=0.25,
                        high_watermark=0.6, low_watermark=0.25)

    def diurnal(t):
        phase = 2 * math.pi * t / PERIOD
        return 2000.0 + 1700.0 * math.sin(phase)

    def session(user_id):
        while True:
            yield ("frontend", "page", None)

    workload = OpenLoopWorkload(deployment, session, rate=diurnal)
    workload.start()

    print(f"{'t':>5s} {'rate/s':>8s} {'replicas':>9s} {'util':>6s} "
          f"{'served':>8s}")
    served_before = 0
    for step in range(1, int(2 * PERIOD / 0.5) + 1):
        deployment.run(until=step * 0.5)
        served = workload.meter.lifetime_count
        print(f"{deployment.sim.now:5.1f} "
              f"{workload.current_rate():8.0f} "
              f"{scaler.replica_count:9d} "
              f"{scaler.last_utilization:6.2f} "
              f"{served - served_before:8d}")
        served_before = served

    print(f"\nscale-ups: {len(scaler.scale_ups())}, "
          f"scale-downs: {len(scaler.scale_downs())}, "
          f"errors: {workload.errors}")


if __name__ == "__main__":
    main()
