#!/usr/bin/env python3
"""Scale-up study: core count, SMT, and boost — with USL fits.

Reproduces the characterization arc of the paper on one machine:

* throughput versus logical CPUs enabled (distinct cores first, then SMT
  siblings), with a Universal Scalability Law fit;
* the SMT on/off comparison at 64 physical cores;
* a text plot of the scaling curve.

Run:  python examples/scale_up_study.py
"""

from repro import (
    ClosedLoopWorkload,
    CpuSet,
    Deployment,
    TeaStoreConfig,
    build_teastore,
    fit_usl,
    run_experiment,
    single_socket_rome,
)

CPU_COUNTS = (16, 32, 64, 96, 128)


def measure(machine, online, users):
    deployment = Deployment(machine, seed=3, online=online)
    store = build_teastore(deployment, TeaStoreConfig())
    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=users, think_time=0.125)
    return run_experiment(deployment, workload, warmup=1.0, duration=2.5)


def text_plot(points, width=50):
    peak = max(value for __, value in points)
    for label, value in points:
        bar = "#" * max(1, int(value / peak * width))
        print(f"  {label:>4} lcpus |{bar} {value:.0f} req/s")


def main() -> None:
    machine = single_socket_rome()
    print("=== throughput vs logical CPUs enabled ===")
    points = []
    for count in CPU_COUNTS:
        online = CpuSet.range(0, count)
        users = max(128, 2000 * count // machine.n_logical_cpus)
        result = measure(machine, online, users)
        points.append((count, result.throughput))
        print(f"{count:4d} lcpus: {result}")

    print()
    text_plot(points)

    fit = fit_usl([c for c, __ in points], [x for __, x in points])
    print(f"\nUSL fit: {fit}")
    print(f"predicted throughput at 256 lcpus: {fit.predict(256):.0f} "
          f"req/s (diminishing returns)")

    print("\n=== SMT on vs off (same 64 physical cores) ===")
    smt_off = measure(machine, machine.first_threads(), users=2000)
    smt_on = measure(machine, machine.all_cpus(), users=2000)
    print(f"SMT off (64 lcpus):  {smt_off}")
    print(f"SMT on (128 lcpus):  {smt_on}")
    print(f"SMT uplift: "
          f"{(smt_on.throughput / smt_off.throughput - 1) * 100:+.1f}%")


if __name__ == "__main__":
    main()
