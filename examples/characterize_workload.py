#!/usr/bin/env python3
"""Microarchitectural characterization: TeaStore vs SPEC-class kernels.

Runs the store under load with the synthetic hardware-counter model
attached, runs the SPEC-class comparison kernels through the same
pipeline, and prints the paper-style contrast table: microservices are
low-IPC, front-end-hungry workloads — nothing like the loop kernels
server CPUs are designed against.

Run:  python examples/characterize_workload.py
"""

from repro import (
    ClosedLoopWorkload,
    CounterBank,
    Deployment,
    TeaStoreConfig,
    build_teastore,
    run_experiment,
    single_socket_rome,
)
from repro.spec import run_batch_kernels
from repro.teastore import SERVICE_NAMES
from repro.spec.kernels import KERNEL_NAMES


def main() -> None:
    machine = single_socket_rome()
    bank = CounterBank()

    deployment = Deployment(machine, seed=11, counter_sink=bank)
    store = build_teastore(deployment, TeaStoreConfig())
    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=1200, think_time=0.125)
    run_experiment(deployment, workload, warmup=1.0, duration=2.0)

    run_batch_kernels(machine, bank, bursts_per_kernel=150, seed=11)

    header = (f"{'workload':14s} {'class':13s} {'IPC':>5s} "
              f"{'L1i-MPKI':>9s} {'L3-MPKI':>8s} {'FE-bound':>9s} "
              f"{'MEM-bound':>10s}")
    print(header)
    print("-" * len(header))
    for name in list(SERVICE_NAMES) + list(KERNEL_NAMES):
        totals = bank.totals(name)
        klass = "microservice" if name in SERVICE_NAMES else "spec-class"
        print(f"{name:14s} {klass:13s} {totals.ipc:5.2f} "
              f"{totals.l1i_mpki:9.1f} {totals.l3_mpki:8.2f} "
              f"{totals.frontend_bound_fraction:9.1%} "
              f"{totals.memory_bound_fraction:10.1%}")

    services = [bank.totals(n) for n in SERVICE_NAMES]
    kernels = [bank.totals(n) for n in KERNEL_NAMES]
    print()
    print(f"mean IPC      — services: "
          f"{sum(t.ipc for t in services) / len(services):.2f}   "
          f"kernels: {sum(t.ipc for t in kernels) / len(kernels):.2f}")
    print(f"mean L1i MPKI — services: "
          f"{sum(t.l1i_mpki for t in services) / len(services):.1f}   "
          f"kernels: "
          f"{sum(t.l1i_mpki for t in kernels) / len(kernels):.1f}")


if __name__ == "__main__":
    main()
