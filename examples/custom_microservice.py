#!/usr/bin/env python3
"""Build your own microservice application on the substrate.

TeaStore is just one application model; the substrate is general.  This
example assembles a three-tier "ride hailing" app — gateway → (pricing ∥
matching) → geo-index — with its own footprints and demand profile, pins
it two ways, and compares.

Run:  python examples/custom_microservice.py
"""

from repro import (
    ClosedLoopWorkload,
    Deployment,
    ServiceSpec,
    WorkloadProfile,
    medium_machine,
    run_experiment,
)
from repro._units import mib, ms


def build_app(deployment, pin=False):
    machine = deployment.machine
    geo = ServiceSpec("geo", WorkloadProfile(
        "geo", code_bytes=mib(2.0), data_bytes=mib(30.0),
        mem_intensity=0.8, frontend_intensity=0.3), workers=32)

    @geo.endpoint("nearest")
    def nearest(ctx):
        yield ctx.compute(ms(2.0))
        return ["driver-1", "driver-2"]

    pricing = ServiceSpec("pricing", WorkloadProfile(
        "pricing", code_bytes=mib(1.5), data_bytes=mib(4.0),
        mem_intensity=0.3, frontend_intensity=0.5), workers=32)

    @pricing.endpoint("quote")
    def quote(ctx):
        yield ctx.compute(ms(1.2))
        return {"fare": 12.5}

    matching = ServiceSpec("matching", WorkloadProfile(
        "matching", code_bytes=mib(2.5), data_bytes=mib(8.0),
        mem_intensity=0.5, frontend_intensity=0.6), workers=32)

    @matching.endpoint("match")
    def match(ctx):
        drivers = yield ctx.call("geo", "nearest")
        yield ctx.compute(ms(1.8))
        return drivers[0]

    gateway = ServiceSpec("gateway", WorkloadProfile(
        "gateway", code_bytes=mib(3.0), data_bytes=mib(5.0),
        mem_intensity=0.4, frontend_intensity=0.7), workers=64)

    @gateway.endpoint("request_ride")
    def request_ride(ctx):
        yield ctx.compute(ms(1.0))
        price = ctx.call("pricing", "quote")
        driver = ctx.call("matching", "match")
        yield ctx.gather(price, driver)
        yield ctx.compute(ms(1.5))
        return "ride-confirmed"

    specs = {"gateway": gateway, "pricing": pricing,
             "matching": matching, "geo": geo}
    if pin:
        # CCX budgets matched to each service's CPU appetite, spending
        # the whole machine (8 CCXs): one replica per CCX.
        budgets = {"gateway": [0, 1, 2], "matching": [3, 4],
                   "geo": [5, 6], "pricing": [7]}
        for name, ccxs in budgets.items():
            for ccx in ccxs:
                deployment.add_instance(specs[name],
                                        affinity=machine.cpus_in_ccx(ccx))
    else:
        for name in specs:
            replicas = 2 if name == "gateway" else 1
            for __ in range(replicas):
                deployment.add_instance(specs[name])


def session(user_id):
    while True:
        yield ("gateway", "request_ride", None)


def main() -> None:
    for pin in (False, True):
        deployment = Deployment(medium_machine(), seed=5)
        build_app(deployment, pin=pin)
        workload = ClosedLoopWorkload(deployment, session,
                                      n_users=400, think_time=0.1)
        result = run_experiment(deployment, workload,
                                warmup=1.0, duration=2.5)
        label = "CCX-pinned" if pin else "unpinned  "
        print(f"{label}: {result}")


if __name__ == "__main__":
    main()
