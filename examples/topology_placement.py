#!/usr/bin/env python3
"""The paper's headline recipe, step by step.

1. Run the performance-tuned baseline (good replica counts, generous
   thread pools, no pinning) and profile where CPU time goes.
2. Turn the profile into per-service CCX budgets.
3. Deploy the topology-aware configuration: one replica per L3 domain for
   every scalable service, the database kept singular on its own CCX
   group.
4. Measure the uplift — the paper reports +22% throughput and −18%
   latency from exactly this kind of exploitation.

Run:  python examples/topology_placement.py
"""

from repro import (
    ClosedLoopWorkload,
    Deployment,
    TeaStoreConfig,
    build_teastore,
    ccx_aware_auto,
    run_experiment,
    single_socket_rome,
    unpinned,
    weights_from_utilization,
)

USERS = 2000
THINK_TIME = 0.125


def measure(machine, allocation, label):
    deployment = Deployment(machine, seed=7)
    store = build_teastore(deployment, TeaStoreConfig(),
                           placement=allocation.as_placement())
    workload = ClosedLoopWorkload(
        deployment, store.browse_session_factory(),
        n_users=USERS, think_time=THINK_TIME)
    result = run_experiment(deployment, workload, warmup=1.5, duration=3.0)
    print(f"{label:24s} {result}")
    return result


def main() -> None:
    machine = single_socket_rome()
    config = TeaStoreConfig()
    counts = {name: config.replica_count(name)
              for name in ("webui", "auth", "persistence", "image",
                           "recommender", "db")}

    print("step 1: profile the tuned baseline")
    baseline = measure(machine, unpinned(machine, counts), "tuned baseline")

    print("\nstep 2: derive CCX budgets from measured CPU weights")
    weights = weights_from_utilization(baseline.service_utilization)
    for service, weight in sorted(weights.items(), key=lambda kv: -kv[1]):
        print(f"  {service:12s} weight {weight:.3f}")

    print("\nstep 3: topology- and scaling-aware placement")
    allocation = ccx_aware_auto(machine, weights, fixed_counts={"db": 1})
    print(f"  replica counts: {allocation.replica_counts()}")
    print(allocation.describe())

    print("\nstep 4: measure the optimized configuration")
    optimized = measure(machine, allocation, "optimized")

    uplift = optimized.throughput / baseline.throughput - 1
    latency_cut = 1 - optimized.latency_mean / baseline.latency_mean
    print(f"\nthroughput uplift: {uplift * 100:+.1f}%   (paper: +22%)")
    print(f"latency reduction: {latency_cut * 100:+.1f}%   (paper: -18%)")


if __name__ == "__main__":
    main()
