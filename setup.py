"""Build script for the optional compiled kernel and model layer.

All package metadata lives in ``pyproject.toml``; this file exists only
to declare the C extensions.  Both are strictly optional
(``optional=True``): when no compiler or headers are available the build
warns and the package works unchanged on the pure-Python kernel and
reference model code.

Local build (drops ``_ckernel*.so`` / ``_cmodel*.so`` next to the
sources, which is what the ``PYTHONPATH=src`` workflow picks up)::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.sim._ckernel",
            sources=["src/repro/sim/_ckernel.c"],
            optional=True,
            extra_compile_args=["-O2"],
        ),
        Extension(
            "repro.sim._cmodel",
            sources=["src/repro/sim/_cmodel.c"],
            optional=True,
            extra_compile_args=["-O2"],
        ),
    ],
)
