"""Tunable constants of the memory-system model."""

from __future__ import annotations

import dataclasses

from repro._errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class MemoryConfig:
    """Weights of the analytic cache/NUMA model.

    Defaults are calibrated so that the TeaStore application model lands in
    the performance bands the paper reports (see EXPERIMENTS.md); they are
    deliberately exposed for sensitivity studies.
    """

    #: Fraction of an L3 slice effectively available to instruction lines.
    code_share: float = 0.3
    #: CPI penalty weight for data-side L3 misses (DRAM stall cost).
    l3_miss_weight: float = 0.5
    #: CPI penalty weight for front-end (code) misses.
    frontend_miss_weight: float = 0.6
    #: CPI penalty weight for fully remote (cross-socket) memory access.
    numa_weight: float = 0.55
    #: Extra pressure multiplier applied per additional CCX an instance may
    #: migrate across (cache-line drag of unpinned tasks).
    migration_drag: float = 0.04
    #: Whether same-named replicas on a CCX share their code footprint
    #: (shared text pages).  Real systems do; turning this off is the A1
    #: ablation isolating how much of the gain is code sharing.
    share_code: bool = True
    #: Machine-wide memory-bandwidth capacity in "intensity units": the
    #: number of concurrently running fully-memory-bound bursts the
    #: channels sustain without queueing.  ``None`` disables the model
    #: (the default: the paper's mechanisms are L3/NUMA/SMT/boost; this
    #: is the A4 extension).
    bandwidth_capacity: float | None = None
    #: CPI penalty weight for bandwidth congestion beyond capacity.
    bandwidth_weight: float = 0.6

    def to_dict(self) -> dict:
        """Canonical JSON-native form (sweep-cache key material)."""
        return dataclasses.asdict(self)

    def __post_init__(self) -> None:
        if not 0.0 < self.code_share < 1.0:
            raise ConfigurationError(
                f"code_share must be in (0, 1): {self.code_share}")
        for field in ("l3_miss_weight", "frontend_miss_weight",
                      "numa_weight", "migration_drag", "bandwidth_weight"):
            value = getattr(self, field)
            if value < 0:
                raise ConfigurationError(f"{field} must be >= 0: {value}")
        if (self.bandwidth_capacity is not None
                and self.bandwidth_capacity <= 0):
            raise ConfigurationError(
                "bandwidth_capacity must be positive or None: "
                f"{self.bandwidth_capacity}")
