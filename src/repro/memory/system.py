"""The memory-system model: residency tracking and CPI inflation.

Instances register the set of CCXs their affinity covers.  An unpinned
instance (machine-wide affinity) registers on *every* CCX: migrating tasks
drag their working set across L3 slices, leaving dead lines behind and
refetching on arrival, so the whole footprint pressures every slice it can
touch.  A pinned instance pressures only its own slice.  This asymmetry is
the modelled mechanism behind the paper's topology-aware gains.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.memory.config import MemoryConfig
from repro.memory.profile import WorkloadProfile
from repro.topology.model import DISTANCE_CROSS_SOCKET, DISTANCE_LOCAL, Machine

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.burst import CpuBurst, TaskGroup
    from repro.topology.model import LogicalCpu


@dataclasses.dataclass(frozen=True)
class InflationBreakdown:
    """Decomposition of one (group, ccx, node) CPI inflation query."""

    total: float
    data_component: float
    code_component: float
    numa_component: float
    data_pressure: float  # occupancy / capacity (1.0 = exactly fits)
    code_pressure: float


@dataclasses.dataclass
class _Residency:
    group_id: int
    profile: WorkloadProfile
    ccxs: frozenset[int]
    home_node: int


def _miss_fraction(pressure: float) -> float:
    """Fraction of accesses missing a cache under occupancy ``pressure``.

    0 while the footprint fits (pressure ≤ 1), then ``1 - 1/pressure``:
    with ``p`` bytes competing for 1 byte of capacity, a random access
    finds its line resident with probability ``1/p``.
    """
    if pressure <= 1.0:
        return 0.0
    return 1.0 - 1.0 / pressure


class MemorySystemModel:
    """Tracks footprint residency per CCX and prices execution locations.

    Implements the :class:`repro.cpu.perf.PerfModel` protocol.  An optional
    ``counter_sink`` (see :mod:`repro.metrics.hwcounters`) receives one
    sample per completed burst for the characterization experiments.
    """

    def __init__(self, machine: Machine, config: MemoryConfig | None = None,
                 counter_sink: "t.Any | None" = None):
        self.machine = machine
        self.config = config or MemoryConfig()
        self.counter_sink = counter_sink
        self._residencies: dict[int, _Residency] = {}
        # Per-CCX aggregates, maintained incrementally.
        n_ccxs = len(machine.ccxs)
        self._code_by_ccx: list[dict[str, int]] = [{} for __ in range(n_ccxs)]
        self._code_refcount: list[dict[str, int]] = [{} for __ in range(n_ccxs)]
        self._data_by_ccx: list[float] = [0.0] * n_ccxs
        self._epoch = 0
        self._inflation_cache: dict[int, tuple[int, float]] = {}
        #: Sum of mem_intensity over currently executing bursts (for the
        #: optional bandwidth-contention model).
        self._running_mem_load = 0.0

    # ------------------------------------------------------------------
    # Residency registration
    # ------------------------------------------------------------------
    def register(self, group: "TaskGroup", ccxs: t.Iterable[int]) -> None:
        """Declare that ``group`` may execute on the given CCXs.

        The group must have a :class:`WorkloadProfile`; its memory home
        node is taken from ``group.home_node``.
        """
        if group.profile is None:
            raise ConfigurationError(
                f"group {group.name!r} has no workload profile")
        if group.group_id in self._residencies:
            raise ConfigurationError(
                f"group {group.name!r} is already registered")
        ccx_set = frozenset(int(c) for c in ccxs)
        if not ccx_set:
            raise ConfigurationError(
                f"group {group.name!r}: empty CCX residency")
        for ccx in ccx_set:
            if not 0 <= ccx < len(self.machine.ccxs):
                raise ConfigurationError(f"no such CCX: {ccx}")
        profile = group.profile
        drag = 1.0 + self.config.migration_drag * (len(ccx_set) - 1)
        residency = _Residency(group.group_id, profile, ccx_set,
                               group.home_node)
        self._residencies[group.group_id] = residency
        code_key = self._code_key(profile.name, group.group_id)
        for ccx in ccx_set:
            refcount = self._code_refcount[ccx]
            refcount[code_key] = refcount.get(code_key, 0) + 1
            self._code_by_ccx[ccx][code_key] = profile.code_bytes
            self._data_by_ccx[ccx] += profile.data_bytes * drag
        self._bump_epoch()

    def _code_key(self, profile_name: str, group_id: int) -> str:
        """Code-sharing key: per service name normally, per instance when
        the A1 ablation turns text-page sharing off."""
        if self.config.share_code:
            return profile_name
        return f"{profile_name}#{group_id}"

    def register_for_affinity(self, group: "TaskGroup") -> None:
        """Register ``group`` on every CCX its affinity mask touches."""
        ccxs = {self.machine.cpu(i).ccx.index for i in group.affinity}
        self.register(group, ccxs)

    def deregister(self, group: "TaskGroup") -> None:
        """Remove a group's residency (instance shut down)."""
        residency = self._residencies.pop(group.group_id, None)
        if residency is None:
            raise ConfigurationError(
                f"group {group.name!r} is not registered")
        profile = residency.profile
        drag = 1.0 + self.config.migration_drag * (len(residency.ccxs) - 1)
        code_key = self._code_key(profile.name, residency.group_id)
        for ccx in residency.ccxs:
            refcount = self._code_refcount[ccx]
            refcount[code_key] -= 1
            if refcount[code_key] == 0:
                del refcount[code_key]
                del self._code_by_ccx[ccx][code_key]
            self._data_by_ccx[ccx] -= profile.data_bytes * drag
        self._bump_epoch()

    def _bump_epoch(self) -> None:
        self._epoch += 1
        self._inflation_cache.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def data_pressure(self, ccx_index: int) -> float:
        """Resident data bytes over the data share of one L3 slice."""
        capacity = self.machine.l3_bytes_per_ccx() * (1.0 - self.config.code_share)
        return self._data_by_ccx[ccx_index] / capacity

    def code_pressure(self, ccx_index: int) -> float:
        """Distinct code bytes over the code share of one L3 slice."""
        capacity = self.machine.l3_bytes_per_ccx() * self.config.code_share
        return sum(self._code_by_ccx[ccx_index].values()) / capacity

    def breakdown(self, group: "TaskGroup",
                  ccx_index: int, node_index: int) -> InflationBreakdown:
        """Full inflation decomposition for a group at a location."""
        residency = self._residencies.get(group.group_id)
        if residency is None:
            # Unregistered groups (e.g. bare batch kernels) see no memory
            # effects; they opt in by registering.
            return InflationBreakdown(1.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        profile = residency.profile
        config = self.config
        data_p = self.data_pressure(ccx_index)
        code_p = self.code_pressure(ccx_index)
        data_term = (config.l3_miss_weight * profile.mem_intensity
                     * _miss_fraction(data_p))
        code_term = (config.frontend_miss_weight * profile.frontend_intensity
                     * _miss_fraction(code_p))
        distance = self.machine.distance(node_index, residency.home_node)
        distance_span = DISTANCE_CROSS_SOCKET - DISTANCE_LOCAL
        numa_term = (config.numa_weight * profile.mem_intensity
                     * (distance - DISTANCE_LOCAL) / distance_span)
        total = 1.0 + data_term + code_term + numa_term
        return InflationBreakdown(total, data_term, code_term, numa_term,
                                  data_p, code_p)

    def bandwidth_congestion_term(self, profile: WorkloadProfile) -> float:
        """Extra CPI inflation from machine-wide bandwidth congestion.

        Zero while total running memory intensity fits the configured
        channel capacity; grows linearly with the overload beyond it.
        Sampled when a burst starts or is re-rated (a documented
        approximation, like the boost model).
        """
        capacity = self.config.bandwidth_capacity
        if capacity is None:
            return 0.0
        overload = max(0.0, (self._running_mem_load - capacity) / capacity)
        return self.config.bandwidth_weight * profile.mem_intensity * overload

    # ------------------------------------------------------------------
    # PerfModel protocol
    # ------------------------------------------------------------------
    def cpi_inflation(self, burst: "CpuBurst", cpu: "LogicalCpu") -> float:
        # Flat int key: cpu indexes stay far below 1 << 20, so this is
        # injective and avoids a tuple allocation on a hot path.
        key = (burst.group.group_id << 20) | cpu.index
        cached = self._inflation_cache.get(key)
        if cached is not None and cached[0] == self._epoch:
            static = cached[1]
        else:
            static = self.breakdown(burst.group, cpu.ccx.index,
                                    cpu.node.index).total
            self._inflation_cache[key] = (self._epoch, static)
        profile = burst.group.profile
        if profile is None or self.config.bandwidth_capacity is None:
            return static
        return static + self.bandwidth_congestion_term(profile)

    def on_burst_start(self, burst: "CpuBurst", cpu: "LogicalCpu") -> None:
        profile = burst.group.profile
        if profile is not None:
            self._running_mem_load += profile.mem_intensity

    def on_burst_complete(self, burst: "CpuBurst", cpu: "LogicalCpu",
                          wall_time: float) -> None:
        profile = burst.group.profile
        if profile is not None:
            self._running_mem_load -= profile.mem_intensity
        if self.counter_sink is None:
            return
        self.counter_sink.record_burst(self, burst, cpu, wall_time)

    def __repr__(self) -> str:
        return (f"<MemorySystemModel {len(self._residencies)} residencies "
                f"on {len(self.machine.ccxs)} CCXs>")
