"""Per-workload memory/microarchitecture descriptors."""

from __future__ import annotations

import dataclasses

from repro._errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """How one service (or batch kernel) exercises the memory system.

    ``name`` doubles as the *code-sharing key*: two instances with the same
    profile name on one CCX contribute the code footprint once (shared text
    pages, warm i-lines), which is the mechanism behind the paper's
    same-service-per-CCX packing.

    The ``*_mpki`` fields are baseline misses-per-kilo-instruction when the
    working set fits its cache level; the model scales them up under
    pressure.  ``base_ipc`` is per-core IPC at base clock with warm caches.
    """

    name: str
    #: Instruction (text + hot JIT/interpreter) footprint in bytes.
    code_bytes: int
    #: Resident data footprint per instance in bytes.
    data_bytes: int
    #: Fraction of execution sensitive to data-side cache misses, 0..1.
    mem_intensity: float
    #: Fraction of execution sensitive to front-end misses, 0..1.
    #: Microservices are high (big flat instruction footprints); SPEC-class
    #: loop kernels are low.
    frontend_intensity: float
    base_ipc: float = 1.0
    l1i_mpki: float = 10.0
    l1d_mpki: float = 20.0
    l2_mpki: float = 8.0
    l3_mpki: float = 1.0
    branch_mpki: float = 5.0

    def __post_init__(self) -> None:
        if self.code_bytes < 0 or self.data_bytes < 0:
            raise ConfigurationError(
                f"profile {self.name!r}: footprints must be non-negative")
        for field in ("mem_intensity", "frontend_intensity"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"profile {self.name!r}: {field} must be in [0, 1]: "
                    f"{value}")
        if self.base_ipc <= 0:
            raise ConfigurationError(
                f"profile {self.name!r}: base_ipc must be positive")
        for field in ("l1i_mpki", "l1d_mpki", "l2_mpki", "l3_mpki",
                      "branch_mpki"):
            if getattr(self, field) < 0:
                raise ConfigurationError(
                    f"profile {self.name!r}: {field} must be >= 0")

    @property
    def total_bytes(self) -> int:
        """Code plus data footprint."""
        return self.code_bytes + self.data_bytes
