"""Memory-system performance model.

Implements the :class:`~repro.cpu.perf.PerfModel` contract: given where a
burst runs, compute how much its CPI is inflated by

* **L3 data pressure** — the combined resident data of all instances mapped
  to a CCX versus its L3 slice capacity;
* **Front-end (code) pressure** — the number of *distinct* service code
  footprints mapped to a CCX; replicas of the same service share text
  pages, which is exactly why packing same-service replicas per CCX (the
  paper's technique) pays off;
* **NUMA distance** — executing far from the instance's memory home node.

The model is intentionally analytic (smooth miss curves), not a cache
simulator: the paper's claims are about *which placements win and by
roughly how much*, which these first-order mechanisms reproduce.
"""

from repro.memory.config import MemoryConfig
from repro.memory.profile import WorkloadProfile
from repro.memory.system import InflationBreakdown, MemorySystemModel

__all__ = [
    "InflationBreakdown",
    "MemoryConfig",
    "MemorySystemModel",
    "WorkloadProfile",
]
