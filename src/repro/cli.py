"""Command-line entry point: ``python -m repro`` / ``repro``.

Examples::

    repro list                     # available experiments
    repro platform                 # E1 table for the paper's machine
    repro run e8                   # the headline result, paper scale
    repro run e2 --fast            # quick small-machine version
    repro run all --fast --seed 7  # everything, quickly
    repro sweep e2 --jobs 8        # the same table, in parallel
    repro sweep all --fast         # everything, parallel + cached
"""

from __future__ import annotations

import argparse
import sys
import typing as t

from repro.experiments import ExperimentSettings
from repro.experiments import (
    ablations,
    e1_platform,
    e2_load_scaling,
    e3_core_scaling,
    e4_smt,
    e5_utilization,
    e6_service_scaling,
    e7_placement,
    e8_headline,
    e9_characterization,
    e10_numa,
    e11_latency_breakdown,
    e12_colocation,
    e13_fault_tolerance,
    e14_cross_app,
)
from repro.chaos import campaign as chaos_campaign
from repro.topology.presets import PRESETS

#: Experiment id → (description, runner).  The chaos campaign also has
#: its own verb (``repro chaos``) with catalog/grading flags, but runs
#: and sweeps like any experiment.
EXPERIMENTS: dict[str, tuple[str, t.Callable]] = {
    "e1": (e1_platform.TITLE, e1_platform.run),
    "e2": (e2_load_scaling.TITLE, e2_load_scaling.run),
    "e3": (e3_core_scaling.TITLE, e3_core_scaling.run),
    "e4": (e4_smt.TITLE, e4_smt.run),
    "e5": (e5_utilization.TITLE, e5_utilization.run),
    "e6": (e6_service_scaling.TITLE, e6_service_scaling.run),
    "e7": (e7_placement.TITLE, e7_placement.run),
    "e8": (e8_headline.TITLE, e8_headline.run),
    "e9": (e9_characterization.TITLE, e9_characterization.run),
    "e10": (e10_numa.TITLE, e10_numa.run),
    "e11": (e11_latency_breakdown.TITLE, e11_latency_breakdown.run),
    "e12": (e12_colocation.TITLE, e12_colocation.run),
    "e13": (e13_fault_tolerance.TITLE, e13_fault_tolerance.run),
    "e14": (e14_cross_app.TITLE, e14_cross_app.run),
    "chaos": (chaos_campaign.TITLE, chaos_campaign.run),
    "a1": ("Ablation: CCX code sharing", ablations.run_code_sharing),
    "a2": ("Ablation: frequency boost", ablations.run_frequency_ablation),
    "a3": ("Ablation: SMT yield", ablations.run_smt_yield_ablation),
    "a4": ("Ablation: memory-bandwidth contention",
           ablations.run_bandwidth_ablation),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TeaStore scale-up study reproduction (IISWC 2020)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list experiments")

    platform = subparsers.add_parser("platform",
                                     help="print the machine topology (E1)")
    platform.add_argument("--preset", default="rome-1s",
                          choices=sorted(PRESETS))
    platform.add_argument("--json", action="store_true",
                          help="emit the machine spec as JSON")

    apps = subparsers.add_parser(
        "apps", help="list the bundled application specs")
    apps.add_argument("--validate", action="store_true",
                      help="check the committed JSON spec files parse, "
                           "round-trip byte-stably, and match their "
                           "builders; exit 1 on any problem")
    apps.add_argument("--json", metavar="NAME", default=None,
                      help="print one application's canonical JSON spec")

    run = subparsers.add_parser("run", help="run experiments")
    run.add_argument("experiment",
                     choices=sorted(EXPERIMENTS) + ["all"],
                     help="experiment id, or 'all'")
    run.add_argument("--fast", action="store_true",
                     help="small machine, short windows")
    run.add_argument("--preset", default=None, choices=sorted(PRESETS),
                     help="override the machine preset")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--users", type=int, default=None)
    _add_app_argument(run)
    _add_scale_arguments(run)
    run.add_argument("--markdown", metavar="FILE", default=None,
                     help="also write a markdown report to FILE")
    run.add_argument("--figures", metavar="DIR", default=None,
                     help="also write SVG figures to DIR")
    _add_kernel_argument(run)

    sweep = subparsers.add_parser(
        "sweep",
        help="run experiments as parallel, cached, resumable sweeps")
    sweep.add_argument("experiment",
                       choices=sorted(EXPERIMENTS) + ["all"],
                       help="experiment id, or 'all'")
    sweep.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all CPUs)")
    sweep.add_argument("--fast", action="store_true",
                       help="small machine, short windows")
    sweep.add_argument("--preset", default=None, choices=sorted(PRESETS),
                       help="override the machine preset")
    sweep.add_argument("--seed", type=int, default=1)
    sweep.add_argument("--users", type=int, default=None)
    _add_app_argument(sweep)
    _add_scale_arguments(sweep)
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    sweep.add_argument("--rerun", action="store_true",
                       help="execute every point even on cache hits "
                            "(and refresh the entries)")
    sweep.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache directory "
                            "(default: .repro-cache)")
    sweep.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-point completion timeout")
    sweep.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")
    sweep.add_argument("--log", metavar="FILE", default=None,
                       help="JSONL run log "
                            "(default: <cache-dir>/last-sweep.jsonl)")
    sweep.add_argument("--bench", metavar="FILE",
                       default="BENCH_sweep.json",
                       help="sweep-perf artifact ('' disables)")
    sweep.add_argument("--markdown", metavar="FILE", default=None,
                       help="also write a markdown report to FILE")
    _add_kernel_argument(sweep)

    chaos = subparsers.add_parser(
        "chaos",
        help="run graded chaos campaigns (bottleneck scenario catalog "
             "x resilience grid)")
    chaos.add_argument("action", nargs="?", default="run",
                       choices=("run",),
                       help="campaign action (default: run)")
    chaos.add_argument("--list-scenarios", action="store_true",
                       help="print the builtin scenario catalog and exit")
    chaos.add_argument("--grade", metavar="FILE", default=None,
                       help="re-grade a campaign artifact written by "
                            "--out; exit 1 if any cell grades FAIL")
    chaos.add_argument("--scenarios", action="append", default=None,
                       metavar="NAME",
                       help="limit to one catalog scenario (repeatable; "
                            "default: the full catalog)")
    chaos.add_argument("--modes", action="append", default=None,
                       metavar="MODE", choices=("none", "timeout", "full"),
                       help="limit to one resilience mode (repeatable; "
                            "default: all three)")
    chaos.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default: 1; results are "
                            "byte-identical at any value)")
    chaos.add_argument("--fast", action="store_true",
                       help="small machine, short windows")
    chaos.add_argument("--preset", default=None, choices=sorted(PRESETS),
                       help="override the machine preset")
    chaos.add_argument("--seed", type=int, default=1)
    chaos.add_argument("--users", type=int, default=None)
    _add_app_argument(chaos)
    _add_scale_arguments(chaos)
    chaos.add_argument("--no-cache", action="store_true",
                       help="disable the result cache entirely")
    chaos.add_argument("--rerun", action="store_true",
                       help="execute every cell even on cache hits")
    chaos.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="result-cache directory "
                            "(default: .repro-cache)")
    chaos.add_argument("--out", metavar="FILE", default=None,
                       help="write the campaign artifact (settings + "
                            "per-cell payloads) as JSON to FILE")
    chaos.add_argument("--markdown", metavar="FILE", default=None,
                       help="also write a markdown report to FILE")
    _add_kernel_argument(chaos)

    perfbench = subparsers.add_parser(
        "perfbench",
        help="time canonical E2/E8/E13 slices and append to the "
             "wall-clock perf trajectory")
    perfbench.add_argument("--mode", default="smoke",
                           choices=("smoke", "full"),
                           help="smoke: seconds-scale CI slices; "
                                "full: fast-profile experiment scale")
    perfbench.add_argument("--slice", action="append", default=None,
                           dest="slices", metavar="NAME",
                           help="limit to one slice (repeatable); "
                                "default: all")
    perfbench.add_argument("--repeat", type=int, default=None,
                           help="repeats per slice (default: 2 smoke, "
                                "3 full; min is reported)")
    perfbench.add_argument("--mem", action="store_true",
                           help="profile peak memory (tracemalloc + "
                                "RUSAGE RSS) instead of wall time")
    perfbench.add_argument("--extended", action="store_true",
                           help="include extended slices (e.g. the "
                                "10k-user E2 point in full mode)")
    perfbench.add_argument("--out", metavar="FILE",
                           default="BENCH_perf.json",
                           help="trajectory artifact to append to "
                                "('' disables writing)")
    perfbench.add_argument("--label", default=None,
                           help="label for the trajectory entry "
                                "(default: short git SHA, or 'manual' "
                                "outside a work tree)")
    perfbench.add_argument("--check", metavar="FILE", default=None,
                           help="compare against the newest same-mode "
                                "entry in FILE; exit 1 on regression")
    perfbench.add_argument("--threshold", type=float, default=None,
                           help="allowed slowdown fraction for --check "
                                "(default 0.25)")
    perfbench.add_argument("--profile", action="store_true",
                           help="run each slice once under cProfile and "
                                "print the hottest functions instead of "
                                "recording a trajectory entry")
    perfbench.add_argument("--top", type=int, default=20, metavar="N",
                           help="functions shown per --profile report "
                                "(default 20)")
    perfbench.add_argument("--profile-json", metavar="FILE", default=None,
                           dest="profile_json",
                           help="profile each slice and write the top-N "
                                "hotspot tables as a JSON artifact to "
                                "FILE (no trajectory entry is recorded)")
    perfbench.add_argument("--list-slices", action="store_true",
                           help="print every known mode*slice (standard "
                                "and extended) and exit")
    _add_app_argument(perfbench)
    _add_kernel_argument(perfbench)
    return parser


def _add_app_argument(subparser: argparse.ArgumentParser) -> None:
    from repro.apps.registry import APP_NAMES
    subparser.add_argument(
        "--app", default="teastore", choices=APP_NAMES,
        help="application under test (default: teastore)")


def _add_scale_arguments(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--cohort-factor", type=int, default=1, metavar="N",
        help="collapse N statistically identical users per weighted "
             "cohort (1 = exact per-user baseline)")
    subparser.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the population across N sharded deployments "
             "with window-synced shared services (1 = single process; "
             "set REPRO_SCALE_JOBS to fan shards out over processes)")


def _add_kernel_argument(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--kernel", default=None,
        choices=("auto", "python", "compiled"),
        help="event-loop backend (default: REPRO_KERNEL env or auto; "
             "'compiled' fails if the extension is not built)")


def _apply_kernel_choice(args: argparse.Namespace) -> None:
    """Pin the kernel backend for this process *and* worker processes.

    The session default covers in-process simulators; the environment
    variable carries the choice into sweep worker processes, which
    build their own simulators from a fresh interpreter.
    """
    choice = getattr(args, "kernel", None)
    if choice is None:
        return
    import os

    from repro.sim import kernel

    kernel.set_default_backend(choice)
    os.environ[kernel.KERNEL_ENV] = choice


def _settings_for(args: argparse.Namespace,
                  experiment_id: str) -> ExperimentSettings:
    overrides: dict[str, t.Any] = {"seed": args.seed}
    if args.preset is not None:
        overrides["preset"] = args.preset
    elif experiment_id == "e10" and not args.fast:
        overrides["preset"] = "rome-2s"  # E10 needs two NUMA nodes
    if args.users is not None:
        overrides["users"] = args.users
    if getattr(args, "app", "teastore") != "teastore":
        overrides["app"] = args.app
    if getattr(args, "cohort_factor", 1) != 1:
        overrides["cohort_factor"] = args.cohort_factor
    if getattr(args, "shards", 1) != 1:
        overrides["shards"] = args.shards
    if args.fast:
        if experiment_id == "e10" and "preset" not in overrides:
            overrides["preset"] = "small"  # smallest 2-node machine
        return ExperimentSettings.fast(**overrides)
    return ExperimentSettings.full(**overrides)


def main(argv: t.Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    _apply_kernel_choice(args)

    if args.command == "list":
        for experiment_id, (title, __) in sorted(EXPERIMENTS.items()):
            print(f"{experiment_id:4s} {title}")
        return 0

    if args.command == "platform":
        from repro.topology.presets import machine_from_preset
        machine = machine_from_preset(args.preset)
        if args.json:
            import json
            from repro.topology.serialize import machine_to_dict
            print(json.dumps(machine_to_dict(machine), indent=2))
        else:
            print(machine.describe())
        return 0

    if args.command == "apps":
        return _run_apps(args)

    if args.command == "sweep":
        return _run_sweeps(args)

    if args.command == "chaos":
        return _run_chaos(args)

    if args.command == "perfbench":
        return _run_perfbench(args)

    experiment_ids = (sorted(EXPERIMENTS) if args.experiment == "all"
                      else [args.experiment])
    results = []
    for experiment_id in experiment_ids:
        __, runner = EXPERIMENTS[experiment_id]
        settings = _settings_for(args, experiment_id)
        result = runner(settings)
        results.append(result)
        print(result.render())
        print()
    if args.markdown is not None:
        from repro.report import build_report
        settings = _settings_for(args, experiment_ids[0])
        report = build_report(results, machine=settings.machine())
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"markdown report written to {args.markdown}")
    if args.figures is not None:
        from repro.experiments.figures import write_figures
        written = write_figures(results, args.figures)
        print(f"{len(written)} figures written to {args.figures}")
    return 0


def _run_apps(args: argparse.Namespace) -> int:
    """The ``repro apps`` verb: bundled spec listing and lint gate."""
    from repro.apps.registry import APP_NAMES, get_app, verify_bundled

    if args.validate:
        problems = verify_bundled()
        for problem in problems:
            print(f"SPEC PROBLEM: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"{len(APP_NAMES)} bundled specs validated: "
              f"{', '.join(APP_NAMES)}")
        return 0
    if args.json is not None:
        print(get_app(args.json).dumps(), end="")
        return 0
    for name in APP_NAMES:
        spec = get_app(name)
        roles = ", ".join(f"{role}={service}"
                          for role, service in sorted(spec.chaos_targets.items()))
        print(f"{name:10s} {len(spec.services):2d} services  "
              f"sessions: {', '.join(s.name for s in spec.sessions)}")
        print(f"{'':10s} {spec.description}")
        print(f"{'':10s} chaos roles: {roles}")
    return 0


def _run_sweeps(args: argparse.Namespace) -> int:
    """The ``repro sweep`` verb: parallel, cached, resumable runs."""
    import os
    import pathlib

    from repro.orchestrator import (
        ProgressReporter,
        ResultCache,
        SweepInterrupted,
        SweepTimeout,
        run_sweep,
        write_bench_artifact,
    )

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print(f"--jobs must be >= 1 (got {jobs})", file=sys.stderr)
        return 2
    cache_dir = pathlib.Path(args.cache_dir or ".repro-cache")
    cache = None if args.no_cache else ResultCache(cache_dir)
    log_path = args.log or str(cache_dir / "last-sweep.jsonl")
    pathlib.Path(log_path).parent.mkdir(parents=True, exist_ok=True)
    experiment_ids = (sorted(EXPERIMENTS) if args.experiment == "all"
                      else [args.experiment])

    results = []
    stats = []
    with open(log_path, "w", encoding="utf-8") as log_handle:
        for experiment_id in experiment_ids:
            settings = _settings_for(args, experiment_id)
            progress = ProgressReporter(experiment_id, log=log_handle,
                                        quiet=args.quiet)
            try:
                outcome = run_sweep(experiment_id, settings, jobs=jobs,
                                    cache=cache, rerun=args.rerun,
                                    point_timeout=args.timeout,
                                    progress=progress)
            except SweepInterrupted as interrupted:
                print(interrupted, file=sys.stderr)
                return 130
            except SweepTimeout as timed_out:
                print(f"sweep {experiment_id} timed out: {timed_out}",
                      file=sys.stderr)
                return 1
            results.append(outcome.result)
            stats.append(outcome.stats)
            print(outcome.result.render())
            print()

    if args.bench:
        write_bench_artifact(args.bench, stats, jobs)
        print(f"sweep bench artifact written to {args.bench}")
    if args.markdown is not None:
        from repro.report import build_report
        settings = _settings_for(args, experiment_ids[0])
        report = build_report(results, machine=settings.machine(),
                              sweep_stats=[s.to_dict() for s in stats])
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"markdown report written to {args.markdown}")
    return 0


def _run_chaos(args: argparse.Namespace) -> int:
    """The ``repro chaos`` verb: graded campaigns over the catalog."""
    import json
    import pathlib

    from repro.chaos import campaign, catalog, grading
    from repro.experiments.common import ExperimentSettings
    from repro.orchestrator import (
        ResultCache,
        SweepInterrupted,
        SweepTimeout,
        run_sweep,
    )

    if args.list_scenarios:
        app = (None if args.app == "teastore"
               else _settings_for(args, "chaos").application())
        for scenario in catalog.builtin_catalog(app):
            faults = (", ".join(str(f["kind"]) for f in scenario.faults)
                      or "none")
            print(f"{scenario.name:18s} {scenario.bottleneck_class:26s} "
                  f"target={scenario.target:14s} "
                  f"({scenario.target_for(app)}) faults={faults}")
            print(f"{'':18s} {scenario.description}")
        return 0

    if args.grade is not None:
        with open(args.grade, encoding="utf-8") as handle:
            artifact = json.load(handle)
        settings = ExperimentSettings.from_dict(artifact["settings"])
        payloads = artifact["payloads"]
        reports = campaign.cascades_from_payloads(payloads)
        graded_catalog = catalog.builtin_catalog(
            None if settings.app == "teastore"
            else settings.application())
        failed = False
        for payload, report in zip(payloads, reports):
            scenario = catalog.scenario_by_name(payload["scenario"],
                                                graded_catalog)
            grade = grading.grade_scenario(
                scenario, report,
                error_rate=float(payload["error_rate"]),
                window=settings.duration)
            failed = failed or grade.grade == "FAIL"
            print(f"{payload['scenario']}/{payload['resilience']}: "
                  f"{grade.grade}")
            for reason in grade.reasons:
                print(f"  - {reason}")
        return 1 if failed else 0

    if args.jobs < 1:
        print(f"--jobs must be >= 1 (got {args.jobs})", file=sys.stderr)
        return 2
    settings = _settings_for(args, "chaos")
    points = campaign.campaign_points(settings, args.scenarios, args.modes)
    cache_dir = pathlib.Path(args.cache_dir or ".repro-cache")
    cache = None if args.no_cache else ResultCache(cache_dir)
    try:
        outcome = run_sweep("chaos", settings, jobs=args.jobs,
                            cache=cache, rerun=args.rerun, points=points)
    except SweepInterrupted as interrupted:
        print(interrupted, file=sys.stderr)
        return 130
    except SweepTimeout as timed_out:
        print(f"chaos campaign timed out: {timed_out}", file=sys.stderr)
        return 1
    print(outcome.result.render())
    if args.out is not None:
        artifact = {"settings": settings.to_dict(),
                    "payloads": list(outcome.payloads)}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
        print(f"campaign artifact written to {args.out}")
    if args.markdown is not None:
        from repro.report import build_report
        report = build_report([outcome.result],
                              machine=settings.machine())
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(report)
        print(f"markdown report written to {args.markdown}")
    return 0


def _run_perfbench(args: argparse.Namespace) -> int:
    """The ``repro perfbench`` verb: wall/memory trajectory + gates."""
    from repro.orchestrator import perfbench

    if args.list_slices:
        for row in perfbench.list_slices():
            kind = "extended" if row["extended"] else "standard"
            scale = ""
            if row["scale"] is not None:
                scale = (f" [shards={row['scale']['shards']} "
                         f"cohort_factor={row['scale']['cohort_factor']}]")
            print(f"{row['mode']}/{row['name']:10s} {kind:8s} "
                  f"{row['description']}{scale}")
        return 0
    if args.profile or args.profile_json:
        if args.profile:
            for name in perfbench._resolve_names(args.mode, args.slices,
                                                 args.extended, args.app):
                print(perfbench.profile_slice(args.mode, name,
                                              top=args.top, app=args.app))
        if args.profile_json:
            import json as json_mod
            import pathlib
            payload = perfbench.profile_artifact(
                args.mode, slices=args.slices, extended=args.extended,
                top=args.top, app=args.app, label=args.label)
            target = pathlib.Path(args.profile_json)
            if target.parent != pathlib.Path(""):
                target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(json_mod.dumps(payload, indent=2) + "\n",
                              encoding="utf-8")
            print(f"profile artifact written to {args.profile_json}")
        return 0
    if args.mem:
        return _run_membench(args)
    results = perfbench.run_perfbench(
        args.mode, slices=args.slices, repeat=args.repeat,
        extended=args.extended, progress=print, app=args.app)
    if args.out:
        entry = perfbench.trajectory_entry(results, args.mode,
                                           label=args.label, app=args.app)
        perfbench.append_trajectory(args.out, entry)
        print(f"perf trajectory appended to {args.out}")
    if args.check is not None:
        baseline = perfbench.baseline_entry(args.check, args.mode,
                                            app=args.app)
        threshold = (args.threshold if args.threshold is not None
                     else perfbench.DEFAULT_THRESHOLD)
        failures = perfbench.check_against_baseline(results, baseline,
                                                    threshold)
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"perf gate passed (threshold {threshold:.0%} vs "
              f"{args.check})")
    return 0


def _run_membench(args: argparse.Namespace) -> int:
    """``repro perfbench --mem``: peak-memory trajectory + gate."""
    from repro.orchestrator import perfbench

    results = perfbench.run_membench(
        args.mode, slices=args.slices, extended=args.extended,
        progress=print, app=args.app)
    if args.out:
        entry = perfbench.memory_entry(results, args.mode,
                                       label=args.label, app=args.app)
        perfbench.append_trajectory(args.out, entry)
        print(f"memory trajectory appended to {args.out}")
    if args.check is not None:
        baseline = perfbench.baseline_entry(args.check, args.mode,
                                            metric="mem", app=args.app)
        threshold = (args.threshold if args.threshold is not None
                     else perfbench.DEFAULT_MEM_THRESHOLD)
        failures = perfbench.check_memory_against_baseline(
            results, baseline, threshold)
        for failure in failures:
            print(f"MEMORY REGRESSION: {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"memory gate passed (threshold {threshold:.0%} vs "
              f"{args.check})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
