"""Unit helpers.

The simulator measures time in *seconds* (floats) and memory in *bytes*
(ints).  These helpers exist so that configuration code reads naturally
(``MILLISECONDS * 2.5``, ``4 * MIB``) and so unit mistakes are easy to spot
in review.
"""

from __future__ import annotations

#: One second, the base time unit of the simulator.
SECOND: float = 1.0

#: One millisecond in simulator time units.
MILLISECOND: float = 1e-3

#: One microsecond in simulator time units.
MICROSECOND: float = 1e-6

#: One kibibyte in bytes.
KIB: int = 1024

#: One mebibyte in bytes.
MIB: int = 1024 * 1024

#: One gibibyte in bytes.
GIB: int = 1024 * 1024 * 1024


def ms(value: float) -> float:
    """Convert milliseconds to simulator time units (seconds)."""
    return value * MILLISECOND


def us(value: float) -> float:
    """Convert microseconds to simulator time units (seconds)."""
    return value * MICROSECOND


def mib(value: float) -> int:
    """Convert mebibytes to bytes, rounding to the nearest byte."""
    return int(value * MIB)


def kib(value: float) -> int:
    """Convert kibibytes to bytes, rounding to the nearest byte."""
    return int(value * KIB)
