"""Span collection and latency decomposition."""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import AnalysisError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.request import Request


@dataclasses.dataclass(frozen=True, slots=True)
class Span:
    """One completed request hop."""

    request_id: int
    parent_id: int | None
    service: str
    endpoint: str
    instance_id: int | None
    created_at: float    # caller issued the request
    enqueued_at: float   # arrived at the replica queue
    started_at: float    # a worker picked it up
    completed_at: float  # handler finished

    @property
    def duration(self) -> float:
        """Caller-visible time excluding the return network hop."""
        return self.completed_at - self.created_at

    @property
    def queue_time(self) -> float:
        """Time from replica arrival to worker pickup."""
        return self.started_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        """Time inside the handler (own CPU + downstream waits)."""
        return self.completed_at - self.started_at


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly overlapping intervals."""
    return sum(end - start for start, end in _merge(intervals))


def _merge(intervals: list[tuple[float, float]]
           ) -> list[tuple[float, float]]:
    """Merge possibly overlapping intervals into disjoint sorted ones."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start > last_end:
            merged.append((start, end))
        else:
            merged[-1] = (last_start, max(last_end, end))
    return merged


def _subtract(base: tuple[float, float],
              holes: list[tuple[float, float]]
              ) -> list[tuple[float, float]]:
    """``base`` minus the union of ``holes`` as disjoint intervals."""
    start, end = base
    result: list[tuple[float, float]] = []
    cursor = start
    for hole_start, hole_end in _merge(holes):
        hole_start = max(hole_start, start)
        hole_end = min(hole_end, end)
        if hole_end <= cursor:
            continue
        if hole_start > cursor:
            result.append((cursor, min(hole_start, end)))
        cursor = max(cursor, hole_end)
        if cursor >= end:
            break
    if cursor < end:
        result.append((cursor, end))
    return [(s, e) for s, e in result if e > s]


class TraceCollector:
    """Collects spans and answers latency-decomposition queries."""

    def __init__(self):
        self._spans: dict[int, Span] = {}
        self._children: dict[int, list[Span]] = {}
        self._roots: list[Span] = []

    def __len__(self) -> int:
        return len(self._spans)

    def record(self, request: "Request") -> None:
        """Turn a completed request into a span (called by instances)."""
        if (request.enqueued_at is None or request.started_at is None
                or request.completed_at is None):
            raise AnalysisError(
                f"request {request!r} is missing timestamps")
        parent_id = (request.parent.request_id
                     if request.parent is not None else None)
        span = Span(request.request_id, parent_id,
                    request.service_name, request.endpoint,
                    request.instance_id, request.created_at,
                    request.enqueued_at, request.started_at,
                    request.completed_at)
        self._spans[span.request_id] = span
        if parent_id is None:
            self._roots.append(span)
        else:
            self._children.setdefault(parent_id, []).append(span)

    def reset(self) -> None:
        """Drop all spans (end of warmup)."""
        self._spans.clear()
        self._children.clear()
        self._roots.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def roots(self) -> list[Span]:
        """User-facing spans (no parent), in completion order."""
        return list(self._roots)

    def children_of(self, span: Span) -> list[Span]:
        """Direct downstream spans of one span."""
        return list(self._children.get(span.request_id, ()))

    def trace_of(self, root: Span) -> list[Span]:
        """The whole call tree below (and including) ``root``."""
        result = [root]
        frontier = [root]
        while frontier:
            node = frontier.pop()
            kids = self._children.get(node.request_id, ())
            result.extend(kids)
            frontier.extend(kids)
        return result

    def exclusive_intervals(self, span: Span) -> list[tuple[float, float]]:
        """The span's window minus its children's windows.

        What remains is when this hop itself was the reason the caller
        waited (own queueing + own CPU), not a downstream call.
        """
        holes = [(child.created_at, child.completed_at)
                 for child in self._children.get(span.request_id, ())]
        return _subtract((span.created_at, span.completed_at), holes)

    def exclusive_time(self, span: Span) -> float:
        """Total length of :meth:`exclusive_intervals`."""
        return _union_length(self.exclusive_intervals(span))

    def breakdown(self, endpoint: str | None = None) -> dict[str, float]:
        """Mean per-service critical-path seconds per user request.

        For each traced user request, a service's contribution is the
        *union* of its spans' exclusive intervals — two parallel calls to
        the same service that overlap in time count once, because the
        caller only waited through that wall-clock window once.
        Restricted to roots of one ``endpoint`` when given.  Values sum
        to ≈ the mean end-to-end latency (slightly more when *different*
        services overlap in parallel: each is on the critical path).
        """
        roots = [r for r in self._roots
                 if endpoint is None or r.endpoint == endpoint]
        if not roots:
            raise AnalysisError(
                "no traced roots" + (f" for endpoint {endpoint!r}"
                                     if endpoint else ""))
        totals: dict[str, float] = {}
        for root in roots:
            per_service: dict[str, list[tuple[float, float]]] = {}
            for span in self.trace_of(root):
                per_service.setdefault(span.service, []).extend(
                    self.exclusive_intervals(span))
            for service, intervals in per_service.items():
                totals[service] = (totals.get(service, 0.0)
                                   + _union_length(intervals))
        return {service: value / len(roots)
                for service, value in totals.items()}

    def mean_root_latency(self, endpoint: str | None = None) -> float:
        """Mean end-to-end duration of traced user requests."""
        roots = [r for r in self._roots
                 if endpoint is None or r.endpoint == endpoint]
        if not roots:
            raise AnalysisError("no traced roots")
        return sum(r.duration for r in roots) / len(roots)

    def to_chrome_trace(self, limit_roots: int | None = None) -> list[dict]:
        """Export spans as Chrome trace-event JSON (``chrome://tracing``,
        Perfetto, Speedscope).

        Each service maps to a process row, each replica to a thread row;
        spans become complete ("X") events with microsecond timestamps.
        ``limit_roots`` caps the export to the first N user requests'
        trees (traces of long runs are large).
        """
        roots = self._roots if limit_roots is None \
            else self._roots[:limit_roots]
        events: list[dict] = []
        for root in roots:
            for span in self.trace_of(root):
                events.append({
                    "name": f"{span.service}/{span.endpoint}",
                    "cat": span.service,
                    "ph": "X",
                    "ts": span.created_at * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": span.service,
                    "tid": (span.instance_id
                            if span.instance_id is not None else 0),
                    "args": {
                        "request_id": span.request_id,
                        "parent_id": span.parent_id,
                        "queue_ms": span.queue_time * 1e3,
                        "root_id": root.request_id,
                    },
                })
        return events

    def __repr__(self) -> str:
        return (f"<TraceCollector {len(self._spans)} spans, "
                f"{len(self._roots)} roots>")
