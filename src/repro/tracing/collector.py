"""Span collection and latency decomposition.

Spans are stored columnar: a :class:`SpanTable` keeps one growable numpy
column per field (four float64 timestamps, int64 ids, uint32 interned
service/endpoint codes), so a hop costs ~44 bytes instead of a boxed
dataclass plus dict entries.  :class:`Span` survives as a lazy row view
over the table, and the E11 decomposition aggregates with one
argsort-based sweep over all exclusive intervals instead of per-root
dict-of-list merging.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro._errors import AnalysisError
from repro.metrics.columns import Column, StringInterner

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.request import Request


class SpanTable:
    """Columnar storage for completed request hops.

    Parallel columns, one row per hop; ``parent_id`` and ``instance_id``
    use ``-1`` for "none" so the columns stay dense int64.
    """

    __slots__ = ("request_id", "parent_id", "instance_id",
                 "service_code", "endpoint_code",
                 "created", "enqueued", "started", "completed",
                 "services", "endpoints",
                 "row_of", "children_rows", "root_rows")

    def __init__(self):
        self.request_id = Column(np.int64)
        self.parent_id = Column(np.int64)
        self.instance_id = Column(np.int64)
        self.service_code = Column(np.uint32)
        self.endpoint_code = Column(np.uint32)
        self.created = Column(np.float64)
        self.enqueued = Column(np.float64)
        self.started = Column(np.float64)
        self.completed = Column(np.float64)
        self.services = StringInterner()
        self.endpoints = StringInterner()
        #: request id → row index.
        self.row_of: dict[int, int] = {}
        #: parent request id → child row indices, in completion order.
        self.children_rows: dict[int, list[int]] = {}
        #: rows of parentless spans, in completion order.
        self.root_rows: list[int] = []

    def __len__(self) -> int:
        return len(self.request_id)

    def append(self, request_id: int, parent_id: int | None,
               service: str, endpoint: str, instance_id: int | None,
               created_at: float, enqueued_at: float,
               started_at: float, completed_at: float) -> int:
        """Add one hop; returns its row index."""
        row = len(self.request_id)
        self.request_id.append(request_id)
        self.parent_id.append(-1 if parent_id is None else parent_id)
        self.instance_id.append(-1 if instance_id is None else instance_id)
        self.service_code.append(self.services.encode(service))
        self.endpoint_code.append(self.endpoints.encode(endpoint))
        self.created.append(created_at)
        self.enqueued.append(enqueued_at)
        self.started.append(started_at)
        self.completed.append(completed_at)
        self.row_of[request_id] = row
        if parent_id is None:
            self.root_rows.append(row)
        else:
            self.children_rows.setdefault(parent_id, []).append(row)
        return row

    def clear(self) -> None:
        """Drop all rows (interned names are kept)."""
        for column in (self.request_id, self.parent_id, self.instance_id,
                       self.service_code, self.endpoint_code,
                       self.created, self.enqueued, self.started,
                       self.completed):
            column.clear()
        self.row_of.clear()
        self.children_rows.clear()
        self.root_rows.clear()

    def to_payload(self) -> dict:
        """JSON-native columnar dump (codes + vocabularies, not strings).

        Sharded runs ship each shard's spans across the process boundary
        in this form; :meth:`from_payload` restores a table and
        :meth:`merged` folds several into one.
        """
        return {
            "request_id": self.request_id.as_array().tolist(),
            "parent_id": self.parent_id.as_array().tolist(),
            "instance_id": self.instance_id.as_array().tolist(),
            "service_code": self.service_code.as_array().tolist(),
            "endpoint_code": self.endpoint_code.as_array().tolist(),
            "created": self.created.as_array().tolist(),
            "enqueued": self.enqueued.as_array().tolist(),
            "started": self.started.as_array().tolist(),
            "completed": self.completed.as_array().tolist(),
            "services": self.services.names,
            "endpoints": self.endpoints.names,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SpanTable":
        """Inverse of :meth:`to_payload`."""
        table = cls()
        table.extend_from_payload(payload)
        return table

    def extend_from_payload(self, payload: dict,
                            id_offset: int = 0) -> None:
        """Append another table's rows, shifting ids by ``id_offset``.

        Request ids are process-local counters, so tables produced by
        different shard processes collide; the offset relocates each
        incoming table into a disjoint id range (``-1`` "no parent"
        stays ``-1``).  Row-derived indexes (``row_of``,
        ``children_rows``, ``root_rows``) are rebuilt through the
        ordinary append path.
        """
        services = payload["services"]
        endpoints = payload["endpoints"]
        for (request_id, parent_id, instance_id, service_code,
             endpoint_code, created, enqueued, started,
             completed) in zip(
                payload["request_id"], payload["parent_id"],
                payload["instance_id"], payload["service_code"],
                payload["endpoint_code"], payload["created"],
                payload["enqueued"], payload["started"],
                payload["completed"]):
            self.append(request_id + id_offset,
                        None if parent_id < 0 else parent_id + id_offset,
                        services[service_code], endpoints[endpoint_code],
                        None if instance_id < 0 else instance_id,
                        created, enqueued, started, completed)

    def parent_rows(self) -> np.ndarray:
        """Row index of each span's parent span, ``-1`` when absent.

        Vectorized: one argsort over the request-id column plus a
        searchsorted of the parent ids into it — no per-row dict
        lookups.  A parent id that never completed (and so has no row)
        maps to ``-1`` like a true root.
        """
        ids = self.request_id.as_array()
        parents = self.parent_id.as_array()
        result = np.full(len(ids), -1, dtype=np.int64)
        mask = parents >= 0
        if not mask.any():
            return result
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        pos = np.searchsorted(sorted_ids, parents[mask])
        pos = np.minimum(pos, len(ids) - 1)
        candidates = order[pos]
        found = ids[candidates] == parents[mask]
        rows = np.flatnonzero(mask)
        result[rows[found]] = candidates[found]
        return result

    def service_edges(self) -> list[tuple[int, int]]:
        """Unique observed call-graph edges as service-code pairs.

        Each edge is ``(caller_code, callee_code)`` derived from the
        parent links — the measured topology the cascade analyzer walks,
        rather than an assumed one.  Sorted for determinism.
        """
        parent_row = self.parent_rows()
        mask = parent_row >= 0
        if not mask.any():
            return []
        codes = self.service_code.as_array().astype(np.int64)
        callers = codes[parent_row[mask]]
        callees = codes[mask]
        keys = np.unique((callers << 32) | callees)
        return [(int(key >> 32), int(key & 0xFFFFFFFF)) for key in keys]

    @classmethod
    def merged(cls, payloads: t.Sequence[dict]) -> "SpanTable":
        """One table from several :meth:`to_payload` dumps, in order.

        Each dump is relocated past the previous ones' highest request
        id, so spans from independent shard processes keep distinct ids
        and parent links stay internally consistent per dump.
        """
        table = cls()
        offset = 0
        for payload in payloads:
            table.extend_from_payload(payload, id_offset=offset)
            ids = payload["request_id"]
            if ids:
                offset += max(ids) + 1
        return table


class Span:
    """One completed request hop — a lazy view over a table row."""

    __slots__ = ("_table", "_row")

    def __init__(self, table: SpanTable, row: int):
        self._table = table
        self._row = row

    @property
    def request_id(self) -> int:
        return int(self._table.request_id.as_array()[self._row])

    @property
    def parent_id(self) -> int | None:
        value = int(self._table.parent_id.as_array()[self._row])
        return None if value < 0 else value

    @property
    def service(self) -> str:
        return self._table.services.decode(
            int(self._table.service_code.as_array()[self._row]))

    @property
    def endpoint(self) -> str:
        return self._table.endpoints.decode(
            int(self._table.endpoint_code.as_array()[self._row]))

    @property
    def instance_id(self) -> int | None:
        value = int(self._table.instance_id.as_array()[self._row])
        return None if value < 0 else value

    @property
    def created_at(self) -> float:
        """Caller issued the request."""
        return float(self._table.created.as_array()[self._row])

    @property
    def enqueued_at(self) -> float:
        """Arrived at the replica queue."""
        return float(self._table.enqueued.as_array()[self._row])

    @property
    def started_at(self) -> float:
        """A worker picked it up."""
        return float(self._table.started.as_array()[self._row])

    @property
    def completed_at(self) -> float:
        """Handler finished."""
        return float(self._table.completed.as_array()[self._row])

    @property
    def duration(self) -> float:
        """Caller-visible time excluding the return network hop."""
        return self.completed_at - self.created_at

    @property
    def queue_time(self) -> float:
        """Time from replica arrival to worker pickup."""
        return self.started_at - self.enqueued_at

    @property
    def service_time(self) -> float:
        """Time inside the handler (own CPU + downstream waits)."""
        return self.completed_at - self.started_at

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Span) and other._table is self._table
                and other._row == self._row)

    def __hash__(self) -> int:
        return hash((id(self._table), self._row))

    def __repr__(self) -> str:
        return (f"<Span {self.service}/{self.endpoint} "
                f"request={self.request_id} row={self._row}>")


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of possibly overlapping intervals."""
    return sum(end - start for start, end in _merge(intervals))


def _merge(intervals: list[tuple[float, float]]
           ) -> list[tuple[float, float]]:
    """Merge possibly overlapping intervals into disjoint sorted ones."""
    if not intervals:
        return []
    # Exclusive-interval pipelines emit ascending starts already; one
    # order-check pass beats re-sorting a sorted list on every call.
    if any(a > b for a, b in zip(intervals, intervals[1:])):
        intervals = sorted(intervals)
    merged = [intervals[0]]
    for start, end in intervals[1:]:
        last_start, last_end = merged[-1]
        if start > last_end:
            merged.append((start, end))
        else:
            merged[-1] = (last_start, max(last_end, end))
    return merged


def _subtract(base: tuple[float, float],
              holes: list[tuple[float, float]]
              ) -> list[tuple[float, float]]:
    """``base`` minus the union of ``holes`` as disjoint intervals."""
    start, end = base
    result: list[tuple[float, float]] = []
    cursor = start
    for hole_start, hole_end in _merge(holes):
        hole_start = max(hole_start, start)
        hole_end = min(hole_end, end)
        if hole_end <= cursor:
            continue
        if hole_start > cursor:
            result.append((cursor, min(hole_start, end)))
        cursor = max(cursor, hole_end)
        if cursor >= end:
            break
    if cursor < end:
        result.append((cursor, end))
    return [(s, e) for s, e in result if e > s]


class TraceCollector:
    """Collects spans and answers latency-decomposition queries."""

    def __init__(self):
        self._table = SpanTable()

    def __len__(self) -> int:
        return len(self._table)

    @property
    def table(self) -> SpanTable:
        """The columnar backing store (read-only access for analysis)."""
        return self._table

    def record(self, request: "Request") -> None:
        """Turn a completed request into a span (called by instances)."""
        if (request.enqueued_at is None or request.started_at is None
                or request.completed_at is None):
            raise AnalysisError(
                f"request {request!r} is missing timestamps")
        parent_id = (request.parent.request_id
                     if request.parent is not None else None)
        self._table.append(request.request_id, parent_id,
                           request.service_name, request.endpoint,
                           request.instance_id, request.created_at,
                           request.enqueued_at, request.started_at,
                           request.completed_at)

    def add_span(self, request_id: int, parent_id: int | None = None,
                 service: str = "svc", endpoint: str = "op",
                 instance_id: int | None = None,
                 created_at: float = 0.0, enqueued_at: float = 0.0,
                 started_at: float = 0.0,
                 completed_at: float = 1.0) -> Span:
        """Inject one span directly (tests, importers, synthetic traces)."""
        row = self._table.append(request_id, parent_id, service, endpoint,
                                 instance_id, created_at, enqueued_at,
                                 started_at, completed_at)
        return Span(self._table, row)

    def reset(self) -> None:
        """Drop all spans (end of warmup)."""
        self._table.clear()

    @classmethod
    def merged(cls, payloads: t.Sequence[dict]) -> "TraceCollector":
        """A collector over the merge of several shard span dumps.

        Accepts :meth:`SpanTable.to_payload` dicts in shard order; the
        merged table relocates each shard's request ids into a disjoint
        range so the usual queries (roots, breakdown, chrome export)
        work on the union.
        """
        collector = cls()
        collector._table = SpanTable.merged(payloads)
        return collector

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def roots(self) -> list[Span]:
        """User-facing spans (no parent), in completion order."""
        table = self._table
        return [Span(table, row) for row in table.root_rows]

    def children_of(self, span: Span) -> list[Span]:
        """Direct downstream spans of one span."""
        table = self._table
        return [Span(table, row)
                for row in table.children_rows.get(span.request_id, ())]

    def trace_of(self, root: Span) -> list[Span]:
        """The whole call tree below (and including) ``root``."""
        table = self._table
        return [Span(table, row)
                for row in self._trace_rows(root._row)]

    def _trace_rows(self, root_row: int) -> list[int]:
        table = self._table
        request_ids = table.request_id.as_array()
        result = [root_row]
        frontier = [root_row]
        while frontier:
            row = frontier.pop()
            kids = table.children_rows.get(int(request_ids[row]), ())
            result.extend(kids)
            frontier.extend(kids)
        return result

    def _exclusive_intervals_of_row(
            self, row: int, created: list[float], completed: list[float],
            request_ids: np.ndarray) -> list[tuple[float, float]]:
        holes = [(created[child], completed[child])
                 for child in self._table.children_rows.get(
                     int(request_ids[row]), ())]
        return _subtract((created[row], completed[row]), holes)

    def exclusive_intervals(self, span: Span) -> list[tuple[float, float]]:
        """The span's window minus its children's windows.

        What remains is when this hop itself was the reason the caller
        waited (own queueing + own CPU), not a downstream call.
        """
        table = self._table
        holes = [(float(table.created.as_array()[child]),
                  float(table.completed.as_array()[child]))
                 for child in table.children_rows.get(span.request_id, ())]
        return _subtract((span.created_at, span.completed_at), holes)

    def exclusive_time(self, span: Span) -> float:
        """Total length of :meth:`exclusive_intervals`."""
        return _union_length(self.exclusive_intervals(span))

    def _filtered_root_rows(self, endpoint: str | None) -> list[int]:
        table = self._table
        if endpoint is None:
            return list(table.root_rows)
        code = table.endpoints.code_if_known(endpoint)
        if code is None:
            return []
        roots = np.asarray(table.root_rows, dtype=np.int64)
        mask = table.endpoint_code.as_array()[roots] == code
        return [int(row) for row in roots[mask]]

    def breakdown(self, endpoint: str | None = None) -> dict[str, float]:
        """Mean per-service critical-path seconds per user request.

        For each traced user request, a service's contribution is the
        *union* of its spans' exclusive intervals — two parallel calls to
        the same service that overlap in time count once, because the
        caller only waited through that wall-clock window once.
        Restricted to roots of one ``endpoint`` when given.  Values sum
        to ≈ the mean end-to-end latency (slightly more when *different*
        services overlap in parallel: each is on the critical path).

        Aggregation is a single argsort-based sweep: every span's
        exclusive intervals are gathered once, lexsorted by
        ``(service, root, start)``, and union lengths accumulate in one
        linear pass over the sorted arrays — no per-root dict-of-list
        churn.
        """
        table = self._table
        root_rows = self._filtered_root_rows(endpoint)
        if not root_rows:
            raise AnalysisError(
                "no traced roots" + (f" for endpoint {endpoint!r}"
                                     if endpoint else ""))
        request_ids = table.request_id.as_array()
        service_codes = table.service_code.as_array()
        created = table.created.as_array().tolist()
        completed = table.completed.as_array().tolist()

        starts: list[float] = []
        ends: list[float] = []
        services: list[int] = []
        root_ordinals: list[int] = []
        first_seen: list[int] = []  # service codes in first-contribution order
        seen: set[int] = set()
        for ordinal, root_row in enumerate(root_rows):
            for row in self._trace_rows(root_row):
                intervals = self._exclusive_intervals_of_row(
                    row, created, completed, request_ids)
                if not intervals:
                    continue
                code = int(service_codes[row])
                if code not in seen:
                    seen.add(code)
                    first_seen.append(code)
                for start, end in intervals:
                    starts.append(start)
                    ends.append(end)
                    services.append(code)
                    root_ordinals.append(ordinal)

        start_arr = np.asarray(starts)
        order = np.lexsort((start_arr,
                            np.asarray(root_ordinals, dtype=np.int64),
                            np.asarray(services, dtype=np.int64)))
        s_sorted = start_arr[order].tolist()
        e_sorted = np.asarray(ends)[order].tolist()
        svc_sorted = np.asarray(services, dtype=np.int64)[order].tolist()
        root_sorted = np.asarray(root_ordinals,
                                 dtype=np.int64)[order].tolist()

        totals: dict[int, float] = {}
        prev_key: tuple[int, int] | None = None
        seg_start = seg_end = 0.0
        acc = 0.0
        for start, end, code, ordinal in zip(s_sorted, e_sorted,
                                             svc_sorted, root_sorted):
            key = (code, ordinal)
            if key != prev_key:
                if prev_key is not None:
                    totals[prev_key[0]] = (totals.get(prev_key[0], 0.0)
                                           + acc + (seg_end - seg_start))
                prev_key = key
                seg_start, seg_end = start, end
                acc = 0.0
            elif start > seg_end:
                acc += seg_end - seg_start
                seg_start, seg_end = start, end
            elif end > seg_end:
                seg_end = end
        if prev_key is not None:
            totals[prev_key[0]] = (totals.get(prev_key[0], 0.0)
                                   + acc + (seg_end - seg_start))
        n = len(root_rows)
        # Emit in first-contribution order, matching the insertion order
        # the per-root accumulation used to produce.
        return {table.services.decode(code): totals[code] / n
                for code in first_seen if code in totals}

    def mean_root_latency(self, endpoint: str | None = None) -> float:
        """Mean end-to-end duration of traced user requests."""
        root_rows = self._filtered_root_rows(endpoint)
        if not root_rows:
            raise AnalysisError("no traced roots")
        rows = np.asarray(root_rows, dtype=np.int64)
        table = self._table
        durations = (table.completed.as_array()[rows]
                     - table.created.as_array()[rows])
        return sum(durations.tolist()) / len(root_rows)

    def to_chrome_trace(self, limit_roots: int | None = None) -> list[dict]:
        """Export spans as Chrome trace-event JSON (``chrome://tracing``,
        Perfetto, Speedscope).

        Each service maps to a process row, each replica to a thread row;
        spans become complete ("X") events with microsecond timestamps.
        ``limit_roots`` caps the export to the first N user requests'
        trees (traces of long runs are large).
        """
        roots = self.roots if limit_roots is None \
            else self.roots[:limit_roots]
        events: list[dict] = []
        for root in roots:
            for span in self.trace_of(root):
                events.append({
                    "name": f"{span.service}/{span.endpoint}",
                    "cat": span.service,
                    "ph": "X",
                    "ts": span.created_at * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": span.service,
                    "tid": (span.instance_id
                            if span.instance_id is not None else 0),
                    "args": {
                        "request_id": span.request_id,
                        "parent_id": span.parent_id,
                        "queue_ms": span.queue_time * 1e3,
                        "root_id": root.request_id,
                    },
                })
        return events

    def __repr__(self) -> str:
        return (f"<TraceCollector {len(self._table)} spans, "
                f"{len(self._table.root_rows)} roots>")
