"""Distributed request tracing.

Attach a :class:`~repro.tracing.collector.TraceCollector` to a deployment
(``deployment.tracer = TraceCollector()``) and every completed request
becomes a span.  The collector reconstructs call trees and computes
per-service *exclusive* time — the latency a service contributes after
subtracting the time it merely spent waiting on its downstream calls —
which is the decomposition behind "where does a page's latency actually
go" (experiment E11).
"""

from repro.tracing.collector import Span, SpanTable, TraceCollector

__all__ = ["Span", "SpanTable", "TraceCollector"]
