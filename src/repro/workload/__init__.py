"""Load generation and experiment execution.

* :class:`~repro.workload.closed.ClosedLoopWorkload` — a fixed population
  of users with exponential think time, each walking a session profile
  (the paper's HTTP load-driver setup).
* :class:`~repro.workload.openloop.OpenLoopWorkload` — Poisson arrivals at
  a fixed rate, for latency-under-load curves.
* :func:`~repro.workload.runner.run_experiment` — warmup, measure, and
  collect a :class:`~repro.workload.runner.RunResult`.
"""

from repro.workload.batch import BatchKernelWorkload
from repro.workload.closed import ClosedLoopWorkload
from repro.workload.faults import FaultEvent, FaultInjector
from repro.workload.openloop import OpenLoopWorkload
from repro.workload.runner import RunResult, run_experiment
from repro.workload.sessions import (
    MarkovSessionProfile,
    constant_session,
    scripted_session,
    weighted_mix_session,
)

__all__ = [
    "BatchKernelWorkload",
    "ClosedLoopWorkload",
    "FaultEvent",
    "FaultInjector",
    "MarkovSessionProfile",
    "OpenLoopWorkload",
    "RunResult",
    "constant_session",
    "run_experiment",
    "scripted_session",
    "weighted_mix_session",
]
