"""Open-loop (Poisson) load generation.

Requests arrive at a fixed average rate regardless of completions, so the
system can genuinely overload — the right driver for latency-versus-offered
-load curves.
"""

from __future__ import annotations

import typing as t

from repro._errors import WorkloadError
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputMeter
from repro.services.deployment import Deployment
from repro.workload.closed import SessionFactory


#: Arrival rate: a constant, or a function of simulated time (for
#: diurnal/time-varying load).
RateSpec = float | t.Callable[[float], float]


class OpenLoopWorkload:
    """Poisson arrivals at ``rate`` requests/second.

    ``rate`` may be a callable ``rate(now) -> float`` for time-varying
    load (the rate is re-sampled at every arrival, which is accurate for
    rates that vary slowly relative to inter-arrival gaps).  Each arrival
    takes the next step of a single shared session iterator (arrivals are
    anonymous, matching an open HTTP workload mix).
    """

    def __init__(self, deployment: Deployment,
                 session_factory: SessionFactory,
                 rate: RateSpec):
        if not callable(rate) and rate <= 0:
            raise WorkloadError(f"arrival rate must be positive: {rate}")
        self.deployment = deployment
        self.rate = rate
        self.session = session_factory(0)
        self.latency = LatencyRecorder()
        self.meter = ThroughputMeter(deployment.sim)
        self.errors = 0
        self.in_flight = 0
        self._started = False

    def start(self) -> None:
        """Launch the arrival process."""
        if self._started:
            raise WorkloadError("workload already started")
        self._started = True
        self.deployment.sim.process(self._arrivals())

    def current_rate(self) -> float:
        """The arrival rate in effect right now."""
        if callable(self.rate):
            value = float(self.rate(self.deployment.sim.now))
            if value <= 0:
                raise WorkloadError(
                    f"rate function returned non-positive rate {value} "
                    f"at t={self.deployment.sim.now}")
            return value
        return self.rate

    def _arrivals(self) -> t.Generator:
        deployment = self.deployment
        sim = deployment.sim
        while True:
            gap = deployment.streams.exponential(
                "openloop.arrivals", 1.0 / self.current_rate())
            yield sim.timeout(gap)
            try:
                service, endpoint, payload = next(self.session)
            except StopIteration:
                return
            issued_at = sim.now
            # Clients sit outside the service fabric (see ClosedLoopWorkload).
            done = deployment.dispatch(service, endpoint, payload=payload,
                                       protected=False)
            self.in_flight += 1
            done.add_callback(
                lambda event, t0=issued_at, tag=endpoint:
                self._on_complete(event, t0, tag))

    def _on_complete(self, event, issued_at: float, tag: str) -> None:
        self.in_flight -= 1
        if not event.ok:
            event.defuse()
            self.errors += 1
            return
        self.latency.record(self.deployment.sim.now - issued_at, tag=tag)
        self.meter.mark()

    def __repr__(self) -> str:
        return f"<OpenLoopWorkload rate={self.rate}/s>"
