"""Cohort compression: weighted user cohorts for million-user runs.

A closed-loop population of statistically identical users is an
expensive way to compute an aggregate: each user carries three named
random streams, one generator process, and one in-flight request, yet
all of them walk the same session profile with the same think-time
distribution.  :class:`CohortWorkload` collapses ``cohort_factor``
consecutive users into one *cohort*: a single representative event
stream whose think-time draws are compressed by the cohort's weight, so
the representative issues requests at the cohort's aggregate offered
rate.  Simulator state then scales with ``n_users / cohort_factor``
while the services still see (approximately) the demand of the full
population.

Exactness contract
------------------
A cohort of weight 1 *is* the per-user baseline: its generator delegates
to :meth:`ClosedLoopWorkload._user` verbatim, so every random draw,
event, and recorded sample is byte-identical to an uncompressed run.
The experiment funnel (:func:`repro.experiments.common.run_store` and
the direct construction sites in E11/E12/E13) always goes through
:func:`closed_workload`, which means the 16-case golden-digest suite
pins the weight-1 cohort path on both kernel backends.

Accuracy caveats (weight > 1) are spelled out in ``docs/SCALE.md``: the
aggregate offered rate is preserved exactly in the think-dominated
regime and saturated throughput is preserved past the knee, but
in-flight concurrency is compressed by the weight, so queueing delay
reflects ``n_cohorts`` rather than ``n_users`` outstanding requests.

Recoverability
--------------
Compression never destroys individual behavior: every user — member of
any cohort, representative or not — draws its session walk from its own
named stream (``session.<user_id>``), derived from the deployment seed
alone.  :func:`expand_member` replays any member's exact request
sequence from ``(seed, user_id)`` without running the simulation.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

from repro._errors import WorkloadError
from repro.sim.rand import RandomStreams
from repro.workload.closed import ClosedLoopWorkload, SessionFactory

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment
    from repro.workload.sessions import Step


@dataclasses.dataclass(frozen=True)
class Cohort:
    """``weight`` consecutive users represented by user ``rep``.

    The members are the global user ids ``rep .. rep + weight - 1``;
    ``rep`` doubles as the cohort's seed key (its named streams drive
    the compressed event stream).
    """

    rep: int
    weight: int

    def __post_init__(self) -> None:
        if self.rep < 0:
            raise WorkloadError(f"cohort rep must be >= 0: {self.rep}")
        if self.weight < 1:
            raise WorkloadError(
                f"cohort weight must be >= 1: {self.weight}")

    @property
    def members(self) -> range:
        """The global user ids this cohort stands for."""
        return range(self.rep, self.rep + self.weight)


def plan_cohorts(n_users: int, cohort_factor: int,
                 base: int = 0) -> list[Cohort]:
    """Partition users ``base .. base + n_users - 1`` into cohorts.

    Full cohorts of ``cohort_factor`` members, plus one trailing partial
    cohort when the population does not divide evenly.  A factor of 1
    yields one weight-1 cohort per user — the uncompressed layout.
    """
    if n_users < 1:
        raise WorkloadError(f"n_users must be >= 1: {n_users}")
    if cohort_factor < 1:
        raise WorkloadError(
            f"cohort_factor must be >= 1: {cohort_factor}")
    cohorts = []
    for first in range(base, base + n_users, cohort_factor):
        weight = min(cohort_factor, base + n_users - first)
        cohorts.append(Cohort(first, weight))
    return cohorts


class CohortWorkload(ClosedLoopWorkload):
    """``n_users`` closed-loop users compressed into weighted cohorts.

    Behaves exactly like :class:`ClosedLoopWorkload` when every cohort
    has weight 1 (the generator delegates to the parent's ``_user``).
    With weight ``w > 1`` the representative's think-time mean shrinks
    to ``think_time / w``, so one event stream carries the cohort's
    aggregate request count.
    """

    def __init__(self, deployment: "Deployment",
                 session_factory: SessionFactory,
                 n_users: int,
                 think_time: float = 0.5,
                 cohort_factor: int = 1,
                 cohorts: t.Sequence[Cohort] | None = None):
        super().__init__(deployment, session_factory, n_users,
                         think_time=think_time)
        if cohorts is None:
            cohorts = plan_cohorts(n_users, cohort_factor)
        else:
            cohorts = list(cohorts)
            total = sum(cohort.weight for cohort in cohorts)
            if total != n_users:
                raise WorkloadError(
                    f"cohort weights sum to {total}, not n_users="
                    f"{n_users}")
        self.cohorts: tuple[Cohort, ...] = tuple(cohorts)

    @property
    def n_cohorts(self) -> int:
        """How many representative event streams actually run."""
        return len(self.cohorts)

    def start(self) -> None:
        """Launch one representative process per cohort."""
        if self._started:
            raise WorkloadError("workload already started")
        self._started = True
        for cohort in self.cohorts:
            self.deployment.sim.process(
                self._cohort(cohort.rep, cohort.weight))

    def _cohort(self, rep: int, weight: int) -> t.Generator:
        # Weight 1 is the exactness contract: reuse the per-user
        # generator verbatim so the draw sequence cannot drift.
        if weight == 1:
            yield from self._user(rep)
            return
        deployment = self.deployment
        sim = deployment.sim
        session = self.session_factory(rep)
        # The representative stands for `weight` users: compressing the
        # think-time mean by the weight makes its request rate the
        # cohort's aggregate offered rate.  Start jitter stays spread
        # over the *original* think period so cohorts desynchronize the
        # way individual users would.
        think = (deployment.streams.exponential_sampler(
            f"user.think.{rep}", self.think_time / weight)
            if self.think_time > 0 else None)
        initial_delay = deployment.streams.uniform(
            f"user.start.{rep}", 0.0, max(self.think_time, 1e-3))
        yield sim.timeout(initial_delay)
        for service, endpoint, payload in session:
            if think is not None:
                yield sim.timeout(think())
            issued_at = sim.now
            done = deployment.dispatch(service, endpoint, payload=payload,
                                       protected=False)
            try:
                yield done
            except Exception:
                self.errors += 1
                continue
            self.latency.record(sim.now - issued_at, tag=endpoint)
            self.meter.mark()

    def __repr__(self) -> str:
        return (f"<CohortWorkload {self.n_users} users in "
                f"{self.n_cohorts} cohorts, think={self.think_time}s>")


def closed_workload(deployment: "Deployment",
                    session_factory: SessionFactory,
                    n_users: int,
                    think_time: float = 0.5,
                    cohort_factor: int = 1,
                    cohorts: t.Sequence[Cohort] | None = None
                    ) -> ClosedLoopWorkload:
    """The experiment funnel for closed-loop load generation.

    Always returns a :class:`CohortWorkload` so the cohort layer sits
    under the golden-digest contract even at factor 1 (where it is
    byte-identical to :class:`ClosedLoopWorkload` by delegation).
    """
    return CohortWorkload(deployment, session_factory, n_users,
                          think_time=think_time,
                          cohort_factor=cohort_factor,
                          cohorts=cohorts)


class _StreamsShim:
    """The minimal deployment surface a session factory may touch when
    replayed outside a simulation: its named random streams."""

    __slots__ = ("streams",)

    def __init__(self, streams: RandomStreams):
        self.streams = streams


def expand_member(profile: t.Any, seed: int, user_id: int,
                  n_steps: int) -> "list[Step]":
    """Replay user ``user_id``'s first ``n_steps`` session steps by seed.

    ``profile`` is anything with ``session_factory(deployment)`` that
    only consumes the deployment's named streams (the Markov profiles
    qualify: a walk touches only ``session.<user_id>``).  Because
    streams are independent by name, the replay draws exactly what the
    user draws inside a full run — compressed or not — so any cohort
    member's individual behavior is recoverable from ``(seed, user_id)``
    without simulating anything.
    """
    if n_steps < 0:
        raise WorkloadError(f"n_steps must be >= 0: {n_steps}")
    shim = _StreamsShim(RandomStreams(seed))
    factory = profile.session_factory(shim)
    return list(itertools.islice(factory(user_id), n_steps))
