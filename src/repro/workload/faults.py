"""Fault injection: crashes, slow replicas, stalls, hogs, and net delays.

The scale-up study assumes healthy replicas; production deployments do
not.  :class:`FaultInjector` schedules five fault classes against a
deployment:

* **kill** — the replica crashes: new requests shed, queued ones fail,
  in-flight ones finish; optionally an identical replica re-registers
  later (:meth:`FaultInjector.kill_at`);
* **slow** — the replica's CPU demand inflates by a factor for a window
  (a saturated neighbor, a thermal throttle, a degraded disk)
  (:meth:`FaultInjector.slow_at`);
* **pause** — the replica stops processing newly dequeued requests for a
  window while they age in its queue (GC pause, SIGSTOP, IO freeze)
  (:meth:`FaultInjector.pause_at`);
* **hog** — background CPU bursts compete inside the replica's task
  group for a window (a noisy co-tenant saturating the execution
  substrate) (:meth:`FaultInjector.hog_at`);
* **netdelay** — the RPC fabric's hop latency inflates by a factor for
  a window (bandwidth saturation / packet loss retransmits), fabric-wide
  (:meth:`FaultInjector.netdelay_at`).

Windowed faults stack deterministically: overlapping **slow** windows on
one replica multiply their factors (each recovery removes exactly its
own contribution), overlapping **pause** windows keep the replica parked
until the last window ends, and overlapping **netdelay** windows
multiply on top of the fabric's base latency, restored exactly when the
last one lifts.  A windowed fault whose target replica was already
killed by an earlier fault in the same schedule is a deterministic
no-op: it records a ``skipped`` event instead of corrupting injector
state (an out-of-range replica index with *no* prior kill of that
service is still a configuration error).

:meth:`FaultInjector.apply` takes the same faults as a JSON-native
schedule — the form experiments E13 and the chaos campaign engine carry
inside their sweep points, so fault scenarios are cacheable and
reproducible like any other parameter.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.cpu.burst import CpuBurst
from repro.services.deployment import Deployment
from repro.services.instance import ServiceInstance
from repro.sim.events import Event

#: Fault kinds accepted by :meth:`FaultInjector.apply`.
FAULT_KINDS = ("kill", "slow", "pause", "hog", "netdelay")

#: Service label recorded for fabric-wide faults (netdelay).
FABRIC = "*"


@dataclasses.dataclass
class FaultEvent:
    """One executed fault transition, for post-run inspection."""

    time: float
    kind: str  # "kill" | "restore" | "slow" | "recover" | "pause" |
    #            "resume" | "hog" | "hog_end" | "netdelay" |
    #            "netrestore" | "skipped"
    service: str
    instance_id: int


class FaultInjector:
    """Schedules replica faults against a deployment."""

    def __init__(self, deployment: Deployment):
        self.deployment = deployment
        self.events: list[FaultEvent] = []
        #: instance_id → stack of active slow factors (multiplicative).
        self._active_slows: dict[int, list[float]] = {}
        #: instance_id → stack of active pause gate events.
        self._active_pauses: dict[int, list[Event]] = {}
        #: Active netdelay factors (multiplicative over the base).
        self._active_netdelays: list[float] = []
        #: Fabric hop latency before the first active netdelay, restored
        #: exactly when the stack drains.
        self._net_base: float | None = None
        #: Services with at least one executed kill — the condition under
        #: which an unresolvable replica index becomes a no-op skip.
        self._killed_services: set[str] = set()

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def kill_at(self, time: float, service: str,
                replica_index: int = 0,
                restore_after: float | None = None) -> None:
        """Kill the ``replica_index``-th replica of ``service`` at ``time``.

        With ``restore_after``, an identical replica (same spec, affinity
        and home node) re-registers that many seconds after the kill.
        Scheduling is validated lazily: the replica is resolved when the
        fault fires, so replicas created after scheduling count too.
        """
        self._check_schedule(time)
        if restore_after is not None and restore_after <= 0:
            raise ConfigurationError(
                f"restore_after must be positive: {restore_after}")

        def fire() -> None:
            instance = self._resolve_or_skip(service, replica_index)
            if instance is None:
                return
            self._kill(instance)
            if restore_after is not None:
                self.deployment.sim.call_in(
                    restore_after, lambda: self._restore(instance))

        self.deployment.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Slow-replica faults (demand inflation)
    # ------------------------------------------------------------------
    def slow_at(self, time: float, service: str,
                replica_index: int = 0,
                factor: float = 4.0,
                duration: float | None = None) -> None:
        """Inflate one replica's CPU demand by ``factor`` at ``time``.

        Every demand the replica's handlers submit is multiplied by
        ``factor`` while the fault is active; with ``duration`` the
        replica recovers that many seconds later, otherwise it stays slow
        for the rest of the run.  Overlapping slow windows on the same
        replica compose multiplicatively, and each recovery removes
        exactly its own factor from the stack.
        """
        self._check_schedule(time)
        if factor <= 0:
            raise ConfigurationError(
                f"slow factor must be positive: {factor}")
        if duration is not None and duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {duration}")

        def fire() -> None:
            instance = self._resolve_or_skip(service, replica_index)
            if instance is None:
                return
            stack = self._active_slows.setdefault(instance.instance_id, [])
            stack.append(factor)
            self._apply_slow_stack(instance)
            self._record("slow", instance)
            if duration is not None:
                def recover() -> None:
                    stack.remove(factor)
                    self._apply_slow_stack(instance)
                    self._record("recover", instance)
                self.deployment.sim.call_in(duration, recover)

        self.deployment.sim.call_at(time, fire)

    def _apply_slow_stack(self, instance: ServiceInstance) -> None:
        product = 1.0
        for factor in self._active_slows.get(instance.instance_id, ()):
            product *= factor
        instance.demand_factor = product

    # ------------------------------------------------------------------
    # Pause faults (temporary stalls)
    # ------------------------------------------------------------------
    def pause_at(self, time: float, service: str,
                 replica_index: int = 0,
                 duration: float = 0.5) -> None:
        """Stall one replica's request processing for ``duration`` seconds.

        Workers finish in-flight handlers but park before touching the
        next dequeued request; queued requests age toward their
        deadlines.  Processing resumes automatically when the window
        ends.  Overlapping pause windows keep the replica parked until
        the *last* active window ends.
        """
        self._check_schedule(time)
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {duration}")

        def fire() -> None:
            instance = self._resolve_or_skip(service, replica_index)
            if instance is None:
                return
            resume = self.deployment.sim.event()
            stack = self._active_pauses.setdefault(
                instance.instance_id, [])
            stack.append(resume)
            instance.pause(resume)
            self._record("pause", instance)

            def end() -> None:
                stack.remove(resume)
                if stack:
                    # Workers woken below re-check the gate and park on
                    # a still-active window's event.
                    instance.pause(stack[-1])
                else:
                    instance.unpause()
                resume.succeed()
                self._record("resume", instance)

            self.deployment.sim.call_in(duration, end)

        self.deployment.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # CPU-hog faults (execution saturation)
    # ------------------------------------------------------------------
    def hog_at(self, time: float, service: str,
               replica_index: int = 0,
               duration: float = 0.5,
               intensity: float = 1.0,
               workers: int = 1,
               slice_seconds: float = 0.002) -> None:
        """Run background CPU hogs inside one replica's task group.

        ``workers`` hog loops each submit back-to-back CPU bursts of
        ``slice_seconds * intensity`` demand through the real scheduler
        until ``duration`` elapses, competing with the replica's request
        handlers for its CPU affinity — the chaosprobe ``pod-cpu-hog``
        analog.  The last burst in flight when the window closes runs to
        completion.
        """
        self._check_schedule(time)
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {duration}")
        if intensity <= 0:
            raise ConfigurationError(
                f"intensity must be positive: {intensity}")
        if workers < 1:
            raise ConfigurationError(
                f"workers must be >= 1: {workers}")
        if slice_seconds <= 0:
            raise ConfigurationError(
                f"slice_seconds must be positive: {slice_seconds}")

        def fire() -> None:
            instance = self._resolve_or_skip(service, replica_index)
            if instance is None:
                return
            sim = self.deployment.sim
            scheduler = self.deployment.scheduler
            end_time = sim.now + duration
            demand = slice_seconds * intensity

            def hog_loop() -> t.Generator:
                while sim.now < end_time:
                    burst = CpuBurst(demand, instance.group, Event(sim))
                    scheduler.submit(burst)
                    yield burst.done

            for __ in range(workers):
                sim.process(hog_loop())
            self._record("hog", instance)
            sim.call_in(duration,
                        lambda: self._record("hog_end", instance))

        self.deployment.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Network-delay faults (bandwidth saturation)
    # ------------------------------------------------------------------
    def netdelay_at(self, time: float,
                    factor: float = 4.0,
                    duration: float | None = None) -> None:
        """Inflate the RPC fabric's hop latency by ``factor`` at ``time``.

        Fabric-wide: every request and response hop pays the inflated
        latency while the window is active — the simulated equivalent of
        a saturated NIC or loss-induced retransmits.  Overlapping
        windows compose multiplicatively over the fabric's base latency,
        which is restored *exactly* when the last window lifts.  With
        ``duration=None`` the degradation is permanent.
        """
        self._check_schedule(time)
        if factor <= 0:
            raise ConfigurationError(
                f"netdelay factor must be positive: {factor}")
        if duration is not None and duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {duration}")

        def fire() -> None:
            rpc = self.deployment.rpc
            if not self._active_netdelays:
                self._net_base = rpc.hop_latency
            self._active_netdelays.append(factor)
            self._apply_netdelay_stack()
            self.events.append(FaultEvent(
                self.deployment.sim.now, "netdelay", FABRIC, -1))
            if duration is not None:
                def end() -> None:
                    self._active_netdelays.remove(factor)
                    self._apply_netdelay_stack()
                    self.events.append(FaultEvent(
                        self.deployment.sim.now, "netrestore", FABRIC, -1))
                self.deployment.sim.call_in(duration, end)

        self.deployment.sim.call_at(time, fire)

    def _apply_netdelay_stack(self) -> None:
        base = t.cast(float, self._net_base)
        if not self._active_netdelays:
            self.deployment.rpc.hop_latency = base
            self._net_base = None
            return
        product = 1.0
        for factor in self._active_netdelays:
            product *= factor
        self.deployment.rpc.hop_latency = base * product

    # ------------------------------------------------------------------
    # Declarative schedules (JSON-native, sweep-friendly)
    # ------------------------------------------------------------------
    def apply(self, schedule: t.Sequence[t.Mapping[str, t.Any]]) -> None:
        """Schedule every fault in a JSON-native ``schedule``.

        Each entry is a mapping with ``kind`` (one of
        :data:`FAULT_KINDS`), ``time``, ``service`` (ignored for
        ``netdelay``, which is fabric-wide), optional ``replica``
        (default 0), and the kind's own knobs: ``restore_after`` (kill),
        ``factor``/``duration`` (slow, netdelay), ``duration`` (pause),
        ``duration``/``intensity``/``workers`` (hog).
        """
        for fault in schedule:
            kind = fault.get("kind")
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; choose from "
                    f"{FAULT_KINDS}")
            time = float(fault["time"])
            replica = int(fault.get("replica", 0))
            if kind == "netdelay":
                self.netdelay_at(time,
                                 factor=float(fault.get("factor", 4.0)),
                                 duration=fault.get("duration"))
                continue
            service = str(fault["service"])
            if kind == "kill":
                self.kill_at(time, service, replica,
                             restore_after=fault.get("restore_after"))
            elif kind == "slow":
                self.slow_at(time, service, replica,
                             factor=float(fault.get("factor", 4.0)),
                             duration=fault.get("duration"))
            elif kind == "hog":
                self.hog_at(time, service, replica,
                            duration=float(fault.get("duration", 0.5)),
                            intensity=float(fault.get("intensity", 1.0)),
                            workers=int(fault.get("workers", 1)))
            else:
                self.pause_at(time, service, replica,
                              duration=float(fault.get("duration", 0.5)))

    # ------------------------------------------------------------------
    # Internals and queries
    # ------------------------------------------------------------------
    def _check_schedule(self, time: float) -> None:
        if time < self.deployment.sim.now:
            raise ConfigurationError(
                f"cannot schedule a fault in the past (t={time})")

    def _resolve(self, service: str, replica_index: int) -> ServiceInstance:
        instances = self.deployment.registry.instances_of(service)
        if not instances:
            raise ConfigurationError(
                f"no replicas of {service!r} to fault")
        if not 0 <= replica_index < len(instances):
            raise ConfigurationError(
                f"{service!r} has {len(instances)} replicas; "
                f"index {replica_index} is invalid")
        return instances[replica_index]

    def _resolve_or_skip(self, service: str,
                         replica_index: int) -> ServiceInstance | None:
        """Resolve a fault target, or no-op when a prior kill emptied it.

        A replica index this injector's own kills made unresolvable is a
        legitimate race in a composed schedule, so the fault degrades to
        a recorded ``skipped`` event; an unresolvable index with no
        prior kill of that service is still a configuration error.
        """
        try:
            return self._resolve(service, replica_index)
        except ConfigurationError:
            if service in self._killed_services:
                self.events.append(FaultEvent(
                    self.deployment.sim.now, "skipped", service, -1))
                return None
            raise

    def _record(self, kind: str, instance: ServiceInstance) -> None:
        self.events.append(FaultEvent(
            self.deployment.sim.now, kind,
            instance.spec.name, instance.instance_id))

    def _kill(self, instance: ServiceInstance) -> None:
        self.deployment.remove_instance(instance)
        instance.shutdown()
        self._killed_services.add(instance.spec.name)
        self._record("kill", instance)

    def _restore(self, dead: ServiceInstance) -> None:
        replacement = self.deployment.add_instance(
            dead.spec, affinity=dead.affinity, home_node=dead.home_node)
        self._record("restore", replacement)

    def kills(self) -> list[FaultEvent]:
        """Executed kill events."""
        return [e for e in self.events if e.kind == "kill"]

    def restores(self) -> list[FaultEvent]:
        """Executed restore events."""
        return [e for e in self.events if e.kind == "restore"]

    def of_kind(self, kind: str) -> list[FaultEvent]:
        """Executed events of one kind (``slow``, ``pause``, ...)."""
        return [e for e in self.events if e.kind == kind]
