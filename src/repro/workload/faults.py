"""Fault injection: replica crashes and recoveries on a schedule.

The scale-up study assumes healthy replicas; production deployments do
not.  :class:`FaultInjector` kills a replica at a chosen time (new
requests shed, queued ones fail, in-flight ones finish) and optionally
restores an identical one later — letting tests and examples verify that
placement and load balancing degrade gracefully.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.services.deployment import Deployment
from repro.services.instance import ServiceInstance


@dataclasses.dataclass
class FaultEvent:
    """One executed fault, for post-run inspection."""

    time: float
    kind: str  # "kill" | "restore"
    service: str
    instance_id: int


class FaultInjector:
    """Schedules replica kills/restores against a deployment."""

    def __init__(self, deployment: Deployment):
        self.deployment = deployment
        self.events: list[FaultEvent] = []

    def kill_at(self, time: float, service: str,
                replica_index: int = 0,
                restore_after: float | None = None) -> None:
        """Kill the ``replica_index``-th replica of ``service`` at ``time``.

        With ``restore_after``, an identical replica (same spec, affinity
        and home node) re-registers that many seconds after the kill.
        Scheduling is validated lazily: the replica is resolved when the
        fault fires, so replicas created after scheduling count too.
        """
        if time < self.deployment.sim.now:
            raise ConfigurationError(
                f"cannot schedule a fault in the past (t={time})")
        if restore_after is not None and restore_after <= 0:
            raise ConfigurationError(
                f"restore_after must be positive: {restore_after}")

        def fire() -> None:
            instance = self._resolve(service, replica_index)
            self._kill(instance)
            if restore_after is not None:
                self.deployment.sim.call_in(
                    restore_after, lambda: self._restore(instance))

        self.deployment.sim.call_at(time, fire)

    def _resolve(self, service: str, replica_index: int) -> ServiceInstance:
        instances = self.deployment.registry.instances_of(service)
        if not instances:
            raise ConfigurationError(
                f"no replicas of {service!r} to kill")
        if not 0 <= replica_index < len(instances):
            raise ConfigurationError(
                f"{service!r} has {len(instances)} replicas; "
                f"index {replica_index} is invalid")
        return instances[replica_index]

    def _kill(self, instance: ServiceInstance) -> None:
        self.deployment.remove_instance(instance)
        instance.shutdown()
        self.events.append(FaultEvent(
            self.deployment.sim.now, "kill",
            instance.spec.name, instance.instance_id))

    def _restore(self, dead: ServiceInstance) -> None:
        replacement = self.deployment.add_instance(
            dead.spec, affinity=dead.affinity, home_node=dead.home_node)
        self.events.append(FaultEvent(
            self.deployment.sim.now, "restore",
            replacement.spec.name, replacement.instance_id))

    def kills(self) -> list[FaultEvent]:
        """Executed kill events."""
        return [e for e in self.events if e.kind == "kill"]

    def restores(self) -> list[FaultEvent]:
        """Executed restore events."""
        return [e for e in self.events if e.kind == "restore"]
