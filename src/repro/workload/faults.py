"""Fault injection: crashes, slow replicas, and stalls on a schedule.

The scale-up study assumes healthy replicas; production deployments do
not.  :class:`FaultInjector` schedules three fault classes against a
deployment:

* **kill** — the replica crashes: new requests shed, queued ones fail,
  in-flight ones finish; optionally an identical replica re-registers
  later (:meth:`FaultInjector.kill_at`);
* **slow** — the replica's CPU demand inflates by a factor for a window
  (a saturated neighbor, a thermal throttle, a degraded disk)
  (:meth:`FaultInjector.slow_at`);
* **pause** — the replica stops processing newly dequeued requests for a
  window while they age in its queue (GC pause, SIGSTOP, IO freeze)
  (:meth:`FaultInjector.pause_at`).

:meth:`FaultInjector.apply` takes the same faults as a JSON-native
schedule — the form experiment E13 carries inside its sweep points, so
fault scenarios are cacheable and reproducible like any other parameter.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.services.deployment import Deployment
from repro.services.instance import ServiceInstance

#: Fault kinds accepted by :meth:`FaultInjector.apply`.
FAULT_KINDS = ("kill", "slow", "pause")


@dataclasses.dataclass
class FaultEvent:
    """One executed fault transition, for post-run inspection."""

    time: float
    kind: str  # "kill" | "restore" | "slow" | "recover" | "pause" | "resume"
    service: str
    instance_id: int


class FaultInjector:
    """Schedules replica faults against a deployment."""

    def __init__(self, deployment: Deployment):
        self.deployment = deployment
        self.events: list[FaultEvent] = []

    # ------------------------------------------------------------------
    # Crash faults
    # ------------------------------------------------------------------
    def kill_at(self, time: float, service: str,
                replica_index: int = 0,
                restore_after: float | None = None) -> None:
        """Kill the ``replica_index``-th replica of ``service`` at ``time``.

        With ``restore_after``, an identical replica (same spec, affinity
        and home node) re-registers that many seconds after the kill.
        Scheduling is validated lazily: the replica is resolved when the
        fault fires, so replicas created after scheduling count too.
        """
        self._check_schedule(time)
        if restore_after is not None and restore_after <= 0:
            raise ConfigurationError(
                f"restore_after must be positive: {restore_after}")

        def fire() -> None:
            instance = self._resolve(service, replica_index)
            self._kill(instance)
            if restore_after is not None:
                self.deployment.sim.call_in(
                    restore_after, lambda: self._restore(instance))

        self.deployment.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Slow-replica faults (demand inflation)
    # ------------------------------------------------------------------
    def slow_at(self, time: float, service: str,
                replica_index: int = 0,
                factor: float = 4.0,
                duration: float | None = None) -> None:
        """Inflate one replica's CPU demand by ``factor`` at ``time``.

        Every demand the replica's handlers submit is multiplied by
        ``factor`` while the fault is active; with ``duration`` the
        replica recovers (factor back to 1.0) that many seconds later,
        otherwise it stays slow for the rest of the run.
        """
        self._check_schedule(time)
        if factor <= 0:
            raise ConfigurationError(
                f"slow factor must be positive: {factor}")
        if duration is not None and duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {duration}")

        def fire() -> None:
            instance = self._resolve(service, replica_index)
            instance.demand_factor = factor
            self._record("slow", instance)
            if duration is not None:
                def recover() -> None:
                    instance.demand_factor = 1.0
                    self._record("recover", instance)
                self.deployment.sim.call_in(duration, recover)

        self.deployment.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Pause faults (temporary stalls)
    # ------------------------------------------------------------------
    def pause_at(self, time: float, service: str,
                 replica_index: int = 0,
                 duration: float = 0.5) -> None:
        """Stall one replica's request processing for ``duration`` seconds.

        Workers finish in-flight handlers but park before touching the
        next dequeued request; queued requests age toward their
        deadlines.  Processing resumes automatically when the window
        ends.
        """
        self._check_schedule(time)
        if duration <= 0:
            raise ConfigurationError(
                f"duration must be positive: {duration}")

        def fire() -> None:
            instance = self._resolve(service, replica_index)
            resume = self.deployment.sim.event()
            instance.pause(resume)
            self._record("pause", instance)

            def end() -> None:
                instance.unpause()
                resume.succeed()
                self._record("resume", instance)

            self.deployment.sim.call_in(duration, end)

        self.deployment.sim.call_at(time, fire)

    # ------------------------------------------------------------------
    # Declarative schedules (JSON-native, sweep-friendly)
    # ------------------------------------------------------------------
    def apply(self, schedule: t.Sequence[t.Mapping[str, t.Any]]) -> None:
        """Schedule every fault in a JSON-native ``schedule``.

        Each entry is a mapping with ``kind`` (one of
        :data:`FAULT_KINDS`), ``time``, ``service``, optional
        ``replica`` (default 0), and the kind's own knobs:
        ``restore_after`` (kill), ``factor``/``duration`` (slow),
        ``duration`` (pause).
        """
        for fault in schedule:
            kind = fault.get("kind")
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; choose from "
                    f"{FAULT_KINDS}")
            time = float(fault["time"])
            service = str(fault["service"])
            replica = int(fault.get("replica", 0))
            if kind == "kill":
                self.kill_at(time, service, replica,
                             restore_after=fault.get("restore_after"))
            elif kind == "slow":
                self.slow_at(time, service, replica,
                             factor=float(fault.get("factor", 4.0)),
                             duration=fault.get("duration"))
            else:
                self.pause_at(time, service, replica,
                              duration=float(fault.get("duration", 0.5)))

    # ------------------------------------------------------------------
    # Internals and queries
    # ------------------------------------------------------------------
    def _check_schedule(self, time: float) -> None:
        if time < self.deployment.sim.now:
            raise ConfigurationError(
                f"cannot schedule a fault in the past (t={time})")

    def _resolve(self, service: str, replica_index: int) -> ServiceInstance:
        instances = self.deployment.registry.instances_of(service)
        if not instances:
            raise ConfigurationError(
                f"no replicas of {service!r} to fault")
        if not 0 <= replica_index < len(instances):
            raise ConfigurationError(
                f"{service!r} has {len(instances)} replicas; "
                f"index {replica_index} is invalid")
        return instances[replica_index]

    def _record(self, kind: str, instance: ServiceInstance) -> None:
        self.events.append(FaultEvent(
            self.deployment.sim.now, kind,
            instance.spec.name, instance.instance_id))

    def _kill(self, instance: ServiceInstance) -> None:
        self.deployment.remove_instance(instance)
        instance.shutdown()
        self._record("kill", instance)

    def _restore(self, dead: ServiceInstance) -> None:
        replacement = self.deployment.add_instance(
            dead.spec, affinity=dead.affinity, home_node=dead.home_node)
        self._record("restore", replacement)

    def kills(self) -> list[FaultEvent]:
        """Executed kill events."""
        return [e for e in self.events if e.kind == "kill"]

    def restores(self) -> list[FaultEvent]:
        """Executed restore events."""
        return [e for e in self.events if e.kind == "restore"]

    def of_kind(self, kind: str) -> list[FaultEvent]:
        """Executed events of one kind (``slow``, ``pause``, ...)."""
        return [e for e in self.events if e.kind == kind]
