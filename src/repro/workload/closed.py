"""Closed-loop load generation.

A fixed population of simulated users.  Each user repeatedly: thinks for an
exponentially distributed time, issues the next request of its session
profile, and waits for the response.  Throughput is therefore governed by
the interactive response-time law — exactly how the TeaStore HTTP load
driver used in the paper operates.
"""

from __future__ import annotations

import typing as t

from repro._errors import WorkloadError
from repro.metrics.latency import LatencyRecorder
from repro.metrics.throughput import ThroughputMeter
from repro.services.deployment import Deployment

#: A session factory returns, per user, an iterator of
#: (service, endpoint, payload) triples — the user's request stream.
SessionFactory = t.Callable[[int], t.Iterator[tuple[str, str, object]]]


class ClosedLoopWorkload:
    """``n_users`` closed-loop users driving a deployment."""

    def __init__(self, deployment: Deployment,
                 session_factory: SessionFactory,
                 n_users: int,
                 think_time: float = 0.5):
        if n_users < 1:
            raise WorkloadError(f"n_users must be >= 1: {n_users}")
        if think_time < 0:
            raise WorkloadError(f"think_time must be >= 0: {think_time}")
        self.deployment = deployment
        self.session_factory = session_factory
        self.n_users = n_users
        self.think_time = think_time
        self.latency = LatencyRecorder()
        self.meter = ThroughputMeter(deployment.sim)
        self.errors = 0
        self._started = False

    def start(self) -> None:
        """Launch all user processes (idempotence guarded)."""
        if self._started:
            raise WorkloadError("workload already started")
        self._started = True
        for user_id in range(self.n_users):
            self.deployment.sim.process(self._user(user_id))

    def _user(self, user_id: int) -> t.Generator:
        deployment = self.deployment
        sim = deployment.sim
        session = self.session_factory(user_id)
        # Bound once per user: the sampler draws from the same stream
        # state as repeated exponential() calls, so the draw sequence
        # (and every golden digest) is unchanged.
        think = (deployment.streams.exponential_sampler(
            f"user.think.{user_id}", self.think_time)
            if self.think_time > 0 else None)
        # Desynchronize user start times across one think period.
        initial_delay = deployment.streams.uniform(
            f"user.start.{user_id}", 0.0, max(self.think_time, 1e-3))
        yield sim.timeout(initial_delay)
        for service, endpoint, payload in session:
            if think is not None:
                yield sim.timeout(think())
            issued_at = sim.now
            # Users are clients outside the service fabric: their
            # requests take the plain path so measured latency reflects
            # what the internal resilience policies deliver.
            done = deployment.dispatch(service, endpoint, payload=payload,
                                       protected=False)
            try:
                yield done
            except Exception:
                # Shed or failed request: count it; the user retries with
                # its next session step after thinking again.
                self.errors += 1
                continue
            self.latency.record(sim.now - issued_at, tag=endpoint)
            self.meter.mark()

    def __repr__(self) -> str:
        return (f"<ClosedLoopWorkload {self.n_users} users, "
                f"think={self.think_time}s>")
