"""Batch co-runner workloads ("noisy neighbors").

A :class:`BatchKernelWorkload` keeps a configurable number of batch
threads busy on the shared machine — the classic datacenter co-location
scenario.  It executes through the same scheduler and memory model as the
services, so an unpinned neighbor both steals CPU *and* thrashes every L3
slice it may migrate across, while a confined one pressures only its own
partition.
"""

from __future__ import annotations

import typing as t

from repro._errors import WorkloadError
from repro.cpu.burst import CpuBurst, TaskGroup
from repro.memory.profile import WorkloadProfile
from repro.services.deployment import Deployment
from repro.topology.cpuset import CpuSet


class BatchKernelWorkload:
    """``concurrency`` batch threads issuing back-to-back CPU bursts."""

    def __init__(self, deployment: Deployment, profile: WorkloadProfile,
                 affinity: CpuSet | None = None,
                 concurrency: int = 8,
                 burst_demand: float = 5e-3,
                 demand_cv: float = 0.1,
                 home_node: int | None = None):
        if concurrency < 1:
            raise WorkloadError(
                f"concurrency must be >= 1: {concurrency}")
        if burst_demand <= 0:
            raise WorkloadError(
                f"burst_demand must be positive: {burst_demand}")
        self.deployment = deployment
        affinity = affinity if affinity is not None else deployment.online
        if home_node is None:
            home_node = deployment.machine.cpu(affinity.first()).node.index
        self.group = TaskGroup(profile.name, affinity, profile=profile,
                               home_node=home_node)
        deployment.memory_model.register_for_affinity(self.group)
        self.concurrency = concurrency
        self.burst_demand = burst_demand
        self.demand_cv = demand_cv
        self._started = False
        self._count_at_window_start: int | None = None
        self._window_start_time: float | None = None

    def start(self) -> None:
        """Launch the batch threads (idempotence guarded)."""
        if self._started:
            raise WorkloadError("batch workload already started")
        self._started = True
        for thread_index in range(self.concurrency):
            self.deployment.sim.process(self._thread(thread_index))

    def _thread(self, thread_index: int) -> t.Generator:
        deployment = self.deployment
        stream = f"batch.{self.group.name}.{thread_index}"
        while True:
            demand = deployment.streams.lognormal_mean_cv(
                stream, self.burst_demand, self.demand_cv)
            burst = CpuBurst(demand, self.group, deployment.sim.event())
            deployment.scheduler.submit(burst)
            yield burst.done

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def start_window(self) -> None:
        """Begin measuring batch progress."""
        self._count_at_window_start = self.group.bursts_completed
        self._window_start_time = self.deployment.sim.now

    def bursts_per_second(self) -> float:
        """Batch bursts completed per second since :meth:`start_window`."""
        if (self._count_at_window_start is None
                or self._window_start_time is None):
            raise WorkloadError("start_window() was never called")
        elapsed = self.deployment.sim.now - self._window_start_time
        if elapsed <= 0:
            raise WorkloadError("measurement window has zero duration")
        return ((self.group.bursts_completed - self._count_at_window_start)
                / elapsed)

    def __repr__(self) -> str:
        return (f"<BatchKernelWorkload {self.group.name!r} "
                f"x{self.concurrency}>")
