"""Warmup/measure experiment execution and result collection.

Implements the rigorous-methodology discipline: a warmup phase whose
samples are discarded, then a measurement window over which throughput,
latency percentiles, and utilization are computed.  One call = one run;
repeat with different seeds and summarize with
:func:`repro.metrics.stats.confidence_interval`.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.metrics.utilization import UtilizationProbe
from repro.services.deployment import Deployment

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.workload.closed import ClosedLoopWorkload
    from repro.workload.openloop import OpenLoopWorkload

    Workload = ClosedLoopWorkload | OpenLoopWorkload


@dataclasses.dataclass(frozen=True)
class RunResult:
    """Everything one measured run produces."""

    throughput: float
    latency_mean: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    completed: int
    errors: int
    duration: float
    machine_utilization: float
    service_utilization: dict[str, float]
    service_share: dict[str, float]
    #: Per request type: (mean, p99) latency — the paper-style
    #: per-page-class view.
    latency_by_endpoint: dict[str, tuple[float, float]] = dataclasses.field(
        default_factory=dict)

    def row(self) -> dict[str, float]:
        """Flat numeric summary (benchmark table row)."""
        return {
            "throughput_rps": self.throughput,
            "latency_mean_ms": self.latency_mean * 1e3,
            "latency_p50_ms": self.latency_p50 * 1e3,
            "latency_p95_ms": self.latency_p95 * 1e3,
            "latency_p99_ms": self.latency_p99 * 1e3,
            "completed": float(self.completed),
            "errors": float(self.errors),
            "machine_utilization": self.machine_utilization,
        }

    def __str__(self) -> str:
        return (f"{self.throughput:8.1f} req/s | "
                f"mean {self.latency_mean * 1e3:7.2f} ms | "
                f"p99 {self.latency_p99 * 1e3:7.2f} ms | "
                f"util {self.machine_utilization * 100:5.1f}%")


def run_experiment(deployment: Deployment, workload: "Workload",
                   warmup: float = 2.0,
                   duration: float = 5.0,
                   on_measure_start: t.Callable[[], None] | None = None
                   ) -> RunResult:
    """Run ``workload`` against ``deployment`` and measure one window.

    The workload is started (if it was not already), warmed up for
    ``warmup`` simulated seconds, then measured for ``duration`` seconds.
    ``on_measure_start`` runs between the two phases — the hook the
    chaos campaign engine uses to attach a tracer to the measurement
    window only, without duplicating this function's discipline.
    """
    if warmup < 0 or duration <= 0:
        raise ConfigurationError(
            f"need warmup >= 0 and duration > 0 "
            f"(got {warmup}, {duration})")
    if not workload._started:
        workload.start()
    probe = UtilizationProbe(deployment.scheduler, deployment.groups())

    deployment.run(until=deployment.sim.now + warmup)
    if on_measure_start is not None:
        on_measure_start()
    workload.latency.reset()
    workload.meter.start_window()
    probe.start()

    deployment.run(until=deployment.sim.now + duration)
    workload.meter.stop_window()
    probe.stop()

    if workload.latency.count == 0:
        raise ConfigurationError(
            "no requests completed inside the measurement window; "
            "increase duration or check the workload wiring")
    return RunResult(
        throughput=workload.meter.rate(),
        latency_mean=workload.latency.mean(),
        latency_p50=workload.latency.p50(),
        latency_p95=workload.latency.p95(),
        latency_p99=workload.latency.p99(),
        completed=workload.meter.window_count,
        errors=workload.errors,
        duration=duration,
        machine_utilization=probe.machine_utilization(),
        service_utilization=probe.group_utilization(),
        service_share=probe.group_share(),
        latency_by_endpoint={
            tag: (workload.latency.mean(tag), workload.latency.p99(tag))
            for tag in workload.latency.tags},
    )
