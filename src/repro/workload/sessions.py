"""Reusable session factories for load generators.

Session factories return, per user, an iterator of
``(service, endpoint, payload)`` triples.  TeaStore experiments use the
Markov profiles in :mod:`repro.teastore.profiles`; these helpers cover
the other common shapes: a constant endpoint, a fixed script, and a
static weighted mix.
"""

from __future__ import annotations

import itertools
import typing as t

from repro._errors import WorkloadError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment

Step = tuple[str, str, object]


def constant_session(service: str, endpoint: str,
                     payload: object = None) -> t.Callable[[int], t.Iterator[Step]]:
    """Every request hits the same endpoint (microbenchmarks)."""
    def factory(user_id: int) -> t.Iterator[Step]:
        return itertools.repeat((service, endpoint, payload))
    return factory


def scripted_session(steps: t.Sequence[Step],
                     repeat: bool = True) -> t.Callable[[int], t.Iterator[Step]]:
    """Users replay a fixed request script, optionally forever.

    With ``repeat=False`` each user performs the script once and stops
    (its closed-loop user then goes idle) — useful for replaying recorded
    traces with exact request counts.
    """
    if not steps:
        raise WorkloadError("scripted_session needs at least one step")
    steps = [tuple(step) for step in steps]
    for step in steps:
        if len(step) != 3:
            raise WorkloadError(
                f"each step must be (service, endpoint, payload): {step!r}")

    def factory(user_id: int) -> t.Iterator[Step]:
        if repeat:
            return itertools.cycle(steps)
        return iter(steps)
    return factory


def weighted_mix_session(deployment: "Deployment",
                         mix: t.Mapping[Step, float]
                         ) -> t.Callable[[int], t.Iterator[Step]]:
    """Independent draws from a static endpoint mix (no session state).

    Unlike the Markov profiles there is no per-user state; each request
    is an independent sample, as in open HTTP replay tools.
    """
    if not mix:
        raise WorkloadError("weighted_mix_session needs a non-empty mix")
    steps = [tuple(step) for step in mix]
    weights = [mix[step] for step in mix]  # type: ignore[index]
    if any(weight < 0 for weight in weights) or sum(weights) <= 0:
        raise WorkloadError("mix weights must be non-negative, sum > 0")

    def factory(user_id: int) -> t.Iterator[Step]:
        stream = f"mix.{user_id}"

        def walk() -> t.Iterator[Step]:
            while True:
                index = deployment.streams.choice_index(stream, weights)
                yield steps[index]  # type: ignore[misc]
        return walk()
    return factory
