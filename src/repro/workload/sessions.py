"""Reusable session factories for load generators.

Session factories return, per user, an iterator of
``(service, endpoint, payload)`` triples.  Application experiments use
:class:`MarkovSessionProfile` (stochastic user profiles à la TeaStore's
LIMBO driver); the helpers below cover the other common shapes: a
constant endpoint, a fixed script, and a static weighted mix.
"""

from __future__ import annotations

import itertools
import typing as t

from repro._errors import WorkloadError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment

Step = tuple[str, str, object]

#: state → list of (next_state, probability).
Transitions = t.Mapping[str, t.Sequence[tuple[str, float]]]


class MarkovSessionProfile:
    """A user-session generator driven by a Markov chain over endpoints.

    Each state is an endpoint of ``service`` (WebUI for TeaStore,
    frontend for Online Boutique, ...).  Users walk independent chains
    on their own random streams, so traces are reproducible per
    (seed, user).
    """

    def __init__(self, transitions: Transitions, start: str = "home",
                 service: str = "webui"):
        self.service = service
        self.start = start
        self.transitions = {state: list(nexts)
                            for state, nexts in transitions.items()}
        self._validate()
        self._targets = {state: [target for target, __ in nexts]
                         for state, nexts in self.transitions.items()}
        self._weights = {state: [weight for __, weight in nexts]
                         for state, nexts in self.transitions.items()}

    def _validate(self) -> None:
        if self.start not in self.transitions:
            raise WorkloadError(
                f"start state {self.start!r} has no transitions")
        for state, nexts in self.transitions.items():
            if not nexts:
                raise WorkloadError(f"state {state!r} has no successors")
            total = sum(weight for __, weight in nexts)
            if abs(total - 1.0) > 1e-9:
                raise WorkloadError(
                    f"state {state!r}: probabilities sum to {total}, not 1")
            for target, weight in nexts:
                if weight < 0:
                    raise WorkloadError(
                        f"state {state!r}: negative probability for "
                        f"{target!r}")
                if target not in self.transitions:
                    raise WorkloadError(
                        f"state {state!r} references unknown state "
                        f"{target!r}")

    @property
    def states(self) -> list[str]:
        """All endpoint states, sorted."""
        return sorted(self.transitions)

    def session_factory(self, deployment: "Deployment"):
        """Bind to a deployment; returns a workload session factory."""
        def factory(user_id: int) -> t.Iterator[Step]:
            return self._walk(deployment, user_id)
        return factory

    def _walk(self, deployment: "Deployment",
              user_id: int) -> t.Iterator[Step]:
        stream = f"session.{user_id}"
        state = self.start
        while True:
            yield (self.service, state, None)
            index = deployment.streams.choice_index(stream,
                                                    self._weights[state])
            state = self._targets[state][index]

    def stationary_mix(self, n_steps: int = 100_000, seed: int = 0,
                       deployment: "Deployment | None" = None) -> dict[str, float]:
        """Empirical endpoint mix over a long walk (for tests/analysis)."""
        import numpy as np
        rng = np.random.default_rng(seed)
        counts = {state: 0 for state in self.transitions}
        state = self.start
        for __ in range(n_steps):
            counts[state] += 1
            weights = np.asarray(self._weights[state])
            state = self._targets[state][
                int(rng.choice(len(weights), p=weights / weights.sum()))]
        return {state: count / n_steps for state, count in counts.items()}


def constant_session(service: str, endpoint: str,
                     payload: object = None) -> t.Callable[[int], t.Iterator[Step]]:
    """Every request hits the same endpoint (microbenchmarks)."""
    def factory(user_id: int) -> t.Iterator[Step]:
        return itertools.repeat((service, endpoint, payload))
    return factory


def scripted_session(steps: t.Sequence[Step],
                     repeat: bool = True) -> t.Callable[[int], t.Iterator[Step]]:
    """Users replay a fixed request script, optionally forever.

    With ``repeat=False`` each user performs the script once and stops
    (its closed-loop user then goes idle) — useful for replaying recorded
    traces with exact request counts.
    """
    if not steps:
        raise WorkloadError("scripted_session needs at least one step")
    steps = [tuple(step) for step in steps]
    for step in steps:
        if len(step) != 3:
            raise WorkloadError(
                f"each step must be (service, endpoint, payload): {step!r}")

    def factory(user_id: int) -> t.Iterator[Step]:
        if repeat:
            return itertools.cycle(steps)
        return iter(steps)
    return factory


def weighted_mix_session(deployment: "Deployment",
                         mix: t.Mapping[Step, float]
                         ) -> t.Callable[[int], t.Iterator[Step]]:
    """Independent draws from a static endpoint mix (no session state).

    Unlike the Markov profiles there is no per-user state; each request
    is an independent sample, as in open HTTP replay tools.
    """
    if not mix:
        raise WorkloadError("weighted_mix_session needs a non-empty mix")
    steps = [tuple(step) for step in mix]
    weights = [mix[step] for step in mix]  # type: ignore[index]
    if any(weight < 0 for weight in weights) or sum(weights) <= 0:
        raise WorkloadError("mix weights must be non-negative, sum > 0")

    def factory(user_id: int) -> t.Iterator[Step]:
        stream = f"mix.{user_id}"

        def walk() -> t.Iterator[Step]:
            while True:
                index = deployment.streams.choice_index(stream, weights)
                yield steps[index]  # type: ignore[misc]
        return walk()
    return factory
