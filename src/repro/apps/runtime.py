"""Interpret an :class:`ApplicationSpec` onto the services substrate.

``build_service_specs`` compiles each declarative endpoint into a handler
generator; ``deploy_application`` instantiates the replicas on a
deployment and returns an :class:`Application` handle (replica lookup,
session factories, completion counters).

The compiler is careful to reproduce the *exact* runtime behavior of the
hand-written TeaStore handlers it replaced: the same random-stream names
(``demand.<service>.<endpoint>``, ``svc.<service>.cache``,
``svc.<service>.batch.<local_id>``, ``session.<user_id>``), the same
floating-point arithmetic order (demand constants are pre-multiplied by
``demand_scale`` at compile time, batch demand is accumulated then
scaled), and the same event sequence per step.  The committed golden
digests hold this equivalence byte-for-byte.
"""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.apps.spec import ApplicationSpec, EndpointDef, ServiceDef
from repro.services.spec import ServiceSpec
from repro.sim.resources import Resource
from repro.workload.sessions import MarkovSessionProfile

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment
    from repro.services.instance import ServiceContext, ServiceInstance
    from repro.topology.cpuset import CpuSet

#: service → one (affinity, home_node) pair per replica.  ``home_node``
#: of ``None`` means first-touch (node of the mask's lowest CPU).
Placement = t.Mapping[str, t.Sequence[tuple["CpuSet", int | None]]]


def _compile_endpoint(app: ApplicationSpec, service: ServiceDef,
                      endpoint: EndpointDef):
    """One endpoint's steps → a handler generator function."""
    scale = app.demand_scale
    cv = app.demand_cv
    ops: list[tuple[t.Any, ...]] = []
    for step in endpoint.steps:
        kind = step["op"]
        if kind == "compute":
            ops.append(("compute", step["demand"] * scale))
        elif kind == "call":
            ops.append(("call", step["service"], step["endpoint"],
                        step.get("payload")))
        elif kind == "gather":
            ops.append(("gather", tuple(
                (call["service"], call["endpoint"], call.get("payload"))
                for call in step["calls"])))
        elif kind == "cache":
            ops.append(("cache", step["hit_rate"],
                        step["hit_demand"] * scale,
                        step["miss_demand"] * scale))
        elif kind == "cached_batch":
            ops.append(("batch", step["default_count"],
                        1.0 - step["hit_rate"], step["hit_demand"],
                        step["miss_demand"],
                        f"svc.{service.name}.batch."))
        else:  # serialized_query
            ops.append(("query", step["serial_fraction"],
                        f"demand.{service.name}.{endpoint.name}"))
    plan = tuple(ops)
    returns = endpoint.returns

    def handler(ctx: "ServiceContext"):
        for op in plan:
            kind = op[0]
            if kind == "compute":
                yield ctx.compute(op[1], cv)
            elif kind == "call":
                yield ctx.call(op[1], op[2], payload=op[3])
            elif kind == "gather":
                yield ctx.gather(*[
                    ctx.call(svc, ep, payload=payload)
                    for svc, ep, payload in op[1]])
            elif kind == "cache":
                if ctx.uniform("cache") < op[1]:
                    yield ctx.compute(op[2], cv)
                else:
                    yield ctx.compute(op[3], cv)
            elif kind == "batch":
                count = ctx.payload or op[1]  # type: ignore[assignment]
                streams = ctx.instance.deployment.streams
                misses = streams.binomial(
                    f"{op[5]}{ctx.instance.local_id}", count, op[2])
                hits = count - misses
                demand = hits * op[3] + misses * op[4]
                yield ctx.compute(demand * scale, cv)
            else:  # query
                cost = ctx.payload * scale  # type: ignore[operator]
                demand = ctx.instance.deployment.streams.lognormal_mean_cv(
                    op[2], cost, cv)
                parallel_part = demand * (1.0 - op[1])
                serial_part = demand * op[1]
                yield ctx.submit_demand(parallel_part)
                lock = ctx.shared["lock"]  # type: ignore[index]
                yield lock.acquire()
                try:
                    yield ctx.submit_demand(serial_part)
                finally:
                    lock.release()
        return returns
    return handler


def _shared_lock_factory(instance: "ServiceInstance"):
    return {"lock": Resource(instance.deployment.sim, 1)}


def build_service_specs(app: ApplicationSpec) -> dict[str, ServiceSpec]:
    """All of ``app``'s service specs with compiled handlers."""
    specs: dict[str, ServiceSpec] = {}
    for service in app.services:
        spec = ServiceSpec(
            service.name, service.profile, workers=service.workers,
            shared_factory=_shared_lock_factory if service.shared_lock
            else None)
        for endpoint in service.endpoints:
            spec.add_endpoint(endpoint.name,
                              _compile_endpoint(app, service, endpoint))
            if endpoint.fallback is not None:
                spec.add_fallback(endpoint.name, endpoint.fallback)
        specs[service.name] = spec
    return specs


class Application:
    """A deployed application: replica handles and session factories."""

    def __init__(self, deployment: "Deployment", spec: ApplicationSpec,
                 instances: dict[str, list["ServiceInstance"]]):
        self.deployment = deployment
        self.spec = spec
        self.instances = instances

    def replicas(self, service: str) -> list["ServiceInstance"]:
        """All replicas of one service."""
        try:
            return self.instances[service]
        except KeyError:
            raise ConfigurationError(
                f"unknown service {service!r}; known: "
                f"{sorted(self.instances)}") from None

    def replica_counts(self) -> dict[str, int]:
        """Replica count per service."""
        return {name: len(instances)
                for name, instances in self.instances.items()}

    def session_profile(self, name: str | None = None
                        ) -> MarkovSessionProfile:
        """One of the application's Markov profiles (default profile
        when ``name`` is ``None``)."""
        session = self.spec.session(name or self.spec.default_session)
        return MarkovSessionProfile(session.transitions,
                                    start=session.start,
                                    service=session.service)

    def session_factory(self, name: str | None = None):
        """A workload session factory bound to this deployment."""
        return self.session_profile(name).session_factory(self.deployment)

    def total_completed(self) -> int:
        """Requests completed across all replicas (including internal)."""
        return sum(instance.completed
                   for instances in self.instances.values()
                   for instance in instances)

    def __repr__(self) -> str:
        counts = ", ".join(f"{name}×{len(instances)}"
                           for name, instances in sorted(self.instances.items()))
        return f"<Application[{self.spec.name}] {counts}>"


def deploy_application(deployment: "Deployment", app: ApplicationSpec,
                       placement: Placement | None = None) -> Application:
    """Instantiate every service of ``app`` on ``deployment``.

    Without ``placement``, each service gets its spec replica count,
    unpinned (machine-wide affinity).  With ``placement``, replica count
    and affinity per service come from the placement mapping.
    """
    specs = build_service_specs(app)
    instances: dict[str, list["ServiceInstance"]] = {}
    for service in app.services:
        spec = specs[service.name]
        replicas: list["ServiceInstance"] = []
        if placement is not None:
            if service.name not in placement:
                raise ConfigurationError(
                    f"placement is missing service {service.name!r}")
            for affinity, home_node in placement[service.name]:
                replicas.append(deployment.add_instance(
                    spec, affinity=affinity, home_node=home_node))
        else:
            for __ in range(service.replicas):
                replicas.append(deployment.add_instance(spec))
        instances[service.name] = replicas
    return Application(deployment, app, instances)
