"""TeaStore expressed as an :class:`ApplicationSpec`.

The first bundled application: the same six services, endpoints, demand
constants, and session profiles that :mod:`repro.teastore` has always
modelled, now authored as data.  ``teastore_app(config)`` is
parameterized by :class:`~repro.teastore.config.TeaStoreConfig`, so the
calibration knobs (demand scale, cache hit rates, DB serialized
fractions, replica/worker sizing) flow into the spec; the committed
golden digests pin that the compiled spec behaves byte-identically to
the hand-written handlers it replaced.
"""

from __future__ import annotations

import typing as t

from repro.apps.spec import ApplicationSpec, EndpointDef, ServiceDef, SessionDef
from repro.teastore import catalog
from repro.teastore.config import TeaStoreConfig
from repro.teastore.profiles import BROWSE_TRANSITIONS, BUY_TRANSITIONS

#: Preview images fetched per category page.
CATEGORY_PREVIEW_IMAGES = 8

#: Default placement hints: each service's approximate share of total
#: CPU demand under the browse mix (matches E6's demand weights).
DEMAND_WEIGHTS = {
    "webui": 0.37, "auth": 0.08, "persistence": 0.14, "image": 0.15,
    "recommender": 0.07, "db": 0.19,
}

#: WebUI page bodies between the parse and render compute steps.
_PAGE_BODIES: dict[str, list[dict[str, t.Any]]] = {
    "home": [
        {"op": "call", "service": "auth", "endpoint": "validate"},
        {"op": "gather", "calls": [
            {"service": "persistence", "endpoint": "get_categories"},
            {"service": "image", "endpoint": "get"}]},
    ],
    "login": [
        {"op": "call", "service": "auth", "endpoint": "login"},
        {"op": "call", "service": "persistence", "endpoint": "get_user"},
    ],
    "category": [
        {"op": "call", "service": "auth", "endpoint": "validate"},
        {"op": "gather", "calls": [
            {"service": "persistence", "endpoint": "get_products"},
            {"service": "image", "endpoint": "get_batch",
             "payload": CATEGORY_PREVIEW_IMAGES}]},
    ],
    "product": [
        {"op": "call", "service": "auth", "endpoint": "validate"},
        {"op": "gather", "calls": [
            {"service": "persistence", "endpoint": "get_product"},
            {"service": "image", "endpoint": "get"},
            {"service": "recommender", "endpoint": "recommend"}]},
    ],
    "add_to_cart": [
        {"op": "call", "service": "auth", "endpoint": "validate"},
        {"op": "call", "service": "persistence", "endpoint": "cart_update"},
    ],
    "logout": [
        {"op": "call", "service": "auth", "endpoint": "logout"},
    ],
    "cart_view": [
        {"op": "call", "service": "auth", "endpoint": "validate"},
        {"op": "gather", "calls": [
            {"service": "persistence", "endpoint": "get_cart"},
            {"service": "image", "endpoint": "get_batch", "payload": 3}]},
    ],
    "checkout": [
        {"op": "call", "service": "auth", "endpoint": "validate"},
        {"op": "call", "service": "persistence", "endpoint": "place_order"},
    ],
}

#: The fast-preset sizing experiments use on medium/small/tiny machines
#: (mirrors ``ExperimentSettings.store_config``).
FAST_REPLICAS = {"webui": 2, "auth": 1, "persistence": 2, "image": 1,
                 "recommender": 1, "db": 1}
FAST_WORKERS = {"webui": 96, "auth": 16, "persistence": 32, "image": 32,
                "recommender": 16, "db": 32}


def teastore_app(config: TeaStoreConfig | None = None) -> ApplicationSpec:
    """The TeaStore application spec, calibrated by ``config``."""
    config = config or TeaStoreConfig()
    profiles = catalog.service_profiles()

    def service(name: str, endpoints: list[EndpointDef],
                shared_lock: bool = False) -> ServiceDef:
        return ServiceDef(
            name=name,
            profile=profiles[name],
            replicas=config.replica_count(name),
            workers=config.worker_count(name),
            fast_replicas=FAST_REPLICAS[name],
            fast_workers=FAST_WORKERS[name],
            demand_weight=DEMAND_WEIGHTS[name],
            shared_lock=shared_lock,
            endpoints=tuple(endpoints),
        )

    webui = service("webui", [
        EndpointDef(
            name=page,
            steps=tuple(
                [{"op": "compute", "demand": catalog.WEBUI_PARSE[page]}]
                + _PAGE_BODIES[page]
                + [{"op": "compute", "demand": catalog.WEBUI_RENDER[page]}]),
            returns=f"<{page}>")
        for page in ("home", "login", "category", "product", "add_to_cart",
                     "logout", "cart_view", "checkout")
    ])

    auth = service("auth", [
        EndpointDef(name="validate",
                    steps=({"op": "compute",
                            "demand": catalog.AUTH_VALIDATE},),
                    returns="ok"),
        EndpointDef(name="login",
                    steps=({"op": "compute",
                            "demand": catalog.AUTH_LOGIN},),
                    returns="ok"),
        EndpointDef(name="logout",
                    steps=({"op": "compute",
                            "demand": catalog.AUTH_LOGOUT},),
                    returns="ok"),
    ])

    persistence = service("persistence", [
        EndpointDef(
            name=operation,
            steps=(
                {"op": "compute", "demand": catalog.PERSISTENCE[operation]},
                {"op": "call", "service": "db",
                 "endpoint": "read" if operation in reads else "write",
                 "payload": catalog.DB_COST[operation]},
            ),
            returns={"entity": operation})
        for reads in (("get_categories", "get_products", "get_product",
                       "get_user", "get_cart"),)
        for operation in ("get_categories", "get_products", "get_product",
                          "get_user", "get_cart", "cart_update",
                          "place_order")
    ])

    image = service("image", [
        EndpointDef(
            name="get",
            steps=({"op": "cache",
                    "hit_rate": config.image_cache_hit_rate,
                    "hit_demand": catalog.IMAGE_HIT,
                    "miss_demand": catalog.IMAGE_MISS},),
            returns="png"),
        EndpointDef(
            name="get_batch",
            steps=({"op": "cached_batch",
                    "default_count": CATEGORY_PREVIEW_IMAGES,
                    "hit_rate": config.image_preview_hit_rate,
                    "hit_demand": catalog.IMAGE_PREVIEW_HIT,
                    "miss_demand": catalog.IMAGE_PREVIEW_MISS},),
            returns="pngs"),
    ])

    recommender = service("recommender", [
        EndpointDef(
            name="recommend",
            steps=({"op": "compute", "demand": catalog.RECOMMEND},),
            returns=["item"] * 3,
            # Real TeaStore degrades recommendations to a static default
            # when the Recommender is unreachable; product pages render
            # without it.
            fallback=["default"] * 3),
    ])

    db = service("db", [
        EndpointDef(
            name="read",
            steps=({"op": "serialized_query",
                    "serial_fraction": config.db_read_serial_fraction},),
            returns="rows"),
        EndpointDef(
            name="write",
            steps=({"op": "serialized_query",
                    "serial_fraction": config.db_write_serial_fraction},),
            returns="rows"),
    ], shared_lock=True)

    return ApplicationSpec(
        name="teastore",
        description="TeaStore (von Kistowski et al., ICPE 2018): the "
                    "paper's six-service web store under a browse-heavy "
                    "closed-loop load.",
        services=(webui, auth, persistence, image, recommender, db),
        sessions=(
            SessionDef(name="browse", service="webui", start="home",
                       transitions={
                           state: tuple(nexts)
                           for state, nexts in BROWSE_TRANSITIONS.items()}),
            SessionDef(name="buy", service="webui", start="home",
                       transitions={
                           state: tuple(nexts)
                           for state, nexts in BUY_TRANSITIONS.items()}),
        ),
        default_session="browse",
        chaos_targets={
            # The service on every request's critical path (entry point).
            "orchestrator": "webui",
            # The service with the highest inbound page weight.
            "hottest": "auth",
            # The storage backend at the bottom of the dependency chain.
            "storage": "db",
        },
        shared_services=("persistence", "db"),
        demand_scale=config.demand_scale,
        demand_cv=config.demand_cv,
    )
