"""A DeathStarBench-style social network as an :class:`ApplicationSpec`.

Modelled on DeathStarBench's socialNetwork (Gan et al., ASPLOS 2019): an
nginx frontend over read-home-timeline / read-user-timeline / compose
paths, where composing a post fans out to unique-id, text (which chains
into URL shortening), and media services before persisting to post
storage and pushing into follower timelines via the social graph.  Post
storage is the bottom-of-chain storage backend (MongoDB analog) with a
write-heavy serialized fraction; timeline reads fan out across the
social graph and storage, giving the deepest read path of the three
bundled applications.

Demand constants are calibrated stand-ins at TeaStore's millisecond
scale; the "post" session profile is the buy-analog (write-heavy),
"browse" is timeline-read-heavy.
"""

from __future__ import annotations

import typing as t

from repro._units import mib, ms
from repro.apps.spec import ApplicationSpec, EndpointDef, ServiceDef, SessionDef
from repro.memory.profile import WorkloadProfile


def _profile(name: str, code: float, data: float, mem: float,
             frontend: float, ipc: float, l1i: float, l1d: float,
             l2: float, l3: float, branch: float) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, code_bytes=mib(code), data_bytes=mib(data),
        mem_intensity=mem, frontend_intensity=frontend, base_ipc=ipc,
        l1i_mpki=l1i, l1d_mpki=l1d, l2_mpki=l2, l3_mpki=l3,
        branch_mpki=branch)


#: (replicas, workers, fast_replicas, fast_workers, demand_weight).
_SIZING: dict[str, tuple[int, int, int, int, float]] = {
    "frontend": (4, 200, 2, 96, 0.26),
    "user": (2, 32, 1, 16, 0.08),
    "compose": (2, 64, 1, 32, 0.12),
    "home_timeline": (2, 64, 1, 32, 0.14),
    "user_timeline": (1, 32, 1, 16, 0.06),
    "text": (1, 32, 1, 16, 0.05),
    "url_shorten": (1, 32, 1, 16, 0.02),
    "media": (1, 32, 1, 16, 0.05),
    "social_graph": (1, 64, 1, 32, 0.08),
    "unique_id": (1, 16, 1, 8, 0.01),
    "post_storage": (1, 64, 1, 32, 0.13),
}


def _service(name: str, profile: WorkloadProfile,
             endpoints: list[EndpointDef],
             shared_lock: bool = False) -> ServiceDef:
    replicas, workers, fast_replicas, fast_workers, weight = _SIZING[name]
    return ServiceDef(
        name=name, profile=profile, replicas=replicas, workers=workers,
        fast_replicas=fast_replicas, fast_workers=fast_workers,
        demand_weight=weight, shared_lock=shared_lock,
        endpoints=tuple(endpoints))


def _page(name: str, parse: float, render: float,
          body: list[dict[str, t.Any]]) -> EndpointDef:
    steps = ([{"op": "compute", "demand": ms(parse)},
              {"op": "call", "service": "user", "endpoint": "validate"}]
             + body
             + [{"op": "compute", "demand": ms(render)}])
    return EndpointDef(name=name, steps=tuple(steps), returns=f"<{name}>")


def socialnet_app() -> ApplicationSpec:
    """A DeathStarBench-style social network (11 services)."""
    frontend = _service("frontend", _profile(
        "frontend", 2.4, 3.5, 0.40, 0.70, 0.80, 32.0, 24.0, 9.0, 1.1,
        8.5), [
        _page("home", 1.2, 2.8, [
            {"op": "call", "service": "home_timeline",
             "endpoint": "read"},
        ]),
        _page("profile", 1.2, 2.6, [
            {"op": "gather", "calls": [
                {"service": "user_timeline", "endpoint": "read"},
                {"service": "social_graph",
                 "endpoint": "get_followers"}]},
        ]),
        _page("compose", 1.4, 2.0, [
            {"op": "call", "service": "compose",
             "endpoint": "compose_post"},
        ]),
        _page("follow", 1.0, 1.4, [
            {"op": "call", "service": "social_graph",
             "endpoint": "follow"},
        ]),
    ])

    user = _service("user", _profile(
        "user", 1.4, 2.0, 0.25, 0.55, 1.00, 20.0, 14.0, 5.0, 0.6, 6.0), [
        EndpointDef(name="validate",
                    steps=({"op": "compute", "demand": ms(0.9)},),
                    returns="ok"),
    ])

    compose = _service("compose", _profile(
        "compose", 2.8, 4.5, 0.45, 0.60, 0.85, 28.0, 22.0, 9.0, 1.3,
        7.5), [
        EndpointDef(
            name="compose_post",
            steps=({"op": "compute", "demand": ms(1.6)},
                   {"op": "gather", "calls": [
                       {"service": "unique_id", "endpoint": "generate"},
                       {"service": "text", "endpoint": "process"},
                       {"service": "media", "endpoint": "upload"}]},
                   {"op": "call", "service": "post_storage",
                    "endpoint": "store_post", "payload": ms(3.2)},
                   {"op": "call", "service": "home_timeline",
                    "endpoint": "write"}),
            returns={"post": "stored"}),
    ])

    home_timeline = _service("home_timeline", _profile(
        "home_timeline", 2.0, 9.0, 0.55, 0.50, 0.80, 20.0, 28.0, 11.0,
        2.0, 6.0), [
        EndpointDef(
            name="read",
            steps=({"op": "compute", "demand": ms(1.2)},
                   {"op": "gather", "calls": [
                       {"service": "social_graph",
                        "endpoint": "get_followers"},
                       {"service": "post_storage",
                        "endpoint": "read_posts",
                        "payload": ms(2.4)}]}),
            returns=["post"] * 10),
        EndpointDef(
            name="write",
            steps=({"op": "compute", "demand": ms(1.0)},
                   {"op": "call", "service": "social_graph",
                    "endpoint": "get_followers"}),
            returns="ok"),
    ])

    user_timeline = _service("user_timeline", _profile(
        "user_timeline", 1.8, 7.0, 0.50, 0.50, 0.85, 18.0, 25.0, 10.0,
        1.8, 5.5), [
        EndpointDef(
            name="read",
            steps=({"op": "compute", "demand": ms(1.0)},
                   {"op": "call", "service": "post_storage",
                    "endpoint": "read_posts", "payload": ms(1.8)}),
            returns=["post"] * 10),
    ])

    text = _service("text", _profile(
        "text", 1.6, 3.0, 0.35, 0.55, 0.90, 18.0, 18.0, 7.0, 0.9, 6.5), [
        EndpointDef(
            name="process",
            steps=({"op": "compute", "demand": ms(1.8)},
                   {"op": "call", "service": "url_shorten",
                    "endpoint": "shorten"}),
            returns={"text": "processed"}),
    ])

    url_shorten = _service("url_shorten", _profile(
        "url_shorten", 1.0, 1.5, 0.25, 0.50, 1.05, 14.0, 12.0, 4.0, 0.5,
        4.5), [
        EndpointDef(name="shorten",
                    steps=({"op": "compute", "demand": ms(0.6)},),
                    returns="short-url"),
    ])

    media = _service("media", _profile(
        "media", 1.6, 18.0, 0.65, 0.40, 0.75, 14.0, 32.0, 13.0, 2.8,
        4.0), [
        EndpointDef(
            name="upload",
            # Most posts carry no media (cheap hit); the rest transcode.
            steps=({"op": "cache", "hit_rate": 0.8,
                    "hit_demand": ms(0.4),
                    "miss_demand": ms(5.6)},),
            returns="media-id"),
    ])

    social_graph = _service("social_graph", _profile(
        "social_graph", 2.0, 14.0, 0.60, 0.45, 0.80, 16.0, 30.0, 12.0,
        2.4, 5.0), [
        EndpointDef(name="get_followers",
                    steps=({"op": "compute", "demand": ms(1.4)},),
                    returns=["user"] * 8),
        EndpointDef(name="follow",
                    steps=({"op": "compute", "demand": ms(2.0)},),
                    returns="ok"),
    ])

    unique_id = _service("unique_id", _profile(
        "unique_id", 0.6, 0.5, 0.15, 0.45, 1.20, 8.0, 8.0, 3.0, 0.3,
        3.0), [
        EndpointDef(name="generate",
                    steps=({"op": "compute", "demand": ms(0.2)},),
                    returns="id"),
    ])

    # MongoDB analog: writes pay a heavier serialized fraction than
    # reads (index + journal), capping storage scaling like TeaStore's
    # DB lock.
    post_storage = _service("post_storage", _profile(
        "post_storage", 3.0, 36.0, 0.75, 0.45, 0.70, 18.0, 38.0, 15.0,
        3.8, 6.0), [
        EndpointDef(name="read_posts",
                    steps=({"op": "serialized_query",
                            "serial_fraction": 0.08},),
                    returns=["row"] * 10),
        EndpointDef(name="store_post",
                    steps=({"op": "serialized_query",
                            "serial_fraction": 0.18},),
                    returns="stored"),
    ], shared_lock=True)

    return ApplicationSpec(
        name="socialnet",
        description="A DeathStarBench-style social network: timeline "
                    "reads fan out across the social graph and post "
                    "storage; composing a post chains unique-id, text, "
                    "URL-shortening, and media before persisting.",
        services=(frontend, user, compose, home_timeline, user_timeline,
                  text, url_shorten, media, social_graph, unique_id,
                  post_storage),
        sessions=(
            SessionDef(
                name="browse", service="frontend", start="home",
                transitions={
                    "home": (("home", 0.45), ("profile", 0.25),
                             ("compose", 0.2), ("follow", 0.1)),
                    "profile": (("home", 0.5), ("profile", 0.2),
                                ("compose", 0.15), ("follow", 0.15)),
                    "compose": (("home", 0.7), ("profile", 0.3)),
                    "follow": (("home", 0.6), ("profile", 0.4)),
                }),
            SessionDef(
                name="post", service="frontend", start="home",
                transitions={
                    "home": (("compose", 0.5), ("home", 0.3),
                             ("profile", 0.2)),
                    "profile": (("compose", 0.4), ("home", 0.4),
                                ("profile", 0.2)),
                    "compose": (("compose", 0.3), ("home", 0.5),
                                ("profile", 0.2)),
                }),
        ),
        default_session="browse",
        chaos_targets={
            # nginx fronts every request.
            "orchestrator": "frontend",
            # Session validation sits on every page's critical path.
            "hottest": "user",
            # The post store at the bottom of both read and write chains.
            "storage": "post_storage",
        },
        shared_services=("social_graph", "post_storage"),
    )
