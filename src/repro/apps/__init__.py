"""Declarative application specifications and their runtime.

The paper characterizes exactly one application — TeaStore — but its
methodology (knee detection, per-service scaling, USL fits, chaos blast
contracts) is application-agnostic.  This package lifts the service
graph into data:

* :mod:`~repro.apps.spec` — :class:`ApplicationSpec`: services,
  call-graph edges, per-endpoint demand steps, footprints, session
  profiles, chaos target bindings; JSON load/dump with eager validation.
* :mod:`~repro.apps.runtime` — compiles a spec into service handlers
  and deploys it (:class:`Application`); byte-identical to the
  hand-written TeaStore handlers it replaced.
* :mod:`~repro.apps.registry` — the bundled applications
  (``teastore``, ``boutique``, ``socialnet``) and their committed JSON
  spec files.
* :mod:`~repro.apps.teastore_app`, :mod:`~repro.apps.boutique`,
  :mod:`~repro.apps.socialnet` — the three built-in application
  definitions.
"""

from repro.apps.registry import (
    APP_NAMES,
    get_app,
    load_bundled,
    spec_path,
    verify_bundled,
)
from repro.apps.runtime import (
    Application,
    build_service_specs,
    deploy_application,
)
from repro.apps.spec import (
    ApplicationSpec,
    EndpointDef,
    ServiceDef,
    SessionDef,
    load_file,
    loads,
)

__all__ = [
    "APP_NAMES",
    "Application",
    "ApplicationSpec",
    "EndpointDef",
    "ServiceDef",
    "SessionDef",
    "build_service_specs",
    "deploy_application",
    "get_app",
    "load_bundled",
    "load_file",
    "loads",
    "spec_path",
    "verify_bundled",
]
