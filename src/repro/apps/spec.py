"""Declarative application specifications.

An :class:`ApplicationSpec` describes a whole microservice application as
data: its services (footprint profile, replica/worker sizing, endpoints),
the call-graph edges each endpoint exercises, per-endpoint CPU-demand
distributions, Markov session profiles, chaos target-policy bindings, and
default placement hints.  The spec is JSON-native (:meth:`dumps` /
:func:`loads` round-trip byte-stably) and validates eagerly on
construction: unknown call targets, cyclic service graphs, negative
demands, and dangling session states all fail at load time rather than
mid-simulation.

Endpoint behavior is a small step vocabulary, interpreted by
:mod:`repro.apps.runtime` into the exact handler idioms the hand-written
TeaStore services used (same random streams, same floating-point
arithmetic order, hence byte-identical simulated results):

``compute``
    ``{"op": "compute", "demand": seconds}`` — local CPU demand, drawn
    lognormal around ``demand`` with the application's ``demand_cv``.
``call``
    ``{"op": "call", "service": s, "endpoint": e[, "payload": v]}`` —
    one synchronous downstream RPC.
``gather``
    ``{"op": "gather", "calls": [{"service": ..., "endpoint": ...}, ...]}``
    — concurrent fan-out, joined before the next step.
``cache``
    ``{"op": "cache", "hit_rate": p, "hit_demand": s, "miss_demand": s}``
    — a probabilistic in-memory cache lookup (cheap hit, expensive miss).
``cached_batch``
    ``{"op": "cached_batch", "default_count": n, "hit_rate": p,
    "hit_demand": s, "miss_demand": s}`` — a batch of ``payload or
    default_count`` lookups; misses drawn binomially per replica.
``serialized_query``
    ``{"op": "serialized_query", "serial_fraction": f}`` — a storage
    query costing ``payload`` seconds, a fraction of which serializes
    under the service's shared lock (requires ``shared_lock``).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as t

from repro._errors import ConfigurationError
from repro.memory.profile import WorkloadProfile

#: Schema version stamped into dumped specs.
SPEC_VERSION = 1

#: The step vocabulary (see module docstring).
STEP_OPS = ("compute", "call", "gather", "cache", "cached_batch",
            "serialized_query")

#: Chaos target roles every application must bind to a concrete service
#: (the ``fabric`` role is application-independent and not bound here).
CHAOS_ROLES = ("orchestrator", "hottest", "storage")

#: Profile fields serialized per service (``name`` is implied).
_PROFILE_FIELDS = ("code_bytes", "data_bytes", "mem_intensity",
                   "frontend_intensity", "base_ipc", "l1i_mpki",
                   "l1d_mpki", "l2_mpki", "l3_mpki", "branch_mpki")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _check_demand(where: str, key: str, value: t.Any) -> float:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{where}: {key} must be a number, got {value!r}")
    _require(value >= 0, f"{where}: negative demand {key}={value}")
    return float(value)


def _check_rate(where: str, key: str, value: t.Any) -> float:
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{where}: {key} must be a number, got {value!r}")
    _require(0.0 <= value <= 1.0,
             f"{where}: {key} must be in [0, 1], got {value}")
    return float(value)


def _normalize_call(where: str, call: t.Mapping[str, t.Any]
                    ) -> dict[str, t.Any]:
    _require("service" in call and "endpoint" in call,
             f"{where}: call steps need 'service' and 'endpoint'")
    entry: dict[str, t.Any] = {"service": str(call["service"]),
                               "endpoint": str(call["endpoint"])}
    if call.get("payload") is not None:
        payload = call["payload"]
        if isinstance(payload, float):
            _check_demand(where, "payload", payload)
        entry["payload"] = payload
    return entry


def _normalize_step(where: str, step: t.Mapping[str, t.Any]
                    ) -> dict[str, t.Any]:
    """Validate one step and rebuild it with canonical key order."""
    op = step.get("op")
    _require(op in STEP_OPS,
             f"{where}: unknown step op {op!r}; choose from {STEP_OPS}")
    known: dict[str, tuple[str, ...]] = {
        "compute": ("op", "demand"),
        "call": ("op", "service", "endpoint", "payload"),
        "gather": ("op", "calls"),
        "cache": ("op", "hit_rate", "hit_demand", "miss_demand"),
        "cached_batch": ("op", "default_count", "hit_rate", "hit_demand",
                         "miss_demand"),
        "serialized_query": ("op", "serial_fraction"),
    }
    unknown = set(step) - set(known[op])
    _require(not unknown,
             f"{where}: step op {op!r} does not accept keys "
             f"{tuple(sorted(unknown))}")
    if op == "compute":
        return {"op": op,
                "demand": _check_demand(where, "demand", step.get("demand"))}
    if op == "call":
        return {"op": op, **_normalize_call(where, step)}
    if op == "gather":
        calls = step.get("calls")
        _require(isinstance(calls, (list, tuple)) and len(calls) >= 1,
                 f"{where}: gather needs a non-empty 'calls' list")
        return {"op": op,
                "calls": [_normalize_call(where, call) for call in calls]}
    if op == "cache":
        return {
            "op": op,
            "hit_rate": _check_rate(where, "hit_rate", step.get("hit_rate")),
            "hit_demand": _check_demand(where, "hit_demand",
                                        step.get("hit_demand")),
            "miss_demand": _check_demand(where, "miss_demand",
                                         step.get("miss_demand")),
        }
    if op == "cached_batch":
        count = step.get("default_count")
        _require(isinstance(count, int) and not isinstance(count, bool)
                 and count >= 1,
                 f"{where}: default_count must be a positive int, "
                 f"got {count!r}")
        return {
            "op": op,
            "default_count": count,
            "hit_rate": _check_rate(where, "hit_rate", step.get("hit_rate")),
            "hit_demand": _check_demand(where, "hit_demand",
                                        step.get("hit_demand")),
            "miss_demand": _check_demand(where, "miss_demand",
                                         step.get("miss_demand")),
        }
    return {"op": op,
            "serial_fraction": _check_rate(where, "serial_fraction",
                                           step.get("serial_fraction"))}


@dataclasses.dataclass(frozen=True)
class EndpointDef:
    """One endpoint: its behavior steps and declared return payload."""

    name: str
    #: Canonicalized step dicts (see module docstring).
    steps: tuple[t.Mapping[str, t.Any], ...]
    #: JSON-native value the handler returns on success.
    returns: t.Any = "ok"
    #: Degraded response served when the service is unreachable and the
    #: caller runs resilient dispatch (``None`` = no fallback).
    fallback: t.Any = None

    def __post_init__(self) -> None:
        _require(bool(self.name), "endpoint name must be non-empty")
        where = f"endpoint {self.name!r}"
        object.__setattr__(self, "steps", tuple(
            _normalize_step(where, step) for step in self.steps))

    def to_dict(self) -> dict[str, t.Any]:
        data: dict[str, t.Any] = {
            "name": self.name,
            "steps": [dict(step) for step in self.steps],
            "returns": self.returns,
        }
        if self.fallback is not None:
            data["fallback"] = self.fallback
        return data


@dataclasses.dataclass(frozen=True)
class ServiceDef:
    """One service: footprint, sizing, placement hint, endpoints."""

    name: str
    profile: WorkloadProfile
    #: Paper-scale replica count / worker pool per replica.
    replicas: int
    workers: int
    #: Sizing used under the fast (``medium``/``small``/``tiny``) presets.
    fast_replicas: int
    fast_workers: int
    #: Default placement hint: this service's share of total CPU demand.
    demand_weight: float
    #: Whether replicas carry a shared single-slot lock (required by
    #: ``serialized_query`` steps).
    shared_lock: bool
    endpoints: tuple[EndpointDef, ...]

    def endpoint_names(self) -> tuple[str, ...]:
        return tuple(endpoint.name for endpoint in self.endpoints)

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "name": self.name,
            "profile": {field: getattr(self.profile, field)
                        for field in _PROFILE_FIELDS},
            "replicas": self.replicas,
            "workers": self.workers,
            "fast_replicas": self.fast_replicas,
            "fast_workers": self.fast_workers,
            "demand_weight": self.demand_weight,
            "shared_lock": self.shared_lock,
            "endpoints": [endpoint.to_dict()
                          for endpoint in self.endpoints],
        }


@dataclasses.dataclass(frozen=True)
class SessionDef:
    """One Markov session profile over a service's endpoints."""

    name: str
    service: str
    start: str
    #: state → ordered ``[target, probability]`` pairs.  Order matters:
    #: sessions draw by index on the user's random stream.
    transitions: t.Mapping[str, tuple[tuple[str, float], ...]]

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "name": self.name,
            "service": self.service,
            "start": self.start,
            "transitions": {
                state: [[target, weight] for target, weight in nexts]
                for state, nexts in self.transitions.items()
            },
        }


@dataclasses.dataclass(frozen=True)
class ApplicationSpec:
    """A whole application as data (see module docstring)."""

    name: str
    description: str
    services: tuple[ServiceDef, ...]
    sessions: tuple[SessionDef, ...]
    default_session: str
    #: Chaos role → concrete service (see :data:`CHAOS_ROLES`).
    chaos_targets: t.Mapping[str, str]
    #: Services a sharded run keeps on the shared (unsharded) tier.
    shared_services: tuple[str, ...] = ()
    demand_scale: float = 1.0
    demand_cv: float = 0.25
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        self._validate()

    # -- validation ----------------------------------------------------

    def _validate(self) -> None:
        _require(bool(self.name), "application name must be non-empty")
        _require(len(self.services) >= 1,
                 f"application {self.name!r} has no services")
        _require(self.demand_scale > 0,
                 f"application {self.name!r}: demand_scale must be "
                 f"positive: {self.demand_scale}")
        _require(self.demand_cv >= 0,
                 f"application {self.name!r}: demand_cv must be "
                 f">= 0: {self.demand_cv}")
        names = [service.name for service in self.services]
        _require(len(set(names)) == len(names),
                 f"application {self.name!r} has duplicate service names")
        endpoints = {service.name: set(service.endpoint_names())
                     for service in self.services}
        for service in self.services:
            self._validate_service(service, endpoints)
        self._validate_acyclic()
        self._validate_sessions(endpoints)
        self._validate_chaos_targets(set(names))
        for shared in self.shared_services:
            _require(shared in endpoints,
                     f"application {self.name!r}: shared service "
                     f"{shared!r} is not a service")

    def _validate_service(self, service: ServiceDef,
                          endpoints: t.Mapping[str, set[str]]) -> None:
        where = f"application {self.name!r}, service {service.name!r}"
        _require(service.replicas >= 1 and service.fast_replicas >= 1,
                 f"{where}: replica counts must be >= 1")
        _require(service.workers >= 1 and service.fast_workers >= 1,
                 f"{where}: worker counts must be >= 1")
        _require(service.demand_weight >= 0,
                 f"{where}: demand_weight must be >= 0")
        _require(len(service.endpoints) >= 1,
                 f"{where}: services need at least one endpoint")
        seen: set[str] = set()
        for endpoint in service.endpoints:
            _require(endpoint.name not in seen,
                     f"{where}: duplicate endpoint {endpoint.name!r}")
            seen.add(endpoint.name)
            ep_where = f"{where}, endpoint {endpoint.name!r}"
            for step in endpoint.steps:
                if step["op"] == "serialized_query":
                    _require(service.shared_lock,
                             f"{ep_where}: serialized_query requires "
                             f"shared_lock on the service")
                for call in _step_calls(step):
                    target = call["service"]
                    _require(target in endpoints,
                             f"{ep_where}: unknown call target service "
                             f"{target!r}")
                    _require(call["endpoint"] in endpoints[target],
                             f"{ep_where}: unknown call target endpoint "
                             f"{target}.{call['endpoint']}")

    def _validate_acyclic(self) -> None:
        graph = self.call_graph()
        state: dict[str, int] = {}  # 1 = on stack, 2 = done

        def visit(node: str, path: tuple[str, ...]) -> None:
            if state.get(node) == 2:
                return
            if state.get(node) == 1:
                cycle = path[path.index(node):] + (node,)
                raise ConfigurationError(
                    f"application {self.name!r}: cyclic call graph: "
                    f"{' -> '.join(cycle)}")
            state[node] = 1
            for callee in graph[node]:
                visit(callee, path + (node,))
            state[node] = 2

        for name in graph:
            visit(name, ())

    def _validate_sessions(self,
                           endpoints: t.Mapping[str, set[str]]) -> None:
        _require(len(self.sessions) >= 1,
                 f"application {self.name!r} has no session profiles")
        session_names = [session.name for session in self.sessions]
        _require(len(set(session_names)) == len(session_names),
                 f"application {self.name!r} has duplicate session names")
        _require(self.default_session in session_names,
                 f"application {self.name!r}: default_session "
                 f"{self.default_session!r} is not a session profile")
        for session in self.sessions:
            where = (f"application {self.name!r}, session "
                     f"{session.name!r}")
            _require(session.service in endpoints,
                     f"{where}: unknown service {session.service!r}")
            states = endpoints[session.service]
            _require(session.start in session.transitions,
                     f"{where}: start state {session.start!r} has no "
                     f"transitions")
            for state, nexts in session.transitions.items():
                _require(state in states,
                         f"{where}: state {state!r} is not an endpoint "
                         f"of {session.service!r}")
                _require(len(nexts) >= 1,
                         f"{where}: state {state!r} has no successors")
                total = 0.0
                for target, weight in nexts:
                    _require(weight >= 0,
                             f"{where}: state {state!r}: negative "
                             f"probability for {target!r}")
                    _require(target in session.transitions,
                             f"{where}: state {state!r} references "
                             f"unknown state {target!r}")
                    total += weight
                _require(abs(total - 1.0) <= 1e-9,
                         f"{where}: state {state!r}: probabilities sum "
                         f"to {total}, not 1")

    def _validate_chaos_targets(self, names: set[str]) -> None:
        _require(set(self.chaos_targets) == set(CHAOS_ROLES),
                 f"application {self.name!r}: chaos_targets must bind "
                 f"exactly the roles {CHAOS_ROLES}, got "
                 f"{tuple(sorted(self.chaos_targets))}")
        for role in CHAOS_ROLES:
            target = self.chaos_targets[role]
            _require(target in names,
                     f"application {self.name!r}: chaos role {role!r} "
                     f"binds unknown service {target!r}")

    # -- derived views -------------------------------------------------

    def service_names(self) -> tuple[str, ...]:
        """Service names in declaration (deployment) order."""
        return tuple(service.name for service in self.services)

    def service(self, name: str) -> ServiceDef:
        """Look up one service definition."""
        for service in self.services:
            if service.name == name:
                return service
        raise ConfigurationError(
            f"application {self.name!r} has no service {name!r}; "
            f"known: {self.service_names()}")

    def session(self, name: str) -> SessionDef:
        """Look up one session profile."""
        for session in self.sessions:
            if session.name == name:
                return session
        raise ConfigurationError(
            f"application {self.name!r} has no session {name!r}; known: "
            f"{tuple(s.name for s in self.sessions)}")

    def call_graph(self) -> dict[str, tuple[str, ...]]:
        """caller → callees, in first-appearance order per caller."""
        graph: dict[str, tuple[str, ...]] = {}
        for service in self.services:
            callees: list[str] = []
            for endpoint in service.endpoints:
                for step in endpoint.steps:
                    for call in _step_calls(step):
                        if call["service"] not in callees:
                            callees.append(call["service"])
            graph[service.name] = tuple(callees)
        return graph

    def profiles(self) -> dict[str, WorkloadProfile]:
        """Per-service memory/microarchitecture descriptors."""
        return {service.name: service.profile
                for service in self.services}

    def placement_weights(self) -> dict[str, float]:
        """Default placement hints (share of total CPU demand)."""
        return {service.name: service.demand_weight
                for service in self.services}

    def sized(self, fast: bool) -> "ApplicationSpec":
        """This spec with fast-preset sizing applied (or unchanged)."""
        if not fast:
            return self
        services = tuple(
            dataclasses.replace(service,
                                replicas=service.fast_replicas,
                                workers=service.fast_workers)
            for service in self.services)
        return dataclasses.replace(self, services=services)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form, deterministic key order."""
        return {
            "name": self.name,
            "description": self.description,
            "version": self.version,
            "demand_scale": self.demand_scale,
            "demand_cv": self.demand_cv,
            "services": [service.to_dict() for service in self.services],
            "sessions": [session.to_dict() for session in self.sessions],
            "default_session": self.default_session,
            "chaos_targets": {role: self.chaos_targets[role]
                              for role in CHAOS_ROLES},
            "shared_services": list(self.shared_services),
        }

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "ApplicationSpec":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        name = str(data.get("name", ""))
        services = tuple(
            _service_from_dict(name, entry)
            for entry in data.get("services", ()))
        sessions = tuple(
            SessionDef(
                name=str(entry["name"]),
                service=str(entry["service"]),
                start=str(entry["start"]),
                transitions={
                    state: tuple((str(target), float(weight))
                                 for target, weight in nexts)
                    for state, nexts in entry["transitions"].items()
                })
            for entry in data.get("sessions", ()))
        return cls(
            name=name,
            description=str(data.get("description", "")),
            services=services,
            sessions=sessions,
            default_session=str(data.get("default_session", "")),
            chaos_targets=dict(data.get("chaos_targets", {})),
            shared_services=tuple(data.get("shared_services", ())),
            demand_scale=float(data.get("demand_scale", 1.0)),
            demand_cv=float(data.get("demand_cv", 0.25)),
            version=int(data.get("version", SPEC_VERSION)),
        )

    def dumps(self) -> str:
        """Byte-stable JSON text (``dumps(loads(x)) == x``)."""
        return json.dumps(self.to_dict(), indent=2) + "\n"

    def dump_file(self, path: str | pathlib.Path) -> None:
        """Write the spec as JSON."""
        pathlib.Path(path).write_text(self.dumps(), encoding="utf-8")


def _step_calls(step: t.Mapping[str, t.Any]
                ) -> tuple[t.Mapping[str, t.Any], ...]:
    """The downstream calls one step issues (empty for local steps)."""
    if step["op"] == "call":
        return (step,)
    if step["op"] == "gather":
        return tuple(step["calls"])
    return ()


def _service_from_dict(app_name: str, entry: t.Mapping[str, t.Any]
                       ) -> ServiceDef:
    name = str(entry["name"])
    where = f"application {app_name!r}, service {name!r}"
    profile_data = dict(entry.get("profile", {}))
    unknown = set(profile_data) - set(_PROFILE_FIELDS)
    _require(not unknown,
             f"{where}: unknown profile fields {tuple(sorted(unknown))}")
    profile = WorkloadProfile(name=name, **profile_data)
    endpoints = [
        EndpointDef(name=str(ep_entry["name"]),
                    steps=tuple(ep_entry.get("steps", ())),
                    returns=ep_entry.get("returns", "ok"),
                    fallback=ep_entry.get("fallback"))
        for ep_entry in entry.get("endpoints", ())
    ]
    return ServiceDef(
        name=name,
        profile=profile,
        replicas=int(entry.get("replicas", 1)),
        workers=int(entry.get("workers", 8)),
        fast_replicas=int(entry.get("fast_replicas",
                                    entry.get("replicas", 1))),
        fast_workers=int(entry.get("fast_workers",
                                   entry.get("workers", 8))),
        demand_weight=float(entry.get("demand_weight", 0.0)),
        shared_lock=bool(entry.get("shared_lock", False)),
        endpoints=tuple(endpoints),
    )


def loads(text: str) -> ApplicationSpec:
    """Parse a JSON spec (inverse of :meth:`ApplicationSpec.dumps`)."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"malformed application spec: {exc}") \
            from None
    if not isinstance(data, dict):
        raise ConfigurationError(
            "application spec must be a JSON object")
    return ApplicationSpec.from_dict(data)


def load_file(path: str | pathlib.Path) -> ApplicationSpec:
    """Load and validate a JSON spec file."""
    return loads(pathlib.Path(path).read_text(encoding="utf-8"))
