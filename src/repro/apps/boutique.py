"""Google's Online Boutique as an :class:`ApplicationSpec`.

The 11-service e-commerce demo (microservices-demo): a Go frontend
orchestrating ad, recommendation, product-catalog, cart, checkout,
currency, payment, shipping, and email services over gRPC, with Redis
backing the cart.  The topology follows the chaosprobe scenario
documentation: frontend fans out to most services, checkout composes the
deepest chain, and currency — single-threaded Node.js, called on every
price display — is the hottest service, with Redis the in-cluster
storage bottleneck (its event loop modelled as a serialized fraction).

Demand constants are calibrated stand-ins at the same millisecond scale
as TeaStore's, preserving the relationships that drive scale-up shape:
frontend render dominates, currency is cheap but ubiquitous, Redis
serializes.
"""

from __future__ import annotations

import typing as t

from repro._units import mib, ms
from repro.apps.spec import ApplicationSpec, EndpointDef, ServiceDef, SessionDef
from repro.memory.profile import WorkloadProfile


def _profile(name: str, code: float, data: float, mem: float,
             frontend: float, ipc: float, l1i: float, l1d: float,
             l2: float, l3: float, branch: float) -> WorkloadProfile:
    return WorkloadProfile(
        name=name, code_bytes=mib(code), data_bytes=mib(data),
        mem_intensity=mem, frontend_intensity=frontend, base_ipc=ipc,
        l1i_mpki=l1i, l1d_mpki=l1d, l2_mpki=l2, l3_mpki=l3,
        branch_mpki=branch)


#: (replicas, workers, fast_replicas, fast_workers, demand_weight).
_SIZING: dict[str, tuple[int, int, int, int, float]] = {
    "frontend": (4, 200, 2, 96, 0.30),
    "ad": (1, 32, 1, 16, 0.03),
    "recommendation": (1, 32, 1, 16, 0.06),
    "productcatalog": (2, 64, 1, 32, 0.12),
    "cart": (2, 64, 1, 32, 0.08),
    "checkout": (1, 64, 1, 32, 0.07),
    "currency": (2, 32, 1, 16, 0.12),
    "payment": (1, 32, 1, 16, 0.03),
    "shipping": (1, 32, 1, 16, 0.05),
    "email": (1, 32, 1, 16, 0.02),
    "redis": (1, 64, 1, 32, 0.12),
}


def _service(name: str, profile: WorkloadProfile,
             endpoints: list[EndpointDef],
             shared_lock: bool = False) -> ServiceDef:
    replicas, workers, fast_replicas, fast_workers, weight = _SIZING[name]
    return ServiceDef(
        name=name, profile=profile, replicas=replicas, workers=workers,
        fast_replicas=fast_replicas, fast_workers=fast_workers,
        demand_weight=weight, shared_lock=shared_lock,
        endpoints=tuple(endpoints))


def _page(name: str, parse: float, render: float,
          body: list[dict[str, t.Any]]) -> EndpointDef:
    steps = ([{"op": "compute", "demand": ms(parse)}] + body
             + [{"op": "compute", "demand": ms(render)}])
    return EndpointDef(name=name, steps=tuple(steps), returns=f"<{name}>")


def boutique_app() -> ApplicationSpec:
    """Google's Online Boutique (11 services)."""
    frontend = _service("frontend", _profile(
        "frontend", 2.8, 4.0, 0.40, 0.65, 0.90, 30.0, 22.0, 8.0, 1.0, 8.0), [
        _page("home", 1.4, 3.6, [
            {"op": "gather", "calls": [
                {"service": "productcatalog", "endpoint": "list_products"},
                {"service": "currency", "endpoint": "convert"},
                {"service": "cart", "endpoint": "get_cart"},
                {"service": "ad", "endpoint": "get_ads"}]},
        ]),
        _page("product", 1.2, 3.2, [
            {"op": "gather", "calls": [
                {"service": "productcatalog", "endpoint": "get_product"},
                {"service": "recommendation",
                 "endpoint": "list_recommendations"},
                {"service": "currency", "endpoint": "convert"},
                {"service": "ad", "endpoint": "get_ads"}]},
        ]),
        _page("add_to_cart", 1.0, 1.8, [
            {"op": "call", "service": "productcatalog",
             "endpoint": "get_product"},
            {"op": "call", "service": "cart", "endpoint": "add_item"},
        ]),
        _page("cart_view", 1.2, 2.6, [
            {"op": "gather", "calls": [
                {"service": "cart", "endpoint": "get_cart"},
                {"service": "recommendation",
                 "endpoint": "list_recommendations"},
                {"service": "currency", "endpoint": "convert"},
                {"service": "shipping", "endpoint": "get_quote"}]},
        ]),
        _page("checkout", 1.4, 2.8, [
            {"op": "call", "service": "checkout",
             "endpoint": "place_order"},
        ]),
    ])

    ad = _service("ad", _profile(
        "ad", 3.2, 3.0, 0.35, 0.60, 0.85, 26.0, 18.0, 7.0, 0.8, 7.0), [
        EndpointDef(name="get_ads",
                    steps=({"op": "compute", "demand": ms(0.8)},),
                    returns=["ad"] * 2,
                    # Pages render without ads when the ad service is
                    # unreachable.
                    fallback=[]),
    ])

    recommendation = _service("recommendation", _profile(
        "recommendation", 2.0, 8.0, 0.55, 0.45, 0.85, 18.0, 24.0, 9.0,
        1.8, 5.0), [
        EndpointDef(
            name="list_recommendations",
            steps=({"op": "compute", "demand": ms(2.4)},
                   {"op": "call", "service": "productcatalog",
                    "endpoint": "list_products"}),
            returns=["item"] * 4,
            fallback=[]),
    ])

    productcatalog = _service("productcatalog", _profile(
        "productcatalog", 1.6, 10.0, 0.50, 0.50, 0.95, 16.0, 22.0, 8.0,
        1.6, 5.5), [
        EndpointDef(name="list_products",
                    steps=({"op": "compute", "demand": ms(1.8)},),
                    returns=["product"] * 9),
        EndpointDef(name="get_product",
                    steps=({"op": "compute", "demand": ms(0.9)},),
                    returns={"product": "item"}),
    ])

    cart = _service("cart", _profile(
        "cart", 2.4, 5.0, 0.45, 0.55, 0.90, 24.0, 20.0, 8.0, 1.2, 6.5), [
        EndpointDef(
            name="get_cart",
            steps=({"op": "compute", "demand": ms(0.9)},
                   {"op": "call", "service": "redis", "endpoint": "get",
                    "payload": ms(0.6)}),
            returns={"items": 3}),
        EndpointDef(
            name="add_item",
            steps=({"op": "compute", "demand": ms(1.1)},
                   {"op": "call", "service": "redis", "endpoint": "set",
                    "payload": ms(0.9)}),
            returns="ok"),
    ])

    checkout = _service("checkout", _profile(
        "checkout", 2.6, 4.0, 0.40, 0.60, 0.85, 26.0, 19.0, 8.0, 1.0,
        7.5), [
        EndpointDef(
            name="place_order",
            steps=({"op": "compute", "demand": ms(1.6)},
                   {"op": "call", "service": "cart",
                    "endpoint": "get_cart"},
                   {"op": "gather", "calls": [
                       {"service": "productcatalog",
                        "endpoint": "get_product"},
                       {"service": "currency", "endpoint": "convert"},
                       {"service": "shipping", "endpoint": "get_quote"}]},
                   {"op": "call", "service": "payment",
                    "endpoint": "charge"},
                   {"op": "gather", "calls": [
                       {"service": "shipping", "endpoint": "ship_order"},
                       {"service": "email",
                        "endpoint": "send_confirmation"}]},
                   {"op": "compute", "demand": ms(1.2)}),
            returns={"order": "confirmed"}),
    ])

    currency = _service("currency", _profile(
        "currency", 1.4, 1.2, 0.25, 0.70, 0.75, 32.0, 14.0, 5.0, 0.5,
        9.0), [
        EndpointDef(name="convert",
                    steps=({"op": "compute", "demand": ms(0.7)},),
                    returns={"units": 1}),
    ])

    payment = _service("payment", _profile(
        "payment", 1.2, 1.0, 0.20, 0.60, 0.95, 22.0, 12.0, 4.0, 0.4,
        6.0), [
        EndpointDef(name="charge",
                    steps=({"op": "compute", "demand": ms(1.8)},),
                    returns={"txn": "ok"}),
    ])

    shipping = _service("shipping", _profile(
        "shipping", 1.4, 1.6, 0.25, 0.55, 1.00, 18.0, 13.0, 5.0, 0.5,
        5.5), [
        EndpointDef(name="get_quote",
                    steps=({"op": "compute", "demand": ms(0.8)},),
                    returns={"quote": 1}),
        EndpointDef(name="ship_order",
                    steps=({"op": "compute", "demand": ms(1.4)},),
                    returns={"tracking": "id"}),
    ])

    email = _service("email", _profile(
        "email", 1.8, 2.0, 0.30, 0.50, 0.90, 16.0, 14.0, 5.0, 0.6, 5.0), [
        EndpointDef(name="send_confirmation",
                    steps=({"op": "compute", "demand": ms(1.6)},),
                    returns="sent",
                    fallback="queued"),
    ])

    # Redis: in-memory, single-threaded command loop — a high serialized
    # fraction caps its scaling exactly like the TeaStore DB lock.
    redis = _service("redis", _profile(
        "redis", 0.8, 16.0, 0.65, 0.35, 1.10, 8.0, 30.0, 12.0, 2.5,
        3.0), [
        EndpointDef(name="get",
                    steps=({"op": "serialized_query",
                            "serial_fraction": 0.55},),
                    returns="value"),
        EndpointDef(name="set",
                    steps=({"op": "serialized_query",
                            "serial_fraction": 0.70},),
                    returns="ok"),
    ], shared_lock=True)

    return ApplicationSpec(
        name="boutique",
        description="Google's Online Boutique (microservices-demo): an "
                    "11-service e-commerce application with a gRPC "
                    "fan-out frontend, a deep checkout chain, and a "
                    "Redis-backed cart.",
        services=(frontend, ad, recommendation, productcatalog, cart,
                  checkout, currency, payment, shipping, email, redis),
        sessions=(
            SessionDef(
                name="browse", service="frontend", start="home",
                transitions={
                    "home": (("product", 0.6), ("cart_view", 0.1),
                             ("home", 0.3)),
                    "product": (("product", 0.3), ("add_to_cart", 0.25),
                                ("home", 0.25), ("cart_view", 0.2)),
                    "add_to_cart": (("product", 0.5), ("cart_view", 0.3),
                                    ("home", 0.2)),
                    "cart_view": (("home", 0.4), ("product", 0.4),
                                  ("checkout", 0.2)),
                    "checkout": (("home", 1.0),),
                }),
            SessionDef(
                name="purchase", service="frontend", start="home",
                transitions={
                    "home": (("product", 0.8), ("home", 0.2)),
                    "product": (("add_to_cart", 0.55), ("product", 0.25),
                                ("home", 0.2)),
                    "add_to_cart": (("cart_view", 0.45),
                                    ("product", 0.35), ("home", 0.2)),
                    "cart_view": (("checkout", 0.6), ("product", 0.25),
                                  ("home", 0.15)),
                    "checkout": (("home", 1.0),),
                }),
        ),
        default_session="browse",
        chaos_targets={
            # The Go frontend orchestrates every page.
            "orchestrator": "frontend",
            # Single-threaded Node.js, called on every price display.
            "hottest": "currency",
            # The in-cluster storage backend behind the cart.
            "storage": "redis",
        },
        shared_services=("cart", "redis"),
    )
