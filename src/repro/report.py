"""Markdown report generation across experiments.

``build_report`` turns a list of :class:`ExperimentResult` objects into a
single self-describing markdown document (title, machine description,
table of contents, one section per experiment); the CLI exposes it as
``repro run all --markdown report.md``.  ``ascii_bars`` renders quick
terminal charts for examples.
"""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.topology.model import Machine


def build_report(results: t.Sequence[ExperimentResult],
                 machine: Machine | None = None,
                 title: str = "TeaStore scale-up study — reproduction "
                              "report",
                 sweep_stats: t.Sequence[t.Mapping[str, t.Any]] | None = None
                 ) -> str:
    """One markdown document covering all ``results``.

    ``sweep_stats`` (dicts shaped like
    :meth:`repro.orchestrator.executor.SweepStats.to_dict`) appends a
    sweep-telemetry section when the results came from ``repro sweep``.
    """
    if not results:
        raise ConfigurationError("cannot build a report with no results")
    lines = [f"# {title}", ""]
    if machine is not None:
        lines.append("```")
        lines.append(machine.describe())
        lines.append("```")
        lines.append("")
    lines.append("## Contents")
    lines.append("")
    for result in results:
        anchor = f"{result.experiment.lower()}--{_slug(result.title)}"
        lines.append(f"* [{result.experiment} — {result.title}](#{anchor})")
    lines.append("")
    for result in results:
        lines.append(result.to_markdown())
    for result in results:
        if result.experiment.lower() == "e13" and result.rows:
            lines.append(fault_tolerance_section(result))
            break
    for result in results:
        if result.experiment.lower() == "chaos" and result.rows:
            lines.append(chaos_section(result))
            break
    for result in results:
        if result.experiment.lower() == "e14" and len(result.rows) > 1:
            lines.append(cross_application_section(result))
            break
    if sweep_stats:
        lines.append(sweep_section(sweep_stats))
    return "\n".join(lines)


def fault_tolerance_section(result: ExperimentResult) -> str:
    """A per-scenario digest of the E13 matrix: how much tail latency
    and how many errors each resilience mode bought back."""
    cells = {(t.cast(str, row["scenario"]),
              t.cast(str, row["resilience"])): row for row in result.rows}
    scenarios = []
    for row in result.rows:
        scenario = t.cast(str, row["scenario"])
        if scenario not in scenarios:
            scenarios.append(scenario)
    lines = ["## Fault-tolerance digest", ""]
    lines.append("| scenario | p99 none (ms) | p99 full (ms) "
                 "| tail reduction | errors none | errors full "
                 "| degraded (full) |")
    lines.append("|---|---|---|---|---|---|---|")
    for scenario in scenarios:
        none = cells.get((scenario, "none"))
        full = cells.get((scenario, "full"))
        if none is None or full is None:
            continue
        base = t.cast(float, none["p99_ms"])
        tail = t.cast(float, full["p99_ms"])
        reduction = (f"{100.0 * (base - tail) / base:+.1f}%"
                     if base > 0 else "n/a")
        lines.append(
            f"| {scenario} | {base:.1f} | {tail:.1f} | {reduction} "
            f"| {t.cast(float, none['error_rate_pct']):.2f}% "
            f"| {t.cast(float, full['error_rate_pct']):.2f}% "
            f"| {full['degraded']} |")
    lines.append("")
    lines.append("* tail reduction is p99(none) vs p99(full) under the "
                 "identical fault schedule and seed")
    return "\n".join(lines) + "\n"


def chaos_section(result: ExperimentResult) -> str:
    """A verdict rollup of a chaos campaign: grades per scenario cell,
    worst grade per bottleneck class, and the grader's reasons."""
    order = {"PASS": 0, "DEGRADED": 1, "FAIL": 2}
    worst: dict[str, str] = {}
    tally = {"PASS": 0, "DEGRADED": 0, "FAIL": 0}
    for row in result.rows:
        grade = t.cast(str, row["grade"])
        klass = t.cast(str, row["class"])
        tally[grade] += 1
        if order[grade] > order.get(worst.get(klass, "PASS"), 0) \
                or klass not in worst:
            worst[klass] = grade
    lines = ["## Chaos verdict rollup", ""]
    lines.append("| bottleneck class | worst grade | cells |")
    lines.append("|---|---|---|")
    for klass in worst:
        count = sum(1 for row in result.rows if row["class"] == klass)
        lines.append(f"| {klass} | {worst[klass]} | {count} |")
    lines.append("")
    lines.append(f"* {tally['PASS']} PASS / {tally['DEGRADED']} DEGRADED "
                 f"/ {tally['FAIL']} FAIL over {len(result.rows)} "
                 f"scenario x resilience cells")
    reasons = [note for note in result.notes
               if ": " in note and not note.startswith("verdicts:")]
    for reason in reasons:
        lines.append(f"* {reason}")
    return "\n".join(lines) + "\n"


def cross_application_section(result: ExperimentResult) -> str:
    """A side-by-side digest of the E14 family: how each service graph's
    knee and USL coefficients sit relative to TeaStore's."""
    reference = result.rows[0]
    ref_app = t.cast(str, reference["app"])
    ref_knee = t.cast(int, reference["knee_users"])
    ref_peak = t.cast(float, reference["peak_rps"])
    lines = ["## Cross-application scale-up digest", ""]
    lines.append(f"| app | services | knee (users) | vs {ref_app} "
                 "| peak (rps) | USL sigma | USL kappa |")
    lines.append("|---|---|---|---|---|---|---|")
    for row in result.rows:
        knee = t.cast(int, row["knee_users"])
        relative = (f"{knee / ref_knee:.2f}x" if ref_knee else "n/a")
        lines.append(
            f"| {row['app']} | {row['services']} | {knee} | {relative} "
            f"| {t.cast(float, row['peak_rps']):.0f} "
            f"| {t.cast(float, row['usl_sigma']):.4f} "
            f"| {t.cast(float, row['usl_kappa']):.6f} |")
    lines.append("")
    lines.append(f"* knees are the first population within 95% of each "
                 f"app's own peak; {ref_app} peaks at ~{ref_peak:.0f} rps "
                 f"on this machine")
    for note in result.notes:
        if note.startswith("topology sensitivity"):
            lines.append(f"* {note}")
    return "\n".join(lines) + "\n"


def sweep_section(sweep_stats: t.Sequence[t.Mapping[str, t.Any]]) -> str:
    """A markdown table of per-experiment sweep telemetry."""
    lines = ["## Sweep telemetry", ""]
    lines.append("| experiment | points | cache hits | executed "
                 "| wall (s) | points/s |")
    lines.append("|---|---|---|---|---|---|")
    for stats in sweep_stats:
        lines.append(
            f"| {stats['experiment']} | {stats['points']} "
            f"| {stats['cache_hits']} | {stats['executed']} "
            f"| {stats['wall_seconds']:.2f} "
            f"| {stats['points_per_second']:.2f} |")
    total_points = sum(s["points"] for s in sweep_stats)
    total_wall = sum(s["wall_seconds"] for s in sweep_stats)
    lines.append("")
    lines.append(f"* {total_points} points in {total_wall:.2f} s "
                 f"across {len(sweep_stats)} experiments")
    return "\n".join(lines) + "\n"


def _slug(text: str) -> str:
    keep = []
    for char in text.lower():
        if char.isalnum():
            keep.append(char)
        elif char in " -_":
            keep.append("-")
    return "".join(keep).strip("-")


def ascii_bars(points: t.Sequence[tuple[str, float]],
               width: int = 50, unit: str = "") -> str:
    """A quick horizontal bar chart for terminals.

    ``points`` are (label, value) pairs; bars scale to the maximum value.
    """
    if not points:
        raise ConfigurationError("ascii_bars needs at least one point")
    if any(value < 0 for __, value in points):
        raise ConfigurationError("ascii_bars values must be non-negative")
    peak = max(value for __, value in points)
    label_width = max(len(label) for label, __ in points)
    lines = []
    for label, value in points:
        length = 0 if peak == 0 else max(
            1 if value > 0 else 0, round(value / peak * width))
        lines.append(f"{label.rjust(label_width)} |{'#' * length} "
                     f"{value:g}{unit}")
    return "\n".join(lines)
