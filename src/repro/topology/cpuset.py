"""Immutable sets of logical CPU ids with Linux-style list syntax.

Affinity masks throughout the simulator are :class:`CpuSet` instances.  The
string format matches Linux's cpulist convention used by ``taskset -c`` and
sysfs (e.g. ``"0-7,64-71"``), so experiment configurations read like the
shell commands the paper's authors would have typed.
"""

from __future__ import annotations

import typing as t

from repro._errors import TopologyError


class CpuSet:
    """A frozen set of non-negative logical CPU ids."""

    __slots__ = ("_ids",)

    def __init__(self, ids: t.Iterable[int] = ()):
        frozen = frozenset(int(i) for i in ids)
        for cpu_id in frozen:
            if cpu_id < 0:
                raise TopologyError(f"negative cpu id: {cpu_id}")
        self._ids = frozen

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_string(cls, text: str) -> "CpuSet":
        """Parse Linux cpulist syntax: ``"0-3,8,10-11"``; "" is empty."""
        text = text.strip()
        if not text:
            return cls()
        ids: set[int] = set()
        for part in text.split(","):
            part = part.strip()
            if not part:
                raise TopologyError(f"empty element in cpulist: {text!r}")
            if "-" in part:
                lo_text, __, hi_text = part.partition("-")
                try:
                    lo, hi = int(lo_text), int(hi_text)
                except ValueError as exc:
                    raise TopologyError(f"bad cpulist range: {part!r}") from exc
                if lo > hi:
                    raise TopologyError(f"reversed cpulist range: {part!r}")
                ids.update(range(lo, hi + 1))
            else:
                try:
                    ids.add(int(part))
                except ValueError as exc:
                    raise TopologyError(f"bad cpulist entry: {part!r}") from exc
        return cls(ids)

    @classmethod
    def single(cls, cpu_id: int) -> "CpuSet":
        """A set holding exactly one CPU."""
        return cls((cpu_id,))

    @classmethod
    def range(cls, start: int, stop: int) -> "CpuSet":
        """CPUs ``start`` .. ``stop - 1`` (half-open, like :func:`range`)."""
        return cls(range(start, stop))

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------
    def __contains__(self, cpu_id: int) -> bool:
        return cpu_id in self._ids

    def __iter__(self) -> t.Iterator[int]:
        return iter(sorted(self._ids))

    def __len__(self) -> int:
        return len(self._ids)

    def __bool__(self) -> bool:
        return bool(self._ids)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CpuSet):
            return NotImplemented
        return self._ids == other._ids

    def __hash__(self) -> int:
        return hash(self._ids)

    def __or__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self._ids | other._ids)

    def __and__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self._ids & other._ids)

    def __sub__(self, other: "CpuSet") -> "CpuSet":
        return CpuSet(self._ids - other._ids)

    def issubset(self, other: "CpuSet") -> bool:
        """True if every CPU here is also in ``other``."""
        return self._ids <= other._ids

    def isdisjoint(self, other: "CpuSet") -> bool:
        """True if no CPU is shared with ``other``."""
        return self._ids.isdisjoint(other._ids)

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    @property
    def ids(self) -> tuple[int, ...]:
        """Sorted tuple of member ids."""
        return tuple(sorted(self._ids))

    def first(self) -> int:
        """Smallest member id; raises on an empty set."""
        if not self._ids:
            raise TopologyError("first() on empty CpuSet")
        return min(self._ids)

    def to_string(self) -> str:
        """Render in Linux cpulist syntax with ranges collapsed."""
        if not self._ids:
            return ""
        sorted_ids = sorted(self._ids)
        parts: list[str] = []
        run_start = prev = sorted_ids[0]
        for cpu_id in sorted_ids[1:]:
            if cpu_id == prev + 1:
                prev = cpu_id
                continue
            parts.append(self._render_run(run_start, prev))
            run_start = prev = cpu_id
        parts.append(self._render_run(run_start, prev))
        return ",".join(parts)

    @staticmethod
    def _render_run(start: int, end: int) -> str:
        if start == end:
            return str(start)
        return f"{start}-{end}"

    def __repr__(self) -> str:
        return f"CpuSet({self.to_string()!r})"
