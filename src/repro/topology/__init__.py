"""Server hardware topology model.

Models the structural facts the paper's optimizations exploit: which logical
CPUs share a physical core (SMT), which cores share an L3 slice (CCX), how
CCXs group into dies (CCDs), dies into NUMA nodes, and nodes into sockets.

* :class:`~repro.topology.cpuset.CpuSet` — immutable sets of logical CPU ids
  with Linux-style list syntax ("0-7,64-71").
* :class:`~repro.topology.model.Machine` — the topology tree plus lookup
  helpers and a SLIT-like NUMA distance matrix.
* :mod:`~repro.topology.presets` — ready-made machines, including the
  EPYC-"Rome"-class server studied by the paper (128 logical CPUs per
  socket).
"""

from repro.topology.cache import CacheSpec
from repro.topology.cpuset import CpuSet
from repro.topology.model import (
    Ccd,
    Ccx,
    Core,
    LogicalCpu,
    Machine,
    MachineSpec,
    NumaNode,
    Socket,
)
from repro.topology.presets import (
    PRESETS,
    dual_socket_rome,
    machine_from_preset,
    medium_machine,
    single_socket_rome,
    small_numa_machine,
    tiny_machine,
)
from repro.topology.serialize import (
    dump_machine,
    load_machine,
    machine_from_dict,
    machine_to_dict,
)

__all__ = [
    "CacheSpec",
    "Ccd",
    "Ccx",
    "Core",
    "CpuSet",
    "LogicalCpu",
    "Machine",
    "MachineSpec",
    "NumaNode",
    "PRESETS",
    "Socket",
    "dual_socket_rome",
    "dump_machine",
    "load_machine",
    "machine_from_dict",
    "machine_from_preset",
    "machine_to_dict",
    "medium_machine",
    "single_socket_rome",
    "small_numa_machine",
    "tiny_machine",
]
