"""Machine (de)serialization: bring-your-own topologies as JSON/dicts.

Users reproducing the study on a different part (Milan's 8-core CCXs, a
Xeon with one big LLC domain per socket) describe it once as a dict/JSON
file and load it with :func:`machine_from_dict` / :func:`load_machine`.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as t

from repro._errors import TopologyError
from repro.topology.model import Machine, MachineSpec

#: MachineSpec field names, in declaration order.
_FIELDS = tuple(field.name for field in dataclasses.fields(MachineSpec))


def spec_to_dict(spec: MachineSpec) -> dict[str, t.Any]:
    """The spec as a plain JSON-serializable dict."""
    return dataclasses.asdict(spec)


def machine_to_dict(machine: Machine) -> dict[str, t.Any]:
    """The machine's defining spec as a dict (topology is derived)."""
    return spec_to_dict(machine.spec)


def machine_from_dict(data: t.Mapping[str, t.Any]) -> Machine:
    """Build a machine from a spec dict; unknown keys are rejected."""
    unknown = sorted(set(data) - set(_FIELDS))
    if unknown:
        raise TopologyError(
            f"unknown machine spec keys: {unknown}; "
            f"valid keys: {sorted(_FIELDS)}")
    if "name" not in data:
        raise TopologyError("machine spec requires a 'name'")
    return Machine(MachineSpec(**data))


def dump_machine(machine: Machine, path: str | pathlib.Path) -> None:
    """Write the machine's spec as JSON."""
    pathlib.Path(path).write_text(
        json.dumps(machine_to_dict(machine), indent=2) + "\n")


def load_machine(path: str | pathlib.Path) -> Machine:
    """Read a machine spec from a JSON file."""
    try:
        data = json.loads(pathlib.Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise TopologyError(f"invalid machine JSON in {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise TopologyError(f"machine JSON must be an object: {path}")
    return machine_from_dict(data)
