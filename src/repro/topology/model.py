"""The machine topology tree and its lookup helpers.

The hierarchy mirrors an AMD-EPYC-class part, which is also general enough
for simpler machines (set the group sizes to 1):

    Machine → Socket → NumaNode → CCD → CCX → Core → LogicalCpu

Logical CPU numbering follows Linux's convention on such machines: ids
``0 .. n_cores-1`` are the *first* hardware thread of every physical core
(socket-major), and ids ``n_cores .. 2*n_cores-1`` are the SMT siblings in
the same order.  Experiments that enable "the first N logical CPUs"
therefore populate distinct physical cores before doubling up on SMT — the
same behaviour the paper's `numactl`/`taskset` runs relied on.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import TopologyError
from repro._units import MIB
from repro.topology.cache import CacheSpec
from repro.topology.cpuset import CpuSet

#: SLIT-style NUMA distances (dimensionless, 10 = local).
DISTANCE_LOCAL = 10
DISTANCE_SAME_SOCKET = 12
DISTANCE_CROSS_SOCKET = 32


@dataclasses.dataclass(frozen=True)
class MachineSpec:
    """Static parameters from which a :class:`Machine` is built."""

    name: str
    sockets: int = 1
    ccds_per_socket: int = 8
    ccxs_per_ccd: int = 2
    cores_per_ccx: int = 4
    threads_per_core: int = 2
    numa_nodes_per_socket: int = 1
    l1i_kib: float = 32.0
    l1d_kib: float = 32.0
    l2_kib: float = 512.0
    l3_mib_per_ccx: float = 16.0
    base_freq_ghz: float = 2.25
    max_boost_ghz: float = 3.4

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise TopologyError("sockets must be >= 1")
        if self.ccds_per_socket < 1 or self.ccxs_per_ccd < 1:
            raise TopologyError("CCD/CCX counts must be >= 1")
        if self.cores_per_ccx < 1:
            raise TopologyError("cores_per_ccx must be >= 1")
        if self.threads_per_core not in (1, 2):
            raise TopologyError(
                f"threads_per_core must be 1 or 2: {self.threads_per_core}")
        if self.numa_nodes_per_socket < 1:
            raise TopologyError("numa_nodes_per_socket must be >= 1")
        if self.ccds_per_socket % self.numa_nodes_per_socket != 0:
            raise TopologyError(
                "ccds_per_socket must divide evenly among NUMA nodes "
                f"({self.ccds_per_socket} CCDs, "
                f"{self.numa_nodes_per_socket} nodes)")
        if self.base_freq_ghz <= 0 or self.max_boost_ghz < self.base_freq_ghz:
            raise TopologyError("need 0 < base_freq_ghz <= max_boost_ghz")

    @property
    def cores_per_socket(self) -> int:
        return self.ccds_per_socket * self.ccxs_per_ccd * self.cores_per_ccx

    @property
    def n_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def n_logical_cpus(self) -> int:
        return self.n_cores * self.threads_per_core

    @property
    def logical_cpus_per_socket(self) -> int:
        return self.cores_per_socket * self.threads_per_core


@dataclasses.dataclass(frozen=True)
class Socket:
    """One CPU package."""
    index: int


@dataclasses.dataclass(frozen=True)
class NumaNode:
    """One NUMA memory domain (globally indexed)."""
    index: int
    socket: Socket


@dataclasses.dataclass(frozen=True)
class Ccd:
    """One core chiplet die (globally indexed)."""
    index: int
    node: NumaNode

    @property
    def socket(self) -> Socket:
        return self.node.socket


@dataclasses.dataclass(frozen=True)
class Ccx:
    """One core complex sharing an L3 slice (globally indexed)."""
    index: int
    ccd: Ccd

    @property
    def node(self) -> NumaNode:
        return self.ccd.node

    @property
    def socket(self) -> Socket:
        return self.ccd.socket


@dataclasses.dataclass(frozen=True)
class Core:
    """One physical core (globally indexed)."""
    index: int
    ccx: Ccx

    @property
    def ccd(self) -> Ccd:
        return self.ccx.ccd

    @property
    def node(self) -> NumaNode:
        return self.ccx.node

    @property
    def socket(self) -> Socket:
        return self.ccx.socket


@dataclasses.dataclass(frozen=True)
class LogicalCpu:
    """One hardware thread."""
    index: int
    core: Core
    thread: int  # 0 = first thread, 1 = SMT sibling

    @property
    def ccx(self) -> Ccx:
        return self.core.ccx

    @property
    def node(self) -> NumaNode:
        return self.core.node

    @property
    def socket(self) -> Socket:
        return self.core.socket


class Machine:
    """A fully enumerated machine topology with O(1) lookups."""

    def __init__(self, spec: MachineSpec):
        self.spec = spec
        self.sockets: list[Socket] = [Socket(s) for s in range(spec.sockets)]
        self.nodes: list[NumaNode] = []
        self.ccds: list[Ccd] = []
        self.ccxs: list[Ccx] = []
        self.cores: list[Core] = []
        self._build_tree()
        self.cpus: list[LogicalCpu] = self._enumerate_cpus()
        self._cpus_by_ccx = self._group_cpus(lambda c: c.ccx.index,
                                             len(self.ccxs))
        self._cpus_by_node = self._group_cpus(lambda c: c.node.index,
                                              len(self.nodes))
        self._cpus_by_core = self._group_cpus(lambda c: c.core.index,
                                              len(self.cores))
        self._cpus_by_socket = self._group_cpus(lambda c: c.socket.index,
                                                len(self.sockets))

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build_tree(self) -> None:
        spec = self.spec
        ccds_per_node = spec.ccds_per_socket // spec.numa_nodes_per_socket
        for socket in self.sockets:
            for __ in range(spec.numa_nodes_per_socket):
                node = NumaNode(len(self.nodes), socket)
                self.nodes.append(node)
                for __ in range(ccds_per_node):
                    ccd = Ccd(len(self.ccds), node)
                    self.ccds.append(ccd)
                    for __ in range(spec.ccxs_per_ccd):
                        ccx = Ccx(len(self.ccxs), ccd)
                        self.ccxs.append(ccx)
                        for __ in range(spec.cores_per_ccx):
                            self.cores.append(Core(len(self.cores), ccx))

    def _enumerate_cpus(self) -> list[LogicalCpu]:
        cpus = [LogicalCpu(core.index, core, 0) for core in self.cores]
        if self.spec.threads_per_core == 2:
            offset = len(self.cores)
            cpus.extend(
                LogicalCpu(offset + core.index, core, 1)
                for core in self.cores)
        return cpus

    def _group_cpus(self, key: t.Callable[[LogicalCpu], int],
                    n_groups: int) -> list[CpuSet]:
        buckets: list[list[int]] = [[] for __ in range(n_groups)]
        for cpu in self.cpus:
            buckets[key(cpu)].append(cpu.index)
        return [CpuSet(bucket) for bucket in buckets]

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def n_logical_cpus(self) -> int:
        """Total number of hardware threads."""
        return len(self.cpus)

    def cpu(self, index: int) -> LogicalCpu:
        """The logical CPU with the given id."""
        if not 0 <= index < len(self.cpus):
            raise TopologyError(
                f"cpu id {index} out of range 0..{len(self.cpus) - 1}")
        return self.cpus[index]

    def sibling(self, index: int) -> LogicalCpu | None:
        """The SMT sibling of a logical CPU, or ``None`` without SMT."""
        if self.spec.threads_per_core == 1:
            self.cpu(index)  # validate
            return None
        cpu = self.cpu(index)
        n_cores = len(self.cores)
        sibling_index = (cpu.index + n_cores if cpu.thread == 0
                         else cpu.index - n_cores)
        return self.cpus[sibling_index]

    def cpus_in_ccx(self, ccx_index: int) -> CpuSet:
        """All logical CPUs of one CCX."""
        return self._cpus_by_ccx[ccx_index]

    def cpus_in_node(self, node_index: int) -> CpuSet:
        """All logical CPUs of one NUMA node."""
        return self._cpus_by_node[node_index]

    def cpus_in_core(self, core_index: int) -> CpuSet:
        """Both hardware threads of one physical core."""
        return self._cpus_by_core[core_index]

    def cpus_in_socket(self, socket_index: int) -> CpuSet:
        """All logical CPUs of one socket."""
        return self._cpus_by_socket[socket_index]

    def all_cpus(self) -> CpuSet:
        """Every logical CPU."""
        return CpuSet.range(0, len(self.cpus))

    def first_threads(self) -> CpuSet:
        """The first hardware thread of every physical core."""
        return CpuSet.range(0, len(self.cores))

    def distance(self, node_a: int, node_b: int) -> int:
        """SLIT-style distance between two NUMA nodes."""
        a, b = self.nodes[node_a], self.nodes[node_b]
        if a.index == b.index:
            return DISTANCE_LOCAL
        if a.socket.index == b.socket.index:
            return DISTANCE_SAME_SOCKET
        return DISTANCE_CROSS_SOCKET

    # ------------------------------------------------------------------
    # Cache descriptors
    # ------------------------------------------------------------------
    def cache_specs(self) -> list[CacheSpec]:
        """The machine's cache hierarchy descriptors."""
        spec = self.spec
        return [
            CacheSpec("L1i", int(spec.l1i_kib * 1024), 12.0, "core"),
            CacheSpec("L1d", int(spec.l1d_kib * 1024), 12.0, "core"),
            CacheSpec("L2", int(spec.l2_kib * 1024), 40.0, "core"),
            CacheSpec("L3", int(spec.l3_mib_per_ccx * MIB), 220.0, "ccx"),
        ]

    def l3_bytes_per_ccx(self) -> int:
        """L3 slice capacity of one CCX in bytes."""
        return int(self.spec.l3_mib_per_ccx * MIB)

    # ------------------------------------------------------------------
    # Pretty-printing (experiment E1: platform table)
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """A platform-configuration table like the paper's Table 1."""
        spec = self.spec
        lines = [
            f"Machine: {spec.name}",
            f"  Sockets:               {spec.sockets}",
            f"  NUMA nodes:            {len(self.nodes)} "
            f"({spec.numa_nodes_per_socket} per socket)",
            f"  CCDs:                  {len(self.ccds)} "
            f"({spec.ccds_per_socket} per socket)",
            f"  CCXs (L3 domains):     {len(self.ccxs)} "
            f"({spec.cores_per_ccx} cores each)",
            f"  Physical cores:        {len(self.cores)}",
            f"  Logical CPUs:          {len(self.cpus)} "
            f"(SMT{spec.threads_per_core})",
            f"  Logical CPUs / socket: {spec.logical_cpus_per_socket}",
            f"  Base / boost clock:    {spec.base_freq_ghz:.2f} / "
            f"{spec.max_boost_ghz:.2f} GHz",
        ]
        lines.extend(f"  {cache}" for cache in self.cache_specs())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<Machine {self.spec.name!r}: {len(self.cpus)} lcpus, "
                f"{len(self.cores)} cores, {len(self.ccxs)} ccxs, "
                f"{len(self.nodes)} nodes>")
