"""Cache descriptors attached to topology levels."""

from __future__ import annotations

import dataclasses

from repro._errors import TopologyError


@dataclasses.dataclass(frozen=True)
class CacheSpec:
    """Static description of one cache level.

    Only the attributes the performance model consumes are kept: capacity
    (for occupancy/miss-curve computations), the miss penalty in cycles
    (for CPI inflation), and the sharing scope name (documentation and
    pretty-printing).
    """

    name: str
    size_bytes: int
    miss_penalty_cycles: float
    shared_by: str  # "core", "ccx", ...

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise TopologyError(f"cache {self.name}: size must be positive")
        if self.miss_penalty_cycles < 0:
            raise TopologyError(
                f"cache {self.name}: miss penalty must be non-negative")

    @property
    def size_kib(self) -> float:
        """Capacity in KiB, for human-readable output."""
        return self.size_bytes / 1024.0

    def __str__(self) -> str:
        if self.size_bytes >= 1024 * 1024:
            size = f"{self.size_bytes / (1024 * 1024):g} MiB"
        else:
            size = f"{self.size_kib:g} KiB"
        return f"{self.name} {size} (per {self.shared_by})"
