"""Ready-made machine definitions.

``single_socket_rome`` / ``dual_socket_rome`` model the server class the
paper studied: a state-of-the-art x86 part with 64 cores / 128 SMT threads
per socket, 4-core CCXs each sharing a 16 MiB L3 slice, 2 CCXs per CCD and
8 CCDs per socket (AMD EPYC 7742-class "Rome").  The smaller presets keep
unit tests and quick examples fast.
"""

from __future__ import annotations

from repro._errors import TopologyError
from repro.topology.model import Machine, MachineSpec


def single_socket_rome() -> Machine:
    """The paper's platform: one socket, 128 logical CPUs."""
    return Machine(MachineSpec(
        name="rome-1s-128t",
        sockets=1,
        ccds_per_socket=8,
        ccxs_per_ccd=2,
        cores_per_ccx=4,
        threads_per_core=2,
        numa_nodes_per_socket=1,
        l3_mib_per_ccx=16.0,
        base_freq_ghz=2.25,
        max_boost_ghz=3.4,
    ))


def dual_socket_rome() -> Machine:
    """A two-socket variant (256 logical CPUs) for NUMA experiments."""
    return Machine(MachineSpec(
        name="rome-2s-256t",
        sockets=2,
        ccds_per_socket=8,
        ccxs_per_ccd=2,
        cores_per_ccx=4,
        threads_per_core=2,
        numa_nodes_per_socket=1,
        l3_mib_per_ccx=16.0,
        base_freq_ghz=2.25,
        max_boost_ghz=3.4,
    ))


def single_socket_rome_nps4() -> Machine:
    """The paper's platform configured NPS4 (4 NUMA nodes per socket)."""
    return Machine(MachineSpec(
        name="rome-1s-128t-nps4",
        sockets=1,
        ccds_per_socket=8,
        ccxs_per_ccd=2,
        cores_per_ccx=4,
        threads_per_core=2,
        numa_nodes_per_socket=4,
        l3_mib_per_ccx=16.0,
        base_freq_ghz=2.25,
        max_boost_ghz=3.4,
    ))


def medium_machine() -> Machine:
    """A 64-lcpu, 8-CCX single-socket machine: the smallest shape on which
    every placement policy (one CCX per service and then some) is
    exercisable quickly."""
    return Machine(MachineSpec(
        name="medium-1s-64t",
        sockets=1,
        ccds_per_socket=4,
        ccxs_per_ccd=2,
        cores_per_ccx=4,
        threads_per_core=2,
        numa_nodes_per_socket=1,
        l3_mib_per_ccx=16.0,
        base_freq_ghz=2.25,
        max_boost_ghz=3.4,
    ))


def small_numa_machine() -> Machine:
    """A 2-node, 32-lcpu machine: big enough to show every topology effect,
    small enough for integration tests."""
    return Machine(MachineSpec(
        name="small-2n-32t",
        sockets=2,
        ccds_per_socket=1,
        ccxs_per_ccd=2,
        cores_per_ccx=4,
        threads_per_core=2,
        numa_nodes_per_socket=1,
        l3_mib_per_ccx=16.0,
        base_freq_ghz=2.25,
        max_boost_ghz=3.4,
    ))


def tiny_machine() -> Machine:
    """An 8-lcpu single-node machine for fast unit tests."""
    return Machine(MachineSpec(
        name="tiny-1n-8t",
        sockets=1,
        ccds_per_socket=1,
        ccxs_per_ccd=2,
        cores_per_ccx=2,
        threads_per_core=2,
        numa_nodes_per_socket=1,
        l3_mib_per_ccx=16.0,
        base_freq_ghz=2.25,
        max_boost_ghz=3.4,
    ))


#: Name → factory mapping used by the CLI and experiment configs.
PRESETS = {
    "rome-1s": single_socket_rome,
    "rome-2s": dual_socket_rome,
    "rome-1s-nps4": single_socket_rome_nps4,
    "medium": medium_machine,
    "small": small_numa_machine,
    "tiny": tiny_machine,
}


def machine_from_preset(name: str) -> Machine:
    """Build the preset machine called ``name``.

    Raises :class:`~repro._errors.TopologyError` with the list of valid
    names on a typo, so CLI errors are self-explanatory.
    """
    try:
        factory = PRESETS[name]
    except KeyError:
        raise TopologyError(
            f"unknown machine preset {name!r}; "
            f"choose from {sorted(PRESETS)}") from None
    return factory()
