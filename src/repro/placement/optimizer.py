"""Greedy refinement of CCX budgets.

``ccx_aware`` placements start from utilization-derived weights; this
hill-climber perturbs the weight vector (shifting budget between service
pairs) and keeps moves an evaluation function scores as improvements.
The evaluation function is supplied by the caller — typically "deploy the
store with this allocation and measure throughput for a short window"
(see :mod:`repro.experiments.headline`) — so the optimizer stays agnostic
of the application.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import PlacementError
from repro.placement.allocation import Allocation
from repro.placement.policies import ccx_aware
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine

#: Scores an allocation; higher is better.
Evaluator = t.Callable[[Allocation], float]


@dataclasses.dataclass(frozen=True)
class OptimizationStep:
    """One accepted (or rejected final) state of the search."""

    iteration: int
    weights: dict[str, float]
    score: float
    accepted: bool


def optimize_ccx_budget(machine: Machine,
                        counts: t.Mapping[str, int],
                        weights: t.Mapping[str, float],
                        evaluate: Evaluator,
                        online: CpuSet | None = None,
                        iterations: int = 6,
                        shift_fraction: float = 0.25,
                        ) -> tuple[Allocation, list[OptimizationStep]]:
    """First-improvement hill climbing over the service weight vector.

    Each iteration proposes shifting ``shift_fraction`` of a donor
    service's weight to a receiver (donors tried from the largest weight
    down) and accepts the first proposal that the evaluator scores
    strictly higher.  Stops early when no proposal improves.

    Returns the best allocation found and the accepted-step history
    (including the initial state).
    """
    if iterations < 1:
        raise PlacementError(f"iterations must be >= 1: {iterations}")
    if not 0.0 < shift_fraction < 1.0:
        raise PlacementError(
            f"shift_fraction must be in (0, 1): {shift_fraction}")
    current = dict(weights)
    best_allocation = ccx_aware(machine, counts, current, online)
    best_score = evaluate(best_allocation)
    history = [OptimizationStep(0, dict(current), best_score, True)]

    for iteration in range(1, iterations + 1):
        improved = False
        donors = sorted(current, key=current.get, reverse=True)
        for donor in donors:
            receivers = sorted((s for s in current if s != donor),
                               key=current.get)
            for receiver in receivers:
                candidate = dict(current)
                shifted = candidate[donor] * shift_fraction
                candidate[donor] -= shifted
                candidate[receiver] += shifted
                try:
                    allocation = ccx_aware(machine, counts, candidate,
                                           online)
                except PlacementError:
                    continue
                score = evaluate(allocation)
                if score > best_score:
                    current = candidate
                    best_score = score
                    best_allocation = allocation
                    history.append(OptimizationStep(
                        iteration, dict(current), score, True))
                    improved = True
                    break
            if improved:
                break
        if not improved:
            history.append(OptimizationStep(
                iteration, dict(current), best_score, False))
            break
    return best_allocation, history
