"""Placement policies from naive to topology-aware.

All policies take the machine, per-service replica counts, and (for the
topology-aware ones) per-service CPU weights, and return a validated
:class:`~repro.placement.allocation.Allocation`:

* :func:`unpinned` — machine-wide affinity for everything: what an
  operator gets by default (the OS scheduler migrates freely).
* :func:`node_spread` — replicas distributed round-robin across NUMA
  nodes and pinned at node granularity: the sensible, NUMA-aware tuning a
  careful operator applies — the paper's *performance-tuned baseline*.
* :func:`socket_pack` — everything packed onto one socket: the contrast
  case for NUMA experiments.
* :func:`ccx_aware` — the paper's technique: CCX (L3-domain) budgets per
  service proportional to CPU weight; each replica confined to its own
  contiguous CCX group so its code/data stay resident in one L3 slice.
"""

from __future__ import annotations

import typing as t

from repro._errors import PlacementError
from repro.placement.allocation import Allocation, ReplicaPlacement
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine


def _check_counts(counts: t.Mapping[str, int]) -> None:
    if not counts:
        raise PlacementError("no services to place")
    for service, count in counts.items():
        if count < 1:
            raise PlacementError(
                f"replica count for {service!r} must be >= 1: {count}")


def unpinned(machine: Machine, counts: t.Mapping[str, int],
             online: CpuSet | None = None) -> Allocation:
    """Every replica may run anywhere online."""
    _check_counts(counts)
    online = online if online is not None else machine.all_cpus()
    placements = {
        service: [ReplicaPlacement(online) for __ in range(count)]
        for service, count in counts.items()
    }
    return Allocation(machine, placements, online)


def node_spread(machine: Machine, counts: t.Mapping[str, int],
                online: CpuSet | None = None) -> Allocation:
    """Round-robin replicas across NUMA nodes, pinned at node granularity."""
    _check_counts(counts)
    online = online if online is not None else machine.all_cpus()
    node_masks = [(node.index, machine.cpus_in_node(node.index) & online)
                  for node in machine.nodes]
    node_masks = [(index, mask) for index, mask in node_masks if mask]
    if not node_masks:
        raise PlacementError("no NUMA node has online CPUs")
    placements: dict[str, list[ReplicaPlacement]] = {}
    cursor = 0
    for service in sorted(counts):
        replicas = []
        for __ in range(counts[service]):
            node_index, mask = node_masks[cursor % len(node_masks)]
            cursor += 1
            replicas.append(ReplicaPlacement(mask, home_node=node_index))
        placements[service] = replicas
    return Allocation(machine, placements, online)


def socket_pack(machine: Machine, counts: t.Mapping[str, int],
                online: CpuSet | None = None,
                socket: int = 0) -> Allocation:
    """Pack every replica onto one socket (NUMA-contrast configuration)."""
    _check_counts(counts)
    online = online if online is not None else machine.all_cpus()
    mask = machine.cpus_in_socket(socket) & online
    if not mask:
        raise PlacementError(f"socket {socket} has no online CPUs")
    home_node = machine.cpu(mask.first()).node.index
    placements = {
        service: [ReplicaPlacement(mask, home_node=home_node)
                  for __ in range(count)]
        for service, count in counts.items()
    }
    return Allocation(machine, placements, online)


def ccx_aware(machine: Machine, counts: t.Mapping[str, int],
              weights: t.Mapping[str, float],
              online: CpuSet | None = None) -> Allocation:
    """The paper's placement: per-service CCX budgets, replicas per group.

    1. CCXs (L3 domains) are budgeted to services proportionally to their
       CPU ``weights`` (largest-remainder apportionment, ≥ 1 each).
    2. Each service's CCXs are taken *contiguously* (neighbouring CCXs
       share a CCD/NUMA node, keeping a service's replicas local).
    3. A service's CCXs are split into one contiguous group per replica;
       if it has more replicas than CCXs, replicas share CCXs round-robin
       (same-service sharing is cheap: shared code).
    """
    _check_counts(counts)
    online = online if online is not None else machine.all_cpus()
    missing = sorted(set(counts) - set(weights))
    if missing:
        raise PlacementError(f"weights missing for services: {missing}")
    for service in counts:
        if weights[service] <= 0:
            raise PlacementError(
                f"weight for {service!r} must be positive: "
                f"{weights[service]}")

    ccx_indices = [ccx.index for ccx in machine.ccxs
                   if machine.cpus_in_ccx(ccx.index) & online]
    services = sorted(counts)
    if len(ccx_indices) < len(services):
        raise PlacementError(
            f"{len(ccx_indices)} online CCXs cannot give "
            f"{len(services)} services one each")

    quotas = _apportion(ccx_indices, services, weights)
    placements: dict[str, list[ReplicaPlacement]] = {}
    cursor = 0
    for service in services:
        quota = quotas[service]
        service_ccxs = ccx_indices[cursor:cursor + quota]
        cursor += quota
        placements[service] = _split_replicas(
            machine, online, service_ccxs, counts[service])
    return Allocation(machine, placements, online)


def ccx_aware_auto(machine: Machine, weights: t.Mapping[str, float],
                   online: CpuSet | None = None,
                   fixed_counts: t.Mapping[str, int] | None = None
                   ) -> Allocation:
    """CCX-aware placement with scaling-derived replica counts.

    The paper's full recipe: budget CCXs by weight, then run **one replica
    per CCX** for every horizontally scalable service — each replica's
    code and data live entirely in one L3 slice, maximizing code sharing
    and locality.  Services that cannot be replicated (the database) keep
    their ``fixed_counts`` and span their whole CCX budget as one
    instance.
    """
    fixed_counts = dict(fixed_counts or {})
    online = online if online is not None else machine.all_cpus()
    for service, count in fixed_counts.items():
        if count < 1:
            raise PlacementError(
                f"fixed count for {service!r} must be >= 1: {count}")
    services = sorted(weights)
    ccx_indices = [ccx.index for ccx in machine.ccxs
                   if machine.cpus_in_ccx(ccx.index) & online]
    if len(ccx_indices) < len(services):
        raise PlacementError(
            f"{len(ccx_indices)} online CCXs cannot give "
            f"{len(services)} services one each")
    quotas = _apportion(ccx_indices, services,
                        {s: weights[s] for s in services})
    counts = {service: fixed_counts.get(service, quotas[service])
              for service in services}
    return ccx_aware(machine, counts, weights, online)


def _apportion(ccx_indices: list[int], services: list[str],
               weights: t.Mapping[str, float]) -> dict[str, int]:
    """Apportion CCXs by weight, minimum one per service.

    Starts from floored ideal shares and repeatedly gives the next CCX to
    the service with the largest *shortfall* (ideal − current quota).
    Using the shortfall rather than the raw fractional part matters: a
    service whose minimum-1 floor already over-serves its ideal share
    (e.g. a light Recommender at 0.9 CCXs) must not outrank a heavy
    service still missing most of a CCX.
    """
    n_ccxs = len(ccx_indices)
    total_weight = sum(weights[s] for s in services)
    ideal = {s: weights[s] / total_weight * n_ccxs for s in services}
    quotas = {s: max(1, int(ideal[s])) for s in services}
    while sum(quotas.values()) > n_ccxs:
        shrinkable = [s for s in services if quotas[s] > 1]
        victim = max(shrinkable, key=lambda s: (quotas[s] - ideal[s], s))
        quotas[victim] -= 1
    while sum(quotas.values()) < n_ccxs:
        neediest = max(services, key=lambda s: (ideal[s] - quotas[s], s))
        quotas[neediest] += 1
    return quotas


def _split_replicas(machine: Machine, online: CpuSet,
                    service_ccxs: list[int],
                    n_replicas: int) -> list[ReplicaPlacement]:
    replicas: list[ReplicaPlacement] = []
    if n_replicas <= len(service_ccxs):
        # Contiguous, balanced chunks (numpy.array_split sizing).
        base, extra = divmod(len(service_ccxs), n_replicas)
        start = 0
        for replica_index in range(n_replicas):
            size = base + (1 if replica_index < extra else 0)
            chunk = service_ccxs[start:start + size]
            start += size
            replicas.append(_placement_for(machine, online, chunk))
    else:
        # More replicas than CCXs: all replicas share the service's whole
        # CCX group.  Same-service sharing is cheap (shared text pages),
        # and identical masks keep round-robin load balancing fair —
        # unequal per-replica slices would make the smallest replica the
        # tail-latency bottleneck.
        shared = _placement_for(machine, online, service_ccxs)
        replicas.extend(shared for __ in range(n_replicas))
    return replicas


def _placement_for(machine: Machine, online: CpuSet,
                   ccx_chunk: list[int]) -> ReplicaPlacement:
    mask = CpuSet()
    for ccx_index in ccx_chunk:
        mask = mask | (machine.cpus_in_ccx(ccx_index) & online)
    home_node = machine.ccxs[ccx_chunk[0]].node.index
    return ReplicaPlacement(mask, home_node=home_node)
