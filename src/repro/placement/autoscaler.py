"""Reactive per-service autoscaling over a reserved CCX pool.

An extension beyond the paper (its evaluation is static): combine its two
levers — per-service sizing and CCX-granular placement — into a control
loop.  The autoscaler watches one service's CPU utilization over fixed
intervals and grows/shrinks its replica set one CCX at a time, drawing
from a reserved pool of L3 domains, so elasticity never violates the
topology discipline.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.services.deployment import Deployment
from repro.services.instance import ServiceInstance
from repro.services.spec import ServiceSpec


@dataclasses.dataclass(frozen=True)
class ScalingEvent:
    """One executed scaling action."""

    time: float
    action: str  # "up" | "down"
    replicas: int  # replica count after the action
    utilization: float  # measured utilization that triggered it


class Autoscaler:
    """Scales one service between ``min_replicas`` and the pool size."""

    def __init__(self, deployment: Deployment, spec: ServiceSpec,
                 ccx_pool: t.Sequence[int],
                 min_replicas: int = 1,
                 interval: float = 0.25,
                 high_watermark: float = 0.65,
                 low_watermark: float = 0.30):
        if not ccx_pool:
            raise ConfigurationError("autoscaler needs a non-empty CCX pool")
        if len(set(ccx_pool)) != len(ccx_pool):
            raise ConfigurationError("CCX pool contains duplicates")
        if not 1 <= min_replicas <= len(ccx_pool):
            raise ConfigurationError(
                f"min_replicas {min_replicas} outside 1..{len(ccx_pool)}")
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive: {interval}")
        if not 0.0 <= low_watermark < high_watermark <= 1.0:
            raise ConfigurationError(
                f"need 0 <= low ({low_watermark}) < high "
                f"({high_watermark}) <= 1")
        self.deployment = deployment
        self.spec = spec
        self.machine = deployment.machine
        for ccx in ccx_pool:
            if not 0 <= ccx < len(self.machine.ccxs):
                raise ConfigurationError(f"no such CCX: {ccx}")
        self.min_replicas = min_replicas
        self.interval = interval
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.events: list[ScalingEvent] = []
        #: Utilization measured at the most recent control tick.
        self.last_utilization = 0.0
        self._pool = list(ccx_pool)
        self._free = list(ccx_pool)
        self._replicas: list[tuple[ServiceInstance, int]] = []
        self._cpu_time_at_last_tick = 0.0
        for __ in range(min_replicas):
            self._scale_up(record=False)
        self._process = deployment.sim.process(self._control_loop())

    @property
    def replica_count(self) -> int:
        """Current number of managed replicas."""
        return len(self._replicas)

    def utilization(self) -> float:
        """CPU utilization of the managed replicas since the last tick."""
        total_cpu_time = sum(instance.group.cpu_time
                             for instance, __ in self._replicas)
        delta = total_cpu_time - self._cpu_time_at_last_tick
        lcpus = sum(len(instance.affinity)
                    for instance, __ in self._replicas)
        return delta / (self.interval * lcpus) if lcpus else 0.0

    def _control_loop(self) -> t.Generator:
        sim = self.deployment.sim
        while True:
            yield sim.timeout(self.interval)
            measured = self.utilization()
            self.last_utilization = measured
            self._cpu_time_at_last_tick = sum(
                instance.group.cpu_time for instance, __ in self._replicas)
            if measured > self.high_watermark and self._free:
                self._scale_up(utilization=measured)
            elif (measured < self.low_watermark
                  and len(self._replicas) > self.min_replicas):
                self._scale_down(utilization=measured)

    def _scale_up(self, utilization: float = 0.0, record: bool = True) -> None:
        ccx = self._free.pop(0)
        instance = self.deployment.add_instance(
            self.spec, affinity=self.machine.cpus_in_ccx(ccx),
            home_node=self.machine.ccxs[ccx].node.index)
        self._replicas.append((instance, ccx))
        # New replica's prior CPU time is zero; baseline stays valid.
        if record:
            self.events.append(ScalingEvent(
                self.deployment.sim.now, "up", len(self._replicas),
                utilization))

    def _scale_down(self, utilization: float) -> None:
        instance, ccx = self._replicas.pop()
        self._cpu_time_at_last_tick -= instance.group.cpu_time
        self.deployment.remove_instance(instance)
        instance.shutdown()
        self._free.insert(0, ccx)
        self.events.append(ScalingEvent(
            self.deployment.sim.now, "down", len(self._replicas),
            utilization))

    def scale_ups(self) -> list[ScalingEvent]:
        """Executed scale-up events."""
        return [e for e in self.events if e.action == "up"]

    def scale_downs(self) -> list[ScalingEvent]:
        """Executed scale-down events."""
        return [e for e in self.events if e.action == "down"]

    def __repr__(self) -> str:
        return (f"<Autoscaler {self.spec.name!r} "
                f"{len(self._replicas)} replicas, "
                f"{len(self._free)} CCXs free>")
