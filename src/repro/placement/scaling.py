"""Per-service scaling curves and weight estimation.

The paper sizes each service from its individual scaling behaviour.  Here:

* :class:`ScalingCurve` holds a (replica count → throughput) sweep and
  derives speedups/efficiencies (fit it with
  :func:`repro.analysis.usl.fit_usl` for the paper-style analysis);
* :func:`weights_from_utilization` turns a profiling run's per-service
  CPU utilization into the weight vector the
  :func:`~repro.placement.policies.ccx_aware` policy budgets with.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import PlacementError


@dataclasses.dataclass(frozen=True)
class ScalingCurve:
    """Throughput versus replica count for one service."""

    service: str
    replica_counts: tuple[int, ...]
    throughputs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.replica_counts) != len(self.throughputs):
            raise PlacementError(
                f"{self.service!r}: counts and throughputs differ in length")
        if not self.replica_counts:
            raise PlacementError(f"{self.service!r}: empty scaling curve")
        if list(self.replica_counts) != sorted(set(self.replica_counts)):
            raise PlacementError(
                f"{self.service!r}: replica counts must be strictly "
                f"increasing")
        if any(x <= 0 for x in self.throughputs):
            raise PlacementError(
                f"{self.service!r}: throughputs must be positive")

    def speedups(self) -> tuple[float, ...]:
        """Throughput normalized to the first point."""
        base = self.throughputs[0]
        return tuple(x / base for x in self.throughputs)

    def efficiency(self) -> tuple[float, ...]:
        """Speedup per replica, relative to the first point."""
        base_count = self.replica_counts[0]
        return tuple(s / (n / base_count)
                     for s, n in zip(self.speedups(), self.replica_counts))

    def saturation_point(self, threshold: float = 0.05) -> int:
        """Smallest replica count beyond which gains fall under ``threshold``.

        Returns the last count if the curve keeps improving.
        """
        for previous, current, count in zip(self.throughputs,
                                            self.throughputs[1:],
                                            self.replica_counts[1:]):
            if current < previous * (1.0 + threshold):
                return count
        return self.replica_counts[-1]

    def __str__(self) -> str:
        points = ", ".join(
            f"{n}→{x:.0f}" for n, x in zip(self.replica_counts,
                                           self.throughputs))
        return f"{self.service}: {points}"


def weights_from_utilization(
        service_utilization: t.Mapping[str, float],
        floor: float = 0.02) -> dict[str, float]:
    """Normalize a profiling run's CPU-utilization breakdown into weights.

    ``floor`` keeps even nearly idle services (Recommender at low load)
    from being starved of their minimum placement share.
    """
    if not service_utilization:
        raise PlacementError("empty utilization breakdown")
    if any(v < 0 for v in service_utilization.values()):
        raise PlacementError("utilization values must be non-negative")
    total = sum(service_utilization.values())
    if total <= 0:
        raise PlacementError("total utilization is zero")
    return {service: max(value / total, floor)
            for service, value in service_utilization.items()}
