"""Validated placement descriptions."""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import PlacementError
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine


@dataclasses.dataclass(frozen=True)
class ReplicaPlacement:
    """Where one replica runs: its CPU mask and memory home node."""

    affinity: CpuSet
    home_node: int | None = None  # None → first-touch

    def __post_init__(self) -> None:
        if not self.affinity:
            raise PlacementError("replica placement with empty affinity")


class Allocation:
    """A complete placement: every service's replicas and their masks.

    Immutable once built; validation happens against a machine and an
    online CPU set so mistakes surface at construction, not mid-run.
    """

    def __init__(self, machine: Machine,
                 placements: t.Mapping[str, t.Sequence[ReplicaPlacement]],
                 online: CpuSet | None = None):
        online = online if online is not None else machine.all_cpus()
        self.machine = machine
        self.online = online
        validated: dict[str, tuple[ReplicaPlacement, ...]] = {}
        for service, replicas in placements.items():
            if not replicas:
                raise PlacementError(f"service {service!r} has no replicas")
            for replica in replicas:
                if not (replica.affinity & online):
                    raise PlacementError(
                        f"{service!r}: affinity "
                        f"{replica.affinity.to_string()!r} has no online CPU")
                if not replica.affinity.issubset(machine.all_cpus()):
                    raise PlacementError(
                        f"{service!r}: affinity exceeds machine CPUs")
                if (replica.home_node is not None
                        and not 0 <= replica.home_node < len(machine.nodes)):
                    raise PlacementError(
                        f"{service!r}: no such NUMA node "
                        f"{replica.home_node}")
            validated[service] = tuple(replicas)
        self._placements = validated

    @property
    def services(self) -> list[str]:
        """Service names covered, sorted."""
        return sorted(self._placements)

    def replicas(self, service: str) -> tuple[ReplicaPlacement, ...]:
        """The placements of one service."""
        try:
            return self._placements[service]
        except KeyError:
            raise PlacementError(
                f"allocation has no service {service!r}") from None

    def replica_counts(self) -> dict[str, int]:
        """Replica count per service."""
        return {service: len(replicas)
                for service, replicas in self._placements.items()}

    def as_placement(self) -> dict[str, list[tuple[CpuSet, int | None]]]:
        """The mapping :func:`repro.teastore.build_teastore` consumes."""
        return {service: [(r.affinity, r.home_node) for r in replicas]
                for service, replicas in self._placements.items()}

    def describe(self) -> str:
        """Human-readable placement table."""
        lines = []
        for service in self.services:
            for index, replica in enumerate(self._placements[service]):
                home = ("first-touch" if replica.home_node is None
                        else f"node {replica.home_node}")
                lines.append(f"{service}#{index}: "
                             f"cpus {replica.affinity.to_string()} ({home})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        counts = ", ".join(f"{s}×{len(r)}"
                           for s, r in sorted(self._placements.items()))
        return f"<Allocation {counts}>"
