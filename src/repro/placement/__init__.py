"""Topology-aware service placement — the paper's contribution.

The paper's headline gains come from two levers applied together:

1. **Per-service right-sizing** — replica counts proportional to each
   service's measured CPU appetite and scaling behaviour, instead of
   uniform or guessed counts.
2. **Topology-aware pinning** — each replica confined to its own group of
   CCXs (L3 domains) on one NUMA node, so replicas keep their code and
   data resident in one L3 slice instead of dragging it across the die.

* :class:`~repro.placement.allocation.Allocation` — a validated mapping
  of service → replica affinities/home nodes, consumable by
  :func:`repro.teastore.build_teastore`.
* :mod:`~repro.placement.policies` — ``unpinned`` (OS default),
  ``node_spread`` (the performance-tuned baseline), ``socket_pack``,
  and ``ccx_aware`` (the paper's technique).
* :mod:`~repro.placement.scaling` — per-service scaling-curve
  measurement and weight estimation.
* :mod:`~repro.placement.optimizer` — greedy CCX-budget refinement on top
  of ``ccx_aware`` using an arbitrary evaluation function.
"""

from repro.placement.allocation import Allocation, ReplicaPlacement
from repro.placement.autoscaler import Autoscaler, ScalingEvent
from repro.placement.optimizer import OptimizationStep, optimize_ccx_budget
from repro.placement.policies import (
    ccx_aware,
    ccx_aware_auto,
    node_spread,
    socket_pack,
    unpinned,
)
from repro.placement.scaling import (
    ScalingCurve,
    weights_from_utilization,
)

__all__ = [
    "Allocation",
    "Autoscaler",
    "OptimizationStep",
    "ReplicaPlacement",
    "ScalingCurve",
    "ScalingEvent",
    "ccx_aware",
    "ccx_aware_auto",
    "node_spread",
    "optimize_ccx_budget",
    "socket_pack",
    "unpinned",
    "weights_from_utilization",
]
