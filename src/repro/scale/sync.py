"""Conservative time-window synchronization at shared-resource
boundaries.

Shards run independent deployments, but TeaStore's Persistence/DB tier
(and the service registry) model one logical shared back end: foreign
shards' traffic contends with ours there.  Rather than exchanging live
events — which would serialize the shards and make results depend on
wall-clock interleaving — shards synchronize through *demand profiles*:

1. **Discovery round.**  Every shard runs the full timeline alone and
   publishes, per sync window, how many requests its shared-service
   replicas completed (plus registry lookups, as boundary telemetry).
2. **Exchange.**  The driver merges the profiles and derives, per shard
   × shared service × window, a demand inflation factor from the
   *previous* window's foreign/own demand ratio (one-window lag — the
   conservative discipline: a window only ever depends on information
   that existed before it started, so no shard waits on another
   mid-window and the result is a pure function of the round's inputs).
3. **Measured round.**  Shards re-run the same seeds with the factors
   applied through :attr:`ServiceInstance.demand_factor` — the same
   multiplier the fault injector uses — so shared-tier service times
   stretch as if the foreign traffic were locally present.

Everything here is plain arithmetic over JSON-native profiles; given
the same per-shard demand (which is deterministic per seed), the
factors are bit-identical no matter how many worker processes computed
the rounds.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.scale.plan import ScaleConfig

#: Per-shard demand profile: service name → completions per window.
DemandProfile = dict[str, list[int]]

#: Per-shard inflation profile: service name → factor per window.
InflationProfile = dict[str, tuple[float, ...]]


def merge_demand(profiles: t.Sequence[DemandProfile],
                 n_windows: int) -> dict[str, list[int]]:
    """Total per-window demand across shards, per shared service."""
    totals: dict[str, list[int]] = {}
    for profile in profiles:
        for service, counts in profile.items():
            bucket = totals.setdefault(service, [0] * n_windows)
            for k, count in enumerate(counts):
                bucket[k] += count
    return totals


def inflation_profiles(profiles: t.Sequence[DemandProfile],
                       config: ScaleConfig,
                       n_windows: int) -> list[InflationProfile]:
    """Per-shard demand-factor schedules from published profiles.

    For shard ``s``, service ``v``, window ``k``::

        factor = clamp(1 + alpha * foreign[v][k-1] / max(own[v][k-1], 1),
                       1, f_max)

    where ``foreign`` is every other shard's window demand.  Window 0
    has no predecessor and stays at 1.0 — the conservative cold start.
    A lone shard (or ``alpha == 0``) degenerates to all-ones: sharding
    one deployment changes nothing.
    """
    totals = merge_demand(profiles, n_windows)
    result: list[InflationProfile] = []
    for profile in profiles:
        factors: InflationProfile = {}
        for service, total_counts in totals.items():
            own_counts = profile.get(service, [0] * n_windows)
            schedule = [1.0]
            for k in range(1, n_windows):
                own = own_counts[k - 1]
                foreign = total_counts[k - 1] - own
                factor = 1.0 + config.alpha * foreign / max(own, 1)
                schedule.append(min(max(factor, 1.0), config.f_max))
            factors[service] = tuple(schedule)
        result.append(factors)
    return result


@dataclasses.dataclass(frozen=True)
class SyncReport:
    """What one demand exchange saw — surfaced for telemetry/tests."""

    #: Absolute window-end times of the sync grid.
    boundaries: tuple[float, ...]
    #: Merged per-window shared-service demand across shards.
    total_demand: dict[str, list[int]]
    #: Per-shard registry lookups per window (boundary telemetry).
    registry_lookups: list[list[int]]
    #: The factor schedules applied in the measured round.
    factors: list[InflationProfile]

    def max_factor(self) -> float:
        """The largest inflation any shard saw (1.0 = no coupling)."""
        values = [factor
                  for profile in self.factors
                  for schedule in profile.values()
                  for factor in schedule]
        return max(values, default=1.0)
