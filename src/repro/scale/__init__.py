"""Scale-out execution tier: cohort-compressed users on sharded
deployments.

Two cooperating layers take the closed-loop experiments from thousands
to a million simulated users:

* :mod:`repro.workload.cohorts` collapses statistically identical users
  into weighted cohorts (one event stream per cohort, weight-1 cohorts
  byte-identical to the per-user baseline);
* this package partitions the population across full TeaStore
  deployments (:mod:`repro.scale.plan`), couples them at the
  shared-resource tier with conservative window synchronization
  (:mod:`repro.scale.sync`), and merges per-shard columnar results into
  one :class:`~repro.workload.runner.RunResult`
  (:mod:`repro.scale.executor`).

See ``docs/SCALE.md`` for the model and its accuracy caveats.
"""

from repro.scale.executor import ScaleOutcome, ShardTask, run_sharded
from repro.scale.plan import (
    ScaleConfig,
    ShardPlan,
    ShardSpec,
    plan_shards,
    window_boundaries,
)
from repro.scale.sync import (
    SyncReport,
    inflation_profiles,
    merge_demand,
)

__all__ = [
    "ScaleConfig",
    "ScaleOutcome",
    "ShardPlan",
    "ShardSpec",
    "ShardTask",
    "SyncReport",
    "inflation_profiles",
    "merge_demand",
    "plan_shards",
    "run_sharded",
    "window_boundaries",
]
