"""Shard planning: partitioning a user population across deployments.

A sharded run models cluster scale-out: each shard is a complete
TeaStore deployment (its own machine, scheduler, and replicas) serving a
contiguous slice of the global user population.  Users keep their
*global* ids inside a shard, so every named random stream
(``user.think.<id>``, ``session.<id>``, …) draws exactly what it would
draw in any other partitioning — the partition boundaries move work
between processes without moving a single random draw.

The plan also fixes the synchronization grid: a shared set of window
boundaries every shard steps through in lockstep (see
:mod:`repro.scale.sync`), with the warmup/measure split always landing
exactly on a boundary so windowed execution reproduces
:func:`repro.workload.runner.run_experiment`'s phase semantics.
"""

from __future__ import annotations

import dataclasses
import math

from repro._errors import ConfigurationError
from repro.workload.cohorts import Cohort, plan_cohorts

#: Default number of sync windows the measure phase is divided into
#: when :attr:`ScaleConfig.window` is left unset.
_DEFAULT_MEASURE_WINDOWS = 8


@dataclasses.dataclass(frozen=True)
class ScaleConfig:
    """Knobs of the sharded execution tier.

    ``alpha`` and ``f_max`` parametrize the shared-resource coupling
    model (see :mod:`repro.scale.sync`): per window, a shard's
    shared-service demand is inflated by
    ``clamp(1 + alpha * foreign / own, 1, f_max)`` computed from the
    *previous* window's published demand — conservative one-window-lag
    synchronization, so no shard ever waits on another mid-window.
    """

    shards: int = 1
    cohort_factor: int = 1
    #: Sync window length in simulated seconds; ``None`` divides the
    #: measure phase into :data:`_DEFAULT_MEASURE_WINDOWS` windows.
    window: float | None = None
    #: Demand-exchange iterations before the measured round (1 = one
    #: discovery round feeding one measured round).
    sync_rounds: int = 1
    #: Coupling strength of cross-shard shared-resource contention.
    alpha: float = 0.25
    #: Upper clamp on the per-window demand inflation factor.
    f_max: float = 4.0
    #: Services treated as one logical shared tier across shards
    #: (TeaStore's Persistence + DB back ends).
    shared_services: tuple[str, ...] = ("persistence", "db")

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1: {self.shards}")
        if self.cohort_factor < 1:
            raise ConfigurationError(
                f"cohort_factor must be >= 1: {self.cohort_factor}")
        if self.window is not None and self.window <= 0:
            raise ConfigurationError(
                f"window must be positive: {self.window}")
        if self.sync_rounds < 1:
            raise ConfigurationError(
                f"sync_rounds must be >= 1: {self.sync_rounds}")
        if self.alpha < 0:
            raise ConfigurationError(f"alpha must be >= 0: {self.alpha}")
        if self.f_max < 1:
            raise ConfigurationError(f"f_max must be >= 1: {self.f_max}")


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """One shard: a contiguous slice of the global user population."""

    index: int
    user_base: int
    n_users: int
    cohorts: tuple[Cohort, ...]

    @property
    def users(self) -> range:
        """The global user ids this shard simulates."""
        return range(self.user_base, self.user_base + self.n_users)


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """The full partitioning plus the shared synchronization grid."""

    n_users: int
    config: ScaleConfig
    shards: tuple[ShardSpec, ...]
    #: Absolute window-end times; ``boundaries[warmup_windows - 1]`` is
    #: exactly the warmup/measure split and the last entry is exactly
    #: ``warmup + duration``.
    boundaries: tuple[float, ...]
    #: How many leading windows belong to the warmup phase.
    warmup_windows: int

    @property
    def n_windows(self) -> int:
        """Total sync windows (warmup + measure)."""
        return len(self.boundaries)

    @property
    def n_cohorts(self) -> int:
        """Representative event streams across all shards."""
        return sum(len(spec.cohorts) for spec in self.shards)


def window_boundaries(warmup: float, duration: float,
                      window: float | None) -> tuple[tuple[float, ...], int]:
    """The shared sync grid: ``(absolute boundaries, warmup windows)``.

    Both phases are divided into equal windows no longer than
    ``window`` (phase length / :data:`_DEFAULT_MEASURE_WINDOWS` when
    unset), with the phase edges themselves always exact boundaries —
    window arithmetic must never smear the warmup/measure split.
    """
    if warmup < 0 or duration <= 0:
        raise ConfigurationError(
            f"need warmup >= 0 and duration > 0 (got {warmup}, {duration})")
    if window is None:
        window = duration / _DEFAULT_MEASURE_WINDOWS
    warmup_windows = (max(1, math.ceil(warmup / window))
                      if warmup > 0 else 0)
    measure_windows = max(1, math.ceil(duration / window))
    # The phase edges are written down verbatim, not recomputed via
    # division: `warmup * n / n` can land an ulp off `warmup`, which
    # would shift the measurement window and break bit-identity with
    # the unsharded runner.
    boundaries = [warmup * (k + 1) / warmup_windows
                  for k in range(warmup_windows - 1)]
    if warmup_windows:
        boundaries.append(warmup)
    boundaries.extend(warmup + duration * (k + 1) / measure_windows
                      for k in range(measure_windows - 1))
    boundaries.append(warmup + duration)
    return tuple(boundaries), warmup_windows


def plan_shards(n_users: int, config: ScaleConfig,
                warmup: float, duration: float) -> ShardPlan:
    """Partition ``n_users`` into contiguous shard populations.

    Shard sizes differ by at most one user (the remainder spreads over
    the leading shards); each shard's cohorts are planned over its own
    slice with global ids, so a cohort never spans shards and every
    member keeps its global seed-derived streams.
    """
    if n_users < 1:
        raise ConfigurationError(f"n_users must be >= 1: {n_users}")
    if config.shards > n_users:
        raise ConfigurationError(
            f"cannot split {n_users} users across {config.shards} shards; "
            f"each shard needs at least one user")
    base_size, remainder = divmod(n_users, config.shards)
    specs = []
    user_base = 0
    for index in range(config.shards):
        size = base_size + (1 if index < remainder else 0)
        cohorts = tuple(plan_cohorts(size, config.cohort_factor,
                                     base=user_base))
        specs.append(ShardSpec(index=index, user_base=user_base,
                               n_users=size, cohorts=cohorts))
        user_base += size
    boundaries, warmup_windows = window_boundaries(
        warmup, duration, config.window)
    return ShardPlan(n_users=n_users, config=config, shards=tuple(specs),
                     boundaries=boundaries, warmup_windows=warmup_windows)
