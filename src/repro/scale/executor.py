"""Sharded execution: run one experiment as N deployments and merge.

The driver (:func:`run_sharded`) models cluster scale-out: the user
population is partitioned into contiguous shards (see
:mod:`repro.scale.plan`), each shard runs a complete deployment of the
active application (``settings.app``; TeaStore by default) over the
same warmup/measure timeline, and the shards are
coupled at the shared-resource tier through the conservative window
synchronization in :mod:`repro.scale.sync`:

* **round 0** runs every shard uncoupled and records per-window demand
  at the shared services (Persistence/DB for TeaStore; the spec's
  ``shared_services`` otherwise) and the registry;
* the driver merges the profiles into per-shard inflation schedules;
* the **measured round** replays the same seeds with the schedules
  applied through ``ServiceInstance.demand_factor``, and its per-shard
  payloads — columnar latency samples, utilization, optional span
  tables — merge into one :class:`~repro.workload.runner.RunResult`.

Shards execute on the orchestrator's substrate: worker fan-out uses a
process pool exactly like ``repro sweep`` (``jobs`` or the
``REPRO_SCALE_JOBS`` environment variable), and each shard round is a
synthetic :class:`~repro.orchestrator.plan.SweepPoint` so the
content-addressed :class:`~repro.orchestrator.cache.ResultCache` can
replay unchanged shards for free.  Shard 0's final round always runs in
the driver process so callers get live ``Deployment``/``Application``
objects back, mirroring the single-process ``run_store`` contract.

Every payload is JSON-native and every merge folds shard payloads in
shard order, so the merged result is a pure function of
``(settings, users, seed, config)`` — identical at any ``jobs`` and
with or without the cache.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import os
import typing as t

from repro._errors import ConfigurationError
from repro.apps.runtime import Application
from repro.experiments.common import ExperimentSettings, build_application
from repro.metrics.latency import LatencyRecorder
from repro.metrics.utilization import UtilizationProbe
from repro.scale.plan import (
    ScaleConfig,
    ShardPlan,
    ShardSpec,
    plan_shards,
)
from repro.scale.sync import (
    InflationProfile,
    SyncReport,
    inflation_profiles,
    merge_demand,
)
from repro.services.deployment import Deployment
from repro.tracing.collector import SpanTable, TraceCollector
from repro.workload.cohorts import CohortWorkload
from repro.workload.runner import RunResult

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.cache import ResultCache

#: JSON-native result of one shard round.
Payload = dict[str, t.Any]

#: Environment override for shard-level process fan-out (the CLI `run`
#: path has no --jobs flag; sweeps already parallelize across points).
JOBS_ENV = "REPRO_SCALE_JOBS"


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one worker process needs to run one shard round."""

    settings: ExperimentSettings
    spec: ShardSpec
    seed: int
    boundaries: tuple[float, ...]
    warmup_windows: int
    shared_services: tuple[str, ...]
    #: Sorted ``(service, per-window factor schedule)`` pairs; empty in
    #: the discovery round.
    background: tuple[tuple[str, tuple[float, ...]], ...] = ()
    trace: bool = False


def run_shard(task: ShardTask) -> Payload:
    """Execute one shard round (the process-pool entry point)."""
    payload, __, __, __ = _run_shard_objects(task)
    return payload


def _run_shard_objects(task: ShardTask
                       ) -> tuple[Payload, Deployment, Application,
                                  TraceCollector | None]:
    """One shard round, returning the live objects alongside the payload.

    Replicates :func:`repro.workload.runner.run_experiment`'s phase
    semantics on the shared window grid: the warmup/measure split is an
    exact boundary, so resetting the recorder and opening the meter and
    probe there observes exactly what a single ``run(until=warmup)``
    call would have produced.
    """
    settings = task.settings
    deployment = Deployment(settings.machine(), seed=task.seed,
                            memory_config=settings.memory_config)
    store = build_application(settings, deployment)
    workload = CohortWorkload(deployment, store.session_factory(),
                              n_users=task.spec.n_users,
                              think_time=settings.think_time,
                              cohorts=task.spec.cohorts)
    workload.start()
    probe = UtilizationProbe(deployment.scheduler, deployment.groups())
    background = dict(task.background)
    shared = [(service, store.replicas(service))
              for service in task.shared_services
              if store.replicas(service)]
    demand: dict[str, list[int]] = {service: [] for service, __ in shared}
    last = {service: sum(replica.completed for replica in replicas)
            for service, replicas in shared}
    lookups: list[int] = []
    last_lookups = deployment.registry.lookups
    tracer: TraceCollector | None = None

    def open_measurement() -> TraceCollector | None:
        workload.latency.reset()
        workload.meter.start_window()
        probe.start()
        if task.trace:
            collector = TraceCollector()
            deployment.tracer = collector
            return collector
        return None

    if task.warmup_windows == 0:
        tracer = open_measurement()
    for k, t_end in enumerate(task.boundaries):
        for service, replicas in shared:
            schedule = background.get(service)
            factor = schedule[k] if schedule is not None else 1.0
            for replica in replicas:
                replica.demand_factor = factor
        deployment.run(until=t_end)
        for service, replicas in shared:
            total = sum(replica.completed for replica in replicas)
            demand[service].append(total - last[service])
            last[service] = total
        lookups.append(deployment.registry.lookups - last_lookups)
        last_lookups = deployment.registry.lookups
        if k == task.warmup_windows - 1:
            tracer = open_measurement()
    workload.meter.stop_window()
    probe.stop()

    payload: Payload = {
        "shard": task.spec.index,
        "users": task.spec.n_users,
        "user_base": task.spec.user_base,
        "cohorts": len(task.spec.cohorts),
        "completed": workload.meter.window_count,
        "errors": workload.errors,
        # The *measured* window length (a float subtraction of clock
        # values), so merged throughput divides by exactly what the
        # single-process meter divides by — identical grids give every
        # shard the same value.
        "window_duration": workload.meter.window_duration,
        "machine_utilization": probe.machine_utilization(),
        "service_utilization": probe.group_utilization(),
        "service_share": probe.group_share(),
        "latency": workload.latency.to_payload(),
        "demand": demand,
        "lookups": lookups,
    }
    if tracer is not None:
        payload["spans"] = tracer.table.to_payload()
    return payload, deployment, store, tracer


def _config_dict(config: ScaleConfig) -> dict[str, t.Any]:
    """The scale config as a JSON-native cache-key fragment."""
    values = dataclasses.asdict(config)
    values["shared_services"] = list(config.shared_services)
    return values


def _point_for(task: ShardTask, round_index: int, users: int, seed: int,
               config: ScaleConfig):
    """A synthetic sweep point identifying one shard round in the cache.

    The identity covers everything that determines the payload: the
    settings snapshot, the population/seed, the shard index, the full
    scale config (window grid + coupling model), the round's background
    schedules, and whether spans were collected.
    """
    from repro.orchestrator.plan import SweepPoint
    background = [[service, list(schedule)]
                  for service, schedule in task.background]
    return SweepPoint(
        experiment="scale", index=task.spec.index, kind="shard",
        label=f"shard {task.spec.index} round {round_index}",
        settings=task.settings,
        params=(("users", users), ("seed", seed),
                ("shard", task.spec.index), ("round", round_index),
                ("scale", _config_dict(config)),
                ("background", background),
                ("trace", task.trace)))


def _execute_round(tasks: list[ShardTask], round_index: int, users: int,
                   seed: int, config: ScaleConfig, jobs: int,
                   cache: "ResultCache | None", keep_objects: bool
                   ) -> tuple[list[Payload], Deployment | None,
                              Application | None, TraceCollector | None]:
    """Run one round of every shard; returns payloads in shard order.

    With ``keep_objects`` (the final round) shard 0 always executes in
    the driver process — never from the cache — so its deployment and
    store come back live.  Other shards consult the cache first, then
    fan out over a process pool when ``jobs > 1``.
    """
    from repro.orchestrator.cache import canonical_payload
    payloads: list[Payload | None] = [None] * len(tasks)
    pending: list[int] = []
    for i, task in enumerate(tasks):
        if keep_objects and i == 0:
            continue
        if cache is not None:
            hit = cache.get(_point_for(task, round_index, users, seed,
                                       config))
            if hit is not None:
                payloads[i] = hit
                continue
        pending.append(i)
    if jobs > 1 and len(pending) > 1:
        workers = min(jobs, len(pending))
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=workers) as pool:
            futures = {i: pool.submit(run_shard, tasks[i]) for i in pending}
            for i in pending:
                payloads[i] = futures[i].result()
    else:
        for i in pending:
            payloads[i] = run_shard(tasks[i])
    deployment: Deployment | None = None
    store: Application | None = None
    tracer: TraceCollector | None = None
    if keep_objects:
        payloads[0], deployment, store, tracer = _run_shard_objects(tasks[0])
        pending.insert(0, 0)
    if cache is not None:
        # Freshly computed payloads take one canonical round trip so a
        # cache-hit replay is byte-identical to the original run, then
        # land in the cache (shard 0's final round stays uncached: it
        # must re-execute anyway to materialize the live objects).
        for i in pending:
            payloads[i] = canonical_payload(
                t.cast(Payload, payloads[i]))
            if not (keep_objects and i == 0):
                cache.put(_point_for(tasks[i], round_index, users, seed,
                                     config), payloads[i])
    return t.cast("list[Payload]", payloads), deployment, store, tracer


def _merge_results(payloads: t.Sequence[Payload],
                   duration: float) -> RunResult:
    """Fold per-shard payloads into one cluster-level result.

    Counts sum; latency samples pool in shard order (percentiles over
    the union); utilizations average across shards with equal weight —
    every shard is one machine of the modeled cluster, and all shards
    measure the same window, so ``sum(completed) / duration`` is the
    cluster throughput.
    """
    completed = sum(p["completed"] for p in payloads)
    errors = sum(p["errors"] for p in payloads)
    window_duration = payloads[0]["window_duration"]
    latency = LatencyRecorder()
    for payload in payloads:
        latency.extend_from_payload(payload["latency"])
    if latency.count == 0:
        raise ConfigurationError(
            "no requests completed inside the measurement window; "
            "increase duration or check the workload wiring")
    n = len(payloads)
    machine_utilization = sum(p["machine_utilization"]
                              for p in payloads) / n
    service_names: list[str] = []
    for payload in payloads:
        for name in payload["service_utilization"]:
            if name not in service_names:
                service_names.append(name)
    service_utilization = {
        name: sum(p["service_utilization"].get(name, 0.0)
                  for p in payloads) / n
        for name in service_names}
    service_share = {
        name: sum(p["service_share"].get(name, 0.0)
                  for p in payloads) / n
        for name in service_names}
    return RunResult(
        throughput=completed / window_duration,
        latency_mean=latency.mean(),
        latency_p50=latency.p50(),
        latency_p95=latency.p95(),
        latency_p99=latency.p99(),
        completed=completed,
        errors=errors,
        duration=duration,
        machine_utilization=machine_utilization,
        service_utilization=service_utilization,
        service_share=service_share,
        latency_by_endpoint={
            tag: (latency.mean(tag), latency.p99(tag))
            for tag in latency.tags},
    )


@dataclasses.dataclass
class ScaleOutcome:
    """Everything a sharded run produces."""

    #: The merged cluster-level measurement.
    result: RunResult
    #: Shard 0's live deployment (executed in the driver process).
    deployment: Deployment
    #: Shard 0's live store.
    store: Application
    #: The partitioning and sync grid that ran.
    plan: ShardPlan
    #: Demand totals, factor schedules, and registry telemetry.
    sync: SyncReport
    #: Final-round payloads, in shard order.
    shard_payloads: list[Payload]
    #: Merged span table when tracing was requested, else ``None``.
    spans: SpanTable | None = None


def run_sharded(settings: ExperimentSettings,
                users: int | None = None,
                seed: int | None = None, *,
                config: ScaleConfig | None = None,
                jobs: int | None = None,
                cache: "ResultCache | None" = None,
                trace: bool = False) -> ScaleOutcome:
    """Run one default-session measurement as a sharded cluster.

    ``config`` defaults to the settings' ``shards``/``cohort_factor``
    with the standard coupling model (shared services come from the
    active application's spec for non-TeaStore apps); ``jobs`` defaults to the
    ``REPRO_SCALE_JOBS`` environment variable (else sequential).  The
    result is deterministic for fixed ``(settings, users, seed,
    config)`` regardless of ``jobs`` and cache state.
    """
    users = settings.users if users is None else users
    seed = settings.seed if seed is None else seed
    if config is None:
        values: dict[str, t.Any] = dict(shards=settings.shards,
                                        cohort_factor=settings.cohort_factor)
        if settings.app != "teastore":
            values["shared_services"] = \
                settings.application().shared_services
        config = ScaleConfig(**values)
    if jobs is None:
        jobs = int(os.environ.get(JOBS_ENV, "1") or "1")
    plan = plan_shards(users, config, settings.warmup, settings.duration)

    def tasks_for(factors: "list[InflationProfile] | None",
                  trace_round: bool) -> list[ShardTask]:
        tasks = []
        for i, spec in enumerate(plan.shards):
            background: tuple[tuple[str, tuple[float, ...]], ...] = ()
            if factors is not None:
                background = tuple(sorted(factors[i].items()))
            tasks.append(ShardTask(
                settings=settings, spec=spec, seed=seed,
                boundaries=plan.boundaries,
                warmup_windows=plan.warmup_windows,
                shared_services=config.shared_services,
                background=background, trace=trace_round))
        return tasks

    factors: "list[InflationProfile] | None" = None
    payloads: list[Payload] = []
    demand_profiles: list[dict[str, list[int]]] = []
    lookup_profiles: list[list[int]] = []
    deployment: Deployment | None = None
    store: Application | None = None
    for round_index in range(config.sync_rounds + 1):
        final = round_index == config.sync_rounds
        tasks = tasks_for(factors, trace and final)
        payloads, deployment, store, __ = _execute_round(
            tasks, round_index, users, seed, config, jobs, cache,
            keep_objects=final)
        demand_profiles = [p["demand"] for p in payloads]
        lookup_profiles = [p["lookups"] for p in payloads]
        if not final:
            factors = inflation_profiles(demand_profiles, config,
                                         plan.n_windows)
    report = SyncReport(
        boundaries=plan.boundaries,
        total_demand=merge_demand(demand_profiles, plan.n_windows),
        registry_lookups=lookup_profiles,
        factors=(factors if factors is not None
                 else [{} for __ in plan.shards]))
    result = _merge_results(payloads, settings.duration)
    spans = (SpanTable.merged([p["spans"] for p in payloads])
             if trace else None)
    return ScaleOutcome(result=result,
                        deployment=t.cast(Deployment, deployment),
                        store=t.cast(Application, store), plan=plan,
                        sync=report, shard_payloads=payloads, spans=spans)
