"""SPEC-class comparison kernels for the characterization contrast."""

from repro.spec.kernels import (
    KERNEL_NAMES,
    batch_kernel_profiles,
    run_batch_kernels,
)

__all__ = ["KERNEL_NAMES", "batch_kernel_profiles", "run_batch_kernels"]
