"""Batch kernels standing in for SPEC-CPU-class workloads.

The paper's last contribution is the observation that microservices look
nothing like the workloads server CPUs are designed against: SPEC-class
codes are loop nests with *small instruction footprints* (they live in
L1i), *high IPC*, and data behaviour ranging from cache-resident to
streaming.  These kernel descriptors feed the same counter pipeline as the
TeaStore services, producing the paper-style contrast table (experiment
E9).
"""

from __future__ import annotations

import typing as t

from repro._units import mib, ms
from repro.cpu.burst import CpuBurst, TaskGroup
from repro.cpu.scheduler import CpuScheduler
from repro.memory.profile import WorkloadProfile
from repro.memory.system import MemorySystemModel
from repro.metrics.hwcounters import CounterBank
from repro.sim.engine import Simulator
from repro.sim.rand import RandomStreams
from repro.topology.model import Machine

#: The modelled comparison kernels.
KERNEL_NAMES = ("spec-int-like", "spec-fp-like", "stream-like")


def batch_kernel_profiles() -> dict[str, WorkloadProfile]:
    """Microarchitectural descriptors of the comparison kernels."""
    return {
        # Integer loop kernels: tiny hot code, excellent IPC, modest data.
        "spec-int-like": WorkloadProfile(
            name="spec-int-like", code_bytes=mib(0.4), data_bytes=mib(2.0),
            mem_intensity=0.30, frontend_intensity=0.06,
            base_ipc=1.90, l1i_mpki=1.2, l1d_mpki=12.0, l2_mpki=3.0,
            l3_mpki=0.8, branch_mpki=4.0),
        # FP kernels: vectorized loops, high IPC, larger working sets.
        "spec-fp-like": WorkloadProfile(
            name="spec-fp-like", code_bytes=mib(0.6), data_bytes=mib(8.0),
            mem_intensity=0.50, frontend_intensity=0.04,
            base_ipc=2.10, l1i_mpki=0.6, l1d_mpki=18.0, l2_mpki=6.0,
            l3_mpki=1.5, branch_mpki=1.5),
        # Bandwidth-bound streaming: data sweeps through every level.
        "stream-like": WorkloadProfile(
            name="stream-like", code_bytes=mib(0.2), data_bytes=mib(64.0),
            mem_intensity=0.95, frontend_intensity=0.02,
            base_ipc=1.20, l1i_mpki=0.3, l1d_mpki=60.0, l2_mpki=30.0,
            l3_mpki=12.0, branch_mpki=0.8),
    }


def run_batch_kernels(machine: Machine, counter_bank: CounterBank,
                      bursts_per_kernel: int = 200,
                      burst_demand: float = ms(5.0),
                      seed: int = 0) -> None:
    """Execute the comparison kernels and record their counters.

    Each kernel runs as one task group pinned to its own CCX (batch jobs
    are conventionally pinned), issuing ``bursts_per_kernel`` back-to-back
    bursts; counters accumulate into ``counter_bank`` under the kernel's
    name.
    """
    sim = Simulator()
    memory = MemorySystemModel(machine, counter_sink=counter_bank)
    scheduler = CpuScheduler(sim, machine, perf_model=memory)
    streams = RandomStreams(seed)
    profiles = batch_kernel_profiles()

    for kernel_index, name in enumerate(KERNEL_NAMES):
        ccx = machine.ccxs[kernel_index % len(machine.ccxs)]
        affinity = machine.cpus_in_ccx(ccx.index)
        group = TaskGroup(name, affinity, profile=profiles[name],
                          home_node=ccx.node.index)
        memory.register(group, [ccx.index])
        sim.process(_kernel_driver(sim, scheduler, streams, group,
                                   bursts_per_kernel, burst_demand))
    sim.run()


def _kernel_driver(sim: Simulator, scheduler: CpuScheduler,
                   streams: RandomStreams, group: TaskGroup,
                   n_bursts: int, burst_demand: float) -> t.Generator:
    for __ in range(n_bursts):
        demand = streams.lognormal_mean_cv(
            f"kernel.{group.name}", burst_demand, 0.1)
        burst = CpuBurst(demand, group, sim.event())
        scheduler.submit(burst)
        yield burst.done
