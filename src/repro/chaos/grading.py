"""PASS/DEGRADED/FAIL verdicts for chaos scenarios.

The grader holds one measured scenario cell against its catalog
:class:`~repro.chaos.catalog.Expectation`:

* **FAIL** — the contract is broken: the blast radius escaped the
  allowed set, the cascade propagated deeper than permitted, the error
  rate or root-p99 inflation exceeded the hard ceiling, or an
  attributed victim never recovered inside the observed window.
* **DEGRADED** — within contract but visibly hurt: root p99 inflated
  past the pass ratio, or recovery took longer than the expectation's
  ``recover_within`` share of the measurement window.
* **PASS** — within contract and healthy.  The control scenario must
  additionally show an *empty* blast radius and no anomalies: a healthy
  run that degrades anything is a failed control, whatever the ratios.

Every verdict carries machine-checkable ``reasons`` so reports and CI
jobs can say *why* a scenario graded the way it did.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.chaos.cascade import CascadeReport
from repro.chaos.catalog import Scenario

#: Verdicts from best to worst.
GRADES = ("PASS", "DEGRADED", "FAIL")


@dataclasses.dataclass(frozen=True)
class GradeResult:
    """One scenario cell's verdict plus its reasons."""

    scenario: str
    grade: str
    #: Human-readable reasons, empty for a clean PASS.
    reasons: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form."""
        return {"scenario": self.scenario, "grade": self.grade,
                "reasons": list(self.reasons)}


def grade_scenario(scenario: Scenario, cascade: CascadeReport, *,
                   error_rate: float, window: float) -> GradeResult:
    """Grade one measured scenario cell against its expectation.

    ``error_rate`` is the run's request error rate and ``window`` the
    measurement duration in seconds (the base for the expectation's
    relative ``recover_within`` deadline).
    """
    expect = scenario.expectation
    failures: list[str] = []
    degradations: list[str] = []

    if error_rate > expect.max_error_rate:
        failures.append(
            f"error rate {error_rate:.3f} exceeds allowed "
            f"{expect.max_error_rate:.3f}")

    if scenario.bottleneck_class == "control" or not scenario.faults:
        # A healthy control must not degrade anything, anywhere.
        if cascade.blast_radius or cascade.anomalies:
            touched = tuple(sorted(set(cascade.blast_radius)
                                   | set(cascade.anomalies)))
            failures.append(
                f"control run degraded services {touched}")
        grade = "FAIL" if failures else "PASS"
        return GradeResult(scenario.name, grade, tuple(failures))

    escaped = sorted(set(cascade.blast_radius) - set(expect.allowed_blast))
    if escaped:
        failures.append(
            f"blast radius escaped the allowed set: {tuple(escaped)}")
    if cascade.propagation_depth > expect.max_depth:
        failures.append(
            f"cascade propagated {cascade.propagation_depth} hops "
            f"(allowed {expect.max_depth})")
    if cascade.root_p99_ratio > expect.fail_p99_ratio:
        failures.append(
            f"root p99 inflated {cascade.root_p99_ratio:.1f}x "
            f"(fail ceiling {expect.fail_p99_ratio:.1f}x)")
    if cascade.blast_radius and not cascade.recovered:
        unrecovered = tuple(impact.service for impact in cascade.impacts
                            if not impact.recovered)
        failures.append(
            f"services never recovered inside the window: {unrecovered}")
    if failures:
        return GradeResult(scenario.name, "FAIL", tuple(failures))

    if cascade.root_p99_ratio > expect.pass_p99_ratio:
        degradations.append(
            f"root p99 inflated {cascade.root_p99_ratio:.1f}x "
            f"(pass ceiling {expect.pass_p99_ratio:.1f}x)")
    deadline = expect.recover_within * window
    if cascade.blast_radius and cascade.time_to_recover_s > deadline:
        degradations.append(
            f"recovery took {cascade.time_to_recover_s:.3f}s "
            f"(deadline {deadline:.3f}s)")
    if degradations:
        return GradeResult(scenario.name, "DEGRADED", tuple(degradations))
    return GradeResult(scenario.name, "PASS")
