"""Chaos campaigns: scenario catalog, cascade analysis, graded verdicts.

The package grows :class:`~repro.workload.faults.FaultInjector` into a
campaign engine organized by the chaosprobe bottleneck taxonomy:

* :mod:`repro.chaos.catalog` — data-driven fault scenarios spanning the
  four bottleneck classes (execution saturation, critical-path
  contention, I/O contention, bandwidth saturation) plus a healthy
  control, each with an injection schedule, a target-selection policy,
  and an expected-blast-radius spec;
* :mod:`repro.chaos.cascade` — the analyzer that walks the columnar
  :class:`~repro.tracing.collector.SpanTable` to attribute
  victim-service latency back to the injected fault: blast radius,
  propagation depth along the observed call graph, time-to-recover;
* :mod:`repro.chaos.grading` — PASS/DEGRADED/FAIL verdicts per scenario
  against its expectation spec;
* :mod:`repro.chaos.campaign` — the runner executing catalog ×
  resilience-config grids through the orchestrator pool/cache
  (byte-identical at any ``--jobs``), registered as the ``chaos`` sweep
  provider behind the ``repro chaos`` CLI verb.
"""

from repro.chaos.campaign import (
    TITLE,
    execute_cell,
    run,
    run_sweep_point,
    sweep_points,
)
from repro.chaos.cascade import CascadeReport, ServiceImpact, analyze_cascade
from repro.chaos.catalog import (
    BOTTLENECK_CLASSES,
    Expectation,
    Scenario,
    builtin_catalog,
    scenario_by_name,
)
from repro.chaos.grading import GRADES, GradeResult, grade_scenario

__all__ = [
    "BOTTLENECK_CLASSES",
    "CascadeReport",
    "Expectation",
    "GRADES",
    "GradeResult",
    "Scenario",
    "ServiceImpact",
    "TITLE",
    "analyze_cascade",
    "builtin_catalog",
    "execute_cell",
    "grade_scenario",
    "run",
    "run_sweep_point",
    "scenario_by_name",
    "sweep_points",
]
