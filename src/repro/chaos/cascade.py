"""Cascade analysis: attribute victim latency to an injected fault.

Given the :class:`~repro.tracing.collector.SpanTable` of one measured
run and the fault window a scenario injected, :func:`analyze_cascade`
answers the three questions a chaos verdict needs:

* **blast radius** — which services' latency degraded while the fault
  was active, relative to their own pre-fault baseline in the same run;
* **propagation depth** — how far upstream of the fault target the
  degradation travelled along the *observed* call graph (the analyzer
  trusts only :meth:`SpanTable.service_edges`, never an assumed
  topology);
* **time-to-recover** — how long after the fault lifted each attributed
  service needed before its latency returned to baseline, and whether
  it recovered at all inside the observed window.

Everything is vectorized: phase assignment is three boolean masks over
the ``created`` column, per-service means are ``np.bincount`` sweeps
over interned service codes, and recovery detection bins the post-fault
phase into per-``(service, bin)`` means with one flattened bincount —
no per-span Python loops, so a million-span table analyzes in
milliseconds.

Attribution is *by construction* limited to the fault's upstream
closure: a service whose requests never transit the target cannot have
been degraded by the fault, so it is reported under ``anomalies``
(something else happened) rather than inside the blast radius.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro._errors import AnalysisError
from repro.workload.faults import FABRIC

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.collector import SpanTable


@dataclasses.dataclass(frozen=True)
class ServiceImpact:
    """One attributed victim service's degradation and recovery."""

    service: str
    #: Hops upstream from the fault target along observed call edges
    #: (the target itself is 1; fabric faults touch every hop directly,
    #: so every victim of a fabric fault has depth 1).
    depth: int
    pre_mean_ms: float
    during_mean_ms: float
    #: during/pre mean-latency ratio.
    ratio: float
    recovered: bool
    #: Seconds after the fault lifted until latency sustainedly returned
    #: to baseline (the observed post-window length when it never did).
    recovery_s: float

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form."""
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class CascadeReport:
    """The full cascade attribution for one scenario run."""

    #: The fault's concrete target (service name, or ``*`` for fabric).
    target: str
    #: Attributed victims (inside the upstream closure), by depth then
    #: name.
    impacts: tuple[ServiceImpact, ...]
    #: Attributed victim service names, sorted.
    blast_radius: tuple[str, ...]
    #: Degraded services *outside* the fault's upstream closure — real
    #: degradation the fault cannot explain.
    anomalies: tuple[str, ...]
    #: Max attributed depth (0 when the blast radius is empty).
    propagation_depth: int
    #: Max attributed recovery time (0.0 when the blast radius is empty).
    time_to_recover_s: float
    #: True when every attributed victim recovered inside the window.
    recovered: bool
    #: Root-span p99 during/pre ratio (1.0 when either phase is empty).
    root_p99_ratio: float
    #: Total spans analyzed.
    spans: int

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form (report and grader input)."""
        return {
            "target": self.target,
            "impacts": [impact.to_dict() for impact in self.impacts],
            "blast_radius": list(self.blast_radius),
            "anomalies": list(self.anomalies),
            "propagation_depth": self.propagation_depth,
            "time_to_recover_s": self.time_to_recover_s,
            "recovered": self.recovered,
            "root_p99_ratio": self.root_p99_ratio,
            "spans": self.spans,
        }


def _empty_report(target: str, spans: int) -> CascadeReport:
    return CascadeReport(target=target, impacts=(), blast_radius=(),
                         anomalies=(), propagation_depth=0,
                         time_to_recover_s=0.0, recovered=True,
                         root_p99_ratio=1.0, spans=spans)


def _phase_means(codes: np.ndarray, latency: np.ndarray,
                 mask: np.ndarray, n_services: int
                 ) -> tuple[np.ndarray, np.ndarray]:
    """(counts, means) per service code over one phase mask."""
    counts = np.bincount(codes[mask], minlength=n_services)
    sums = np.bincount(codes[mask], weights=latency[mask],
                       minlength=n_services)
    means = np.divide(sums, counts,
                      out=np.zeros(n_services), where=counts > 0)
    return counts, means


def _upstream_depths(table: "SpanTable", target: str
                     ) -> dict[int, int]:
    """Service code → hops upstream of ``target`` over observed edges.

    The target is depth 1; a fabric target puts every observed service
    at depth 1 (the fault sits on every hop).  An unobserved target
    yields an empty closure: nothing can be attributed to a fault on a
    service that never served a traced request.
    """
    if target == FABRIC:
        codes = np.unique(table.service_code.as_array())
        return {int(code): 1 for code in codes}
    target_code = table.services.code_if_known(target)
    if target_code is None:
        return {}
    callers_of: dict[int, list[int]] = {}
    for caller, callee in table.service_edges():
        callers_of.setdefault(callee, []).append(caller)
    depths = {int(target_code): 1}
    frontier = [int(target_code)]
    while frontier:
        code = frontier.pop(0)
        for caller in callers_of.get(code, ()):
            if caller not in depths:
                depths[caller] = depths[code] + 1
                frontier.append(caller)
    return depths


def _root_p99_ratio(table: "SpanTable", latency: np.ndarray,
                    pre_mask: np.ndarray,
                    during_mask: np.ndarray) -> float:
    roots = table.parent_id.as_array() < 0
    pre = latency[roots & pre_mask]
    during = latency[roots & during_mask]
    if len(pre) == 0 or len(during) == 0:
        return 1.0
    p99_pre = float(np.percentile(pre, 99))
    if p99_pre <= 0:
        return 1.0
    return float(np.percentile(during, 99)) / p99_pre


def analyze_cascade(table: "SpanTable", *,
                    target: str,
                    window_start: float,
                    window_end: float,
                    fault_start: float | None = None,
                    fault_end: float | None = None,
                    degraded_ratio: float = 1.5,
                    min_abs_s: float = 1e-3,
                    recover_ratio: float = 1.25,
                    recovery_bins: int = 12) -> CascadeReport:
    """Attribute per-service degradation in ``table`` to one fault window.

    Spans are phased by *issue* time (``created``): pre-fault spans in
    ``[window_start, fault_start)`` give each service its own baseline,
    spans in ``[fault_start, fault_end)`` are the fault phase, and spans
    in ``[fault_end, window_end]`` drive recovery detection.  A service
    is **degraded** when its fault-phase mean latency exceeds
    ``max(baseline * degraded_ratio, baseline + min_abs_s)`` — the
    absolute floor keeps microsecond-scale baselines from flagging
    noise.  Degraded services inside the target's upstream closure form
    the blast radius; the rest are anomalies.

    Recovery bins the post phase into ``recovery_bins`` equal slices and
    finds, per attributed service, the earliest bin from which every
    later non-empty bin stays at or below
    ``max(baseline * recover_ratio, baseline + min_abs_s)`` — a
    *sustained* return to baseline, immune to one lucky bin mid-storm.
    A scenario whose fault window runs to the end of the measurement
    window has no post phase, so its victims count as not recovered.

    Passing no fault window (the healthy control) yields the empty
    report: no blast, depth 0, recovered.
    """
    if window_end <= window_start:
        raise AnalysisError(
            f"need window_end > window_start "
            f"(got {window_start}, {window_end})")
    if (fault_start is None) != (fault_end is None):
        raise AnalysisError(
            "fault_start and fault_end must be given together")
    spans = len(table)
    if fault_start is None or spans == 0:
        return _empty_report(target, spans)
    if t.cast(float, fault_end) <= fault_start:
        raise AnalysisError(
            f"need fault_end > fault_start "
            f"(got {fault_start}, {fault_end})")
    fault_end = t.cast(float, fault_end)

    codes = table.service_code.as_array().astype(np.int64)
    created = table.created.as_array()
    latency = table.completed.as_array() - created
    n_services = len(table.services.names)

    pre_mask = (created >= window_start) & (created < fault_start)
    during_mask = (created >= fault_start) & (created < fault_end)
    post_mask = (created >= fault_end) & (created <= window_end)

    pre_cnt, pre_mean = _phase_means(codes, latency, pre_mask, n_services)
    during_cnt, during_mean = _phase_means(codes, latency, during_mask,
                                           n_services)
    degraded_floor = np.maximum(pre_mean * degraded_ratio,
                                pre_mean + min_abs_s)
    degraded = (pre_cnt > 0) & (during_cnt > 0) \
        & (during_mean >= degraded_floor)

    depths = _upstream_depths(table, target)
    degraded_codes = [int(code) for code in np.flatnonzero(degraded)]
    attributed_codes = [c for c in degraded_codes if c in depths]
    anomalies = tuple(sorted(table.services.decode(c)
                             for c in degraded_codes if c not in depths))

    # ------------------------------------------------------------------
    # Recovery: per-(service, bin) means over the post phase in one
    # flattened bincount.
    # ------------------------------------------------------------------
    post_len = window_end - fault_end
    recovered_of: dict[int, bool] = {}
    recovery_of: dict[int, float] = {}
    if attributed_codes and post_len > 0:
        bin_width = post_len / recovery_bins
        post_rows = np.flatnonzero(post_mask)
        bin_idx = np.minimum(
            ((created[post_rows] - fault_end) / bin_width).astype(np.int64),
            recovery_bins - 1)
        keys = codes[post_rows] * recovery_bins + bin_idx
        size = n_services * recovery_bins
        bin_cnt = np.bincount(keys, minlength=size)
        bin_sum = np.bincount(keys, weights=latency[post_rows],
                              minlength=size)
        bin_mean = np.divide(bin_sum, bin_cnt,
                             out=np.zeros(size), where=bin_cnt > 0)
        recover_floor = np.maximum(pre_mean * recover_ratio,
                                   pre_mean + min_abs_s)
        for code in attributed_codes:
            cnt = bin_cnt[code * recovery_bins:(code + 1) * recovery_bins]
            mean = bin_mean[code * recovery_bins:(code + 1) * recovery_bins]
            bad = (cnt > 0) & (mean > recover_floor[code])
            if not bad.any():
                recovered_of[code] = True
                recovery_of[code] = 0.0
                continue
            first_ok = int(np.flatnonzero(bad)[-1]) + 1
            if first_ok >= recovery_bins:
                recovered_of[code] = False
                recovery_of[code] = post_len
            else:
                recovered_of[code] = True
                recovery_of[code] = first_ok * bin_width
    else:
        # Fault ran to the window's edge: no post phase to prove
        # recovery in, so every victim counts as unrecovered.
        for code in attributed_codes:
            recovered_of[code] = False
            recovery_of[code] = max(post_len, 0.0)

    impacts = tuple(sorted(
        (ServiceImpact(
            service=table.services.decode(code),
            depth=int(depths[code]),
            pre_mean_ms=float(pre_mean[code] * 1e3),
            during_mean_ms=float(during_mean[code] * 1e3),
            ratio=float(during_mean[code] / pre_mean[code])
            if pre_mean[code] > 0 else float(during_mean[code] > 0),
            recovered=bool(recovered_of[code]),
            recovery_s=float(recovery_of[code]))
         for code in attributed_codes),
        key=lambda impact: (impact.depth, impact.service)))

    return CascadeReport(
        target=target,
        impacts=impacts,
        blast_radius=tuple(sorted(impact.service for impact in impacts)),
        anomalies=anomalies,
        propagation_depth=max((impact.depth for impact in impacts),
                              default=0),
        time_to_recover_s=max((impact.recovery_s for impact in impacts),
                              default=0.0),
        recovered=all(impact.recovered for impact in impacts),
        root_p99_ratio=float(
            _root_p99_ratio(table, latency, pre_mask, during_mask)),
        spans=spans)
