"""Chaos campaign runner: catalog × resilience grids through the sweeps.

One campaign **cell** is (scenario, resilience mode): deploy the active
application (``settings.app``; TeaStore by default) with the mode's
:func:`~repro.services.resilience.resilience_preset`, inject the
scenario's schedule, measure one warmup/measure window with the app's
default session load, and — for chaos cells — trace the measurement
window so the :mod:`~repro.chaos.cascade` analyzer can attribute the
damage and the :mod:`~repro.chaos.grading` grader can pass verdict.

:func:`execute_cell` is *the* cell implementation: experiment E13 wraps
it with ``trace=False`` (its historical payloads carry no cascade, and
skipping the tracer keeps its perf profile), while campaign cells run it
with ``trace=True``.  Both paths drive the identical deployment /
injector / workload sequence, so a campaign cell and an E13 cell with
the same schedule and seed produce byte-identical metrics.

Cells are registered as the ``chaos`` sweep provider, so campaigns run
through the ordinary orchestrator pool and cache: scenario definitions
travel *inside* each sweep point's parameters (JSON-native
:meth:`~repro.chaos.catalog.Scenario.to_dict` form), making points
self-contained, picklable, and cacheable — and results byte-identical
at any ``--jobs``.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.chaos.cascade import (
    CascadeReport,
    ServiceImpact,
    analyze_cascade,
)
from repro.chaos.catalog import Scenario, builtin_catalog, scenario_by_name
from repro.chaos.grading import GradeResult, grade_scenario
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    build_application,
)
from repro.orchestrator import plan
from repro.services.deployment import Deployment
from repro.services.resilience import (
    RESILIENCE_MODES,
    ResilienceConfig,
    resilience_preset,
)
from repro.tracing.collector import TraceCollector
from repro.workload.cohorts import closed_workload
from repro.workload.faults import FaultInjector
from repro.workload.runner import RunResult, run_experiment

TITLE = "Chaos campaign: bottleneck scenarios x resilience grid"

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.apps.spec import ApplicationSpec


def _active_app(settings: ExperimentSettings) -> "ApplicationSpec | None":
    """The spec catalog/targets resolve against (``None`` = TeaStore).

    TeaStore maps to ``None`` so the default path reuses the cached
    default spec and stays byte-identical to the pre-``--app`` runner.
    """
    return None if settings.app == "teastore" else settings.application()


@dataclasses.dataclass
class CellOutcome:
    """Everything one executed campaign cell exposes for analysis."""

    result: RunResult
    injector: FaultInjector
    deployment: Deployment
    #: Spans of the measurement window (None when ``trace`` was off).
    tracer: TraceCollector | None


def execute_cell(settings: ExperimentSettings,
                 schedule: t.Sequence[t.Mapping[str, t.Any]],
                 resilience: ResilienceConfig | None,
                 *, trace: bool = False) -> CellOutcome:
    """Deploy, inject, and measure one fault × resilience cell.

    With ``trace`` a :class:`TraceCollector` is attached between warmup
    and measurement (via :func:`run_experiment`'s ``on_measure_start``
    hook), so it sees exactly the measurement window.  Tracing reads
    completed requests only — it draws no random numbers and schedules
    no events — so traced and untraced cells stay byte-identical on
    every metric.
    """
    deployment = Deployment(settings.machine(), seed=settings.seed,
                            memory_config=settings.memory_config,
                            resilience=resilience)
    store = build_application(settings, deployment)
    injector = FaultInjector(deployment)
    injector.apply(schedule)
    workload = closed_workload(
        deployment, store.session_factory(),
        n_users=settings.users, think_time=settings.think_time,
        cohort_factor=settings.cohort_factor)

    tracer = TraceCollector() if trace else None

    def attach_tracer() -> None:
        deployment.tracer = tracer

    result = run_experiment(
        deployment, workload,
        warmup=settings.warmup, duration=settings.duration,
        on_measure_start=attach_tracer if trace else None)
    return CellOutcome(result=result, injector=injector,
                       deployment=deployment, tracer=tracer)


def fault_window(scenario: Scenario, settings: ExperimentSettings,
                 app: "ApplicationSpec | None" = None
                 ) -> tuple[float, float] | None:
    """The [start, end] envelope of a scenario's faults in sim time.

    The envelope spans from the earliest injection to the latest lift:
    a windowed fault lifts after its ``duration``, a kill "lifts" when
    its replacement registers (``restore_after``), and an open-ended
    fault stays active until the measurement window closes.  The end is
    clipped to the window so recovery analysis never reaches past the
    observed data.  ``None`` for a fault-free scenario.
    """
    schedule = scenario.schedule(settings, app)
    if not schedule:
        return None
    window_end = settings.warmup + settings.duration
    starts = []
    ends = []
    for entry in schedule:
        start = float(entry["time"])
        if "duration" in entry:
            end = start + float(entry["duration"])
        elif "restore_after" in entry:
            end = start + float(entry["restore_after"])
        else:
            end = window_end
        starts.append(start)
        ends.append(end)
    return min(starts), min(max(ends), window_end)


def run_cell(settings: ExperimentSettings, scenario: Scenario,
             mode: str) -> plan.Payload:
    """Execute one (scenario, mode) cell and fold in cascade + grade."""
    app = _active_app(settings)
    target = scenario.target_for(app)
    schedule = scenario.schedule(settings, app)
    outcome = execute_cell(settings, schedule,
                           resilience_preset(mode), trace=True)
    result = outcome.result
    window = fault_window(scenario, settings, app)
    tracer = t.cast(TraceCollector, outcome.tracer)
    cascade = analyze_cascade(
        tracer.table,
        target=target,
        window_start=settings.warmup,
        window_end=settings.warmup + settings.duration,
        fault_start=None if window is None else window[0],
        fault_end=None if window is None else window[1])
    served = result.completed + result.errors
    error_rate = (result.errors / served) if served else 0.0
    grade = grade_scenario(scenario, cascade,
                           error_rate=error_rate,
                           window=settings.duration)
    stats = outcome.deployment.resilience_stats
    return {
        "scenario": scenario.name,
        "bottleneck_class": scenario.bottleneck_class,
        "target": target,
        "resilience": mode,
        "throughput_rps": result.throughput,
        "p99_ms": result.latency_p99 * 1e3,
        "error_rate": error_rate,
        "degraded": stats.degraded,
        "retry_amplification": stats.retry_amplification(),
        "timeouts": stats.timeouts,
        "breaker_opens": sum(b.opened_count
                             for b in outcome.deployment.breakers),
        "faults": len(outcome.injector.events),
        "cascade": cascade.to_dict(),
        "grade": grade.to_dict(),
    }


# ----------------------------------------------------------------------
# Sweep provider (runs campaigns through the orchestrator pool/cache)
# ----------------------------------------------------------------------
def sweep_points(settings: ExperimentSettings,
                 scenarios: t.Sequence[Scenario] | None = None,
                 modes: t.Sequence[str] | None = None
                 ) -> list[plan.SweepPoint]:
    """One point per (scenario, mode) cell; builtin catalog × all modes
    by default.

    The scenario's full JSON-native definition rides inside the point's
    parameters, so custom catalogs flow through the pool and cache
    exactly like the builtin one.  The default catalog is derived
    against the active application, so its role bindings are validated
    eagerly, before any cell runs.
    """
    if scenarios is None:
        scenarios = builtin_catalog(_active_app(settings))
    modes = RESILIENCE_MODES if modes is None else modes
    points = []
    index = 0
    for scenario in scenarios:
        for mode in modes:
            points.append(plan.SweepPoint(
                "chaos", index, scenario.name,
                f"{scenario.name}/{mode}", settings,
                params=(("resilience", mode),
                        ("scenario", scenario.to_dict()))))
            index += 1
    return points


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Execute one campaign cell from its self-contained point."""
    scenario = Scenario.from_dict(point.param("scenario"))
    return run_cell(point.settings, scenario, point.param("resilience"))


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Fold campaign cells into the graded table plus the verdict rollup."""
    rows: list[Row] = []
    for payload in payloads:
        cascade = t.cast(dict, payload["cascade"])
        grade = t.cast(dict, payload["grade"])
        blast = t.cast(list, cascade["blast_radius"])
        rows.append({
            "scenario": payload["scenario"],
            "class": payload["bottleneck_class"],
            "resilience": payload["resilience"],
            "grade": grade["grade"],
            "blast": "+".join(blast) if blast else "-",
            "depth": cascade["propagation_depth"],
            "ttr_s": cascade["time_to_recover_s"],
            "p99_ms": payload["p99_ms"],
            "error_pct": 100.0 * t.cast(float, payload["error_rate"]),
            "throughput_rps": payload["throughput_rps"],
        })
    notes = []
    tally = {grade: 0 for grade in ("PASS", "DEGRADED", "FAIL")}
    for payload in payloads:
        tally[t.cast(dict, payload["grade"])["grade"]] += 1
    notes.append(
        f"verdicts: {tally['PASS']} PASS, {tally['DEGRADED']} DEGRADED, "
        f"{tally['FAIL']} FAIL over {len(payloads)} cells")
    for payload in payloads:
        grade = t.cast(dict, payload["grade"])
        for reason in grade["reasons"]:
            notes.append(f"{payload['scenario']}/{payload['resilience']} "
                         f"{grade['grade']}: {reason}")
    anomalies = sorted({
        service
        for payload in payloads
        for service in t.cast(dict, payload["cascade"])["anomalies"]})
    if anomalies:
        notes.append(f"unattributed degradation observed in: "
                     f"{', '.join(anomalies)}")
    return ExperimentResult("CHAOS", TITLE, rows, notes=notes)


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """The full builtin campaign, sequentially (golden-digest entry)."""
    settings = settings or ExperimentSettings.fast()
    points = sweep_points(settings)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def campaign_points(settings: ExperimentSettings,
                    scenario_names: t.Sequence[str] | None = None,
                    modes: t.Sequence[str] | None = None
                    ) -> list[plan.SweepPoint]:
    """Points for a named subset of the builtin catalog (CLI path)."""
    if scenario_names is None:
        scenarios = None
    else:
        catalog = builtin_catalog(_active_app(settings))
        scenarios = [scenario_by_name(name, catalog)
                     for name in scenario_names]
    return sweep_points(settings, scenarios, modes)


def grades_from_payloads(payloads: t.Sequence[plan.Payload]
                         ) -> list[GradeResult]:
    """The per-cell verdicts carried inside campaign payloads."""
    return [GradeResult(scenario=t.cast(dict, p["grade"])["scenario"],
                        grade=t.cast(dict, p["grade"])["grade"],
                        reasons=tuple(t.cast(dict, p["grade"])["reasons"]))
            for p in payloads]


def cascades_from_payloads(payloads: t.Sequence[plan.Payload]
                           ) -> list[CascadeReport]:
    """Rebuilt cascade reports from campaign payloads (for tooling)."""
    reports = []
    for payload in payloads:
        data = t.cast(dict, payload["cascade"])
        reports.append(CascadeReport(
            target=data["target"],
            impacts=tuple(ServiceImpact(**impact)
                          for impact in data["impacts"]),
            blast_radius=tuple(data["blast_radius"]),
            anomalies=tuple(data["anomalies"]),
            propagation_depth=int(data["propagation_depth"]),
            time_to_recover_s=float(data["time_to_recover_s"]),
            recovered=bool(data["recovered"]),
            root_p99_ratio=float(data["root_p99_ratio"]),
            spans=int(data["spans"])))
    return reports


plan.register_sweep("chaos", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
