"""Data-driven chaos scenario catalog over the bottleneck taxonomy.

A :class:`Scenario` bundles the three things a chaos experiment needs:

* an **injection schedule** — fault entries with times expressed as
  *fractions of the measurement window* (``at`` / ``for``), so the same
  scenario scales from ``--fast`` to paper-scale settings exactly like
  E13's schedules do;
* a **target-selection policy** — a small vocabulary (``orchestrator``,
  ``hottest``, ``storage``, ``fabric``, ``service:<name>``) resolved
  against the active application's spec (TeaStore by default), so
  scenarios name *roles* rather than hard-coding service names;
* an **expected-blast-radius spec** (:class:`Expectation`) — which
  services are allowed to degrade, how deep the cascade may propagate,
  and the error/tail/recovery thresholds the grader enforces.

Scenarios are JSON-native via :meth:`Scenario.to_dict` /
:meth:`Scenario.from_dict`, so the campaign runner can embed them in
sweep-point parameters and the orchestrator cache treats them like any
other setting.  The builtin catalog covers one scenario per bottleneck
class (chaosprobe's taxonomy) plus a healthy control:

========================  ==========================  =================
scenario                  bottleneck class            fault
========================  ==========================  =================
``control``               control                     none
``cpu-hog``               execution-saturation        hog on ``hottest``
``kill-orchestrator``     critical-path-contention    kill ``orchestrator``
``db-io``                 io-contention               slow on ``storage``
``net-saturation``        bandwidth-saturation        fabric netdelay
========================  ==========================  =================
"""

from __future__ import annotations

import dataclasses
import functools
import typing as t

from repro._errors import ConfigurationError
from repro.workload.faults import FABRIC, FAULT_KINDS

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.apps.spec import ApplicationSpec
    from repro.experiments.common import ExperimentSettings

#: Bottleneck classes, after chaosprobe's taxonomy, plus the healthy
#: control.  Catalog order follows this order.
BOTTLENECK_CLASSES = (
    "control",
    "execution-saturation",
    "critical-path-contention",
    "io-contention",
    "bandwidth-saturation",
)


@functools.lru_cache(maxsize=1)
def _default_app() -> "ApplicationSpec":
    """TeaStore: the application scenarios resolve against by default."""
    from repro.apps.teastore_app import teastore_app
    return teastore_app()


def call_graph(app: "ApplicationSpec | None" = None
               ) -> dict[str, tuple[str, ...]]:
    """The active application's call graph (caller → callees).

    Target policies and default blast expectations are derived from
    this; the cascade analyzer itself trusts only the edges it
    *observes* in the trace.
    """
    return (app or _default_app()).call_graph()


def target_policies(app: "ApplicationSpec | None" = None
                    ) -> dict[str, str]:
    """Role-based target policies → concrete service for ``app``.

    The three service roles come from the application spec's
    ``chaos_targets`` binding; ``fabric`` maps to the wildcard the
    injector uses for fabric-wide faults.
    """
    spec = app or _default_app()
    return {
        "orchestrator": spec.chaos_targets["orchestrator"],
        "hottest": spec.chaos_targets["hottest"],
        "storage": spec.chaos_targets["storage"],
        "fabric": FABRIC,
    }


#: The TeaStore call graph and role bindings — the defaults every
#: un-parameterized resolution uses (kept as module constants for
#: backward compatibility; derived from the spec, not hand-written).
CALL_GRAPH: dict[str, tuple[str, ...]] = call_graph()
TARGET_POLICIES: dict[str, str] = target_policies()


def resolve_target(policy: str,
                   app: "ApplicationSpec | None" = None) -> str:
    """Resolve a target policy to a service name (or :data:`FABRIC`).

    Accepts the role vocabulary in :func:`target_policies` or an
    explicit ``service:<name>`` escape hatch, both resolved against
    ``app`` (TeaStore when ``None``).
    """
    policies = target_policies(app)
    if policy in policies:
        return policies[policy]
    if policy.startswith("service:"):
        name = policy[len("service:"):]
        graph = call_graph(app)
        if name not in graph:
            raise ConfigurationError(
                f"unknown service {name!r} in target policy {policy!r}; "
                f"choose from {tuple(sorted(graph))}")
        return name
    raise ConfigurationError(
        f"unknown target policy {policy!r}; choose from "
        f"{tuple(sorted(policies))} or 'service:<name>'")


def upstream_closure(target: str,
                     graph: t.Mapping[str, t.Sequence[str]] | None = None,
                     app: "ApplicationSpec | None" = None
                     ) -> frozenset[str]:
    """Services whose requests transit ``target``: it plus its callers.

    This is the maximal blast radius a fault on ``target`` can have —
    degradation anywhere else cannot be attributed to the fault.  The
    fabric wildcard closes over every service.
    """
    graph = call_graph(app) if graph is None else graph
    if target == FABRIC:
        return frozenset(graph)
    closure = {target}
    # Reverse-BFS: repeatedly absorb any caller of a member.
    changed = True
    while changed:
        changed = False
        for caller, callees in graph.items():
            if caller not in closure and closure & set(callees):
                closure.add(caller)
                changed = True
    return frozenset(closure)


@dataclasses.dataclass(frozen=True)
class Expectation:
    """The graded contract one scenario is held to.

    All thresholds are ratios against the scenario's own healthy
    baseline phase (pre-fault spans of the same run), so expectations
    transfer across scale presets without retuning.
    """

    #: Services permitted to show degraded latency during the fault.
    allowed_blast: tuple[str, ...] = ()
    #: Maximum attributed propagation depth (hops upstream from the
    #: fault target along observed call edges; target itself is 1).
    max_depth: int = 0
    #: Maximum tolerated request error rate over the window.
    max_error_rate: float = 0.0
    #: Root p99 (during/pre ratio) above which the grade is DEGRADED.
    pass_p99_ratio: float = 1.5
    #: Root p99 ratio above which the grade is FAIL.
    fail_p99_ratio: float = 10.0
    #: Fraction of the measurement window within which attributed
    #: services must recover after the fault lifts (grade DEGRADED past
    #: it, FAIL only when they never recover).
    recover_within: float = 0.5

    def __post_init__(self) -> None:
        if self.max_depth < 0:
            raise ConfigurationError(
                f"max_depth must be >= 0: {self.max_depth}")
        if not 0.0 <= self.max_error_rate <= 1.0:
            raise ConfigurationError(
                f"max_error_rate must be in [0, 1]: {self.max_error_rate}")
        if self.pass_p99_ratio < 1.0:
            raise ConfigurationError(
                f"pass_p99_ratio must be >= 1: {self.pass_p99_ratio}")
        if self.fail_p99_ratio < self.pass_p99_ratio:
            raise ConfigurationError(
                f"fail_p99_ratio ({self.fail_p99_ratio}) must be >= "
                f"pass_p99_ratio ({self.pass_p99_ratio})")
        if not 0.0 < self.recover_within <= 1.0:
            raise ConfigurationError(
                f"recover_within must be in (0, 1]: {self.recover_within}")

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form."""
        data = dataclasses.asdict(self)
        data["allowed_blast"] = list(self.allowed_blast)
        return data

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "Expectation":
        """Inverse of :meth:`to_dict`."""
        fields = dict(data)
        fields["allowed_blast"] = tuple(fields.get("allowed_blast", ()))
        return cls(**fields)


#: Keys every relative fault entry may carry, per kind.
_RELATIVE_KEYS: dict[str, frozenset[str]] = {
    "kill": frozenset({"kind", "at", "replica", "restore_for"}),
    "slow": frozenset({"kind", "at", "for", "replica", "factor"}),
    "pause": frozenset({"kind", "at", "for", "replica"}),
    "hog": frozenset({"kind", "at", "for", "replica", "intensity",
                      "workers"}),
    "netdelay": frozenset({"kind", "at", "for", "factor"}),
}


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One chaos scenario: schedule + target policy + expectation."""

    #: Stable identifier (CLI and report key).
    name: str
    #: One of :data:`BOTTLENECK_CLASSES`.
    bottleneck_class: str
    #: Target-selection policy (see :func:`resolve_target`).
    target: str
    #: Relative fault entries: ``at``/``for``/``restore_for`` are
    #: fractions of the measurement window; other keys pass through to
    #: :meth:`~repro.workload.faults.FaultInjector.apply`.
    faults: tuple[t.Mapping[str, t.Any], ...]
    #: The graded contract for this scenario.
    expectation: Expectation
    #: One-line human description for ``--list-scenarios``.
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario name must be non-empty")
        if self.bottleneck_class not in BOTTLENECK_CLASSES:
            raise ConfigurationError(
                f"unknown bottleneck class {self.bottleneck_class!r}; "
                f"choose from {BOTTLENECK_CLASSES}")
        # Validate the policy *syntax* eagerly; the concrete service is
        # resolved against the active application at catalog load /
        # schedule time (scenarios are application-portable).
        if self.target not in TARGET_POLICIES and not (
                self.target.startswith("service:")
                and self.target[len("service:"):]):
            raise ConfigurationError(
                f"unknown target policy {self.target!r}; choose from "
                f"{tuple(sorted(TARGET_POLICIES))} or 'service:<name>'")
        for fault in self.faults:
            kind = fault.get("kind")
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"scenario {self.name!r}: unknown fault kind "
                    f"{kind!r}; choose from {FAULT_KINDS}")
            unknown = set(fault) - _RELATIVE_KEYS[kind]
            if unknown:
                raise ConfigurationError(
                    f"scenario {self.name!r}: fault kind {kind!r} does "
                    f"not accept keys {tuple(sorted(unknown))}")
            at = float(fault.get("at", 0.0))
            if not 0.0 <= at < 1.0:
                raise ConfigurationError(
                    f"scenario {self.name!r}: fault 'at' must be in "
                    f"[0, 1): {at}")
            for key in ("for", "restore_for"):
                if key in fault and not 0.0 < float(fault[key]) <= 1.0:
                    raise ConfigurationError(
                        f"scenario {self.name!r}: fault {key!r} must be "
                        f"in (0, 1]: {fault[key]}")

    @property
    def target_service(self) -> str:
        """The resolved concrete target (service name or fabric)."""
        return resolve_target(self.target)

    def target_for(self, app: "ApplicationSpec | None" = None) -> str:
        """The concrete target under ``app`` (TeaStore when ``None``)."""
        return resolve_target(self.target, app)

    def schedule(self, settings: "ExperimentSettings",
                 app: "ApplicationSpec | None" = None
                 ) -> list[dict[str, t.Any]]:
        """Resolve relative fault entries to an absolute injector schedule.

        ``at`` fractions anchor to the start of the measurement window
        (``settings.warmup``); ``for`` / ``restore_for`` fractions scale
        by the window length.  The target policy resolves against
        ``app`` (TeaStore when ``None``).
        """
        window = settings.duration
        service = self.target_for(app)
        schedule: list[dict[str, t.Any]] = []
        for fault in self.faults:
            kind = str(fault["kind"])
            entry: dict[str, t.Any] = {
                "kind": kind,
                "time": settings.warmup + float(fault.get("at", 0.0)) * window,
            }
            if kind != "netdelay":
                entry["service"] = service
                entry["replica"] = int(fault.get("replica", 0))
            if "for" in fault:
                entry["duration"] = float(fault["for"]) * window
            if "restore_for" in fault:
                entry["restore_after"] = float(fault["restore_for"]) * window
            for key in ("factor", "intensity", "workers"):
                if key in fault:
                    entry[key] = fault[key]
            schedule.append(entry)
        return schedule

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form (sweep-point parameter shape)."""
        return {
            "name": self.name,
            "bottleneck_class": self.bottleneck_class,
            "target": self.target,
            "faults": [dict(fault) for fault in self.faults],
            "expectation": self.expectation.to_dict(),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "Scenario":
        """Inverse of :meth:`to_dict` (validates on construction)."""
        return cls(
            name=str(data["name"]),
            bottleneck_class=str(data["bottleneck_class"]),
            target=str(data["target"]),
            faults=tuple(dict(fault) for fault in data.get("faults", ())),
            expectation=Expectation.from_dict(data.get("expectation", {})),
            description=str(data.get("description", "")),
        )


def _caller_chain_depth(service: str,
                        graph: t.Mapping[str, t.Sequence[str]]) -> int:
    """Longest caller chain ending at ``service``, counting it (>= 1).

    This is the deepest a fault on ``service`` can propagate upstream
    along real call edges — the derived ``max_depth`` contract.
    """
    callers = {name: tuple(caller for caller, callees in graph.items()
                           if name in callees)
               for name in graph}

    def depth(name: str, seen: frozenset[str]) -> int:
        upstream = [depth(caller, seen | {name})
                    for caller in callers.get(name, ())
                    if caller not in seen]
        return 1 + (max(upstream) if upstream else 0)

    return depth(service, frozenset())


def _graph_depth(graph: t.Mapping[str, t.Sequence[str]]) -> int:
    """The longest call chain anywhere in the graph (services counted)."""

    def depth(name: str, seen: frozenset[str]) -> int:
        downstream = [depth(callee, seen | {name})
                      for callee in graph.get(name, ())
                      if callee not in seen]
        return 1 + (max(downstream) if downstream else 0)

    return max(depth(name, frozenset()) for name in graph)


def builtin_catalog(app: "ApplicationSpec | None" = None
                    ) -> tuple[Scenario, ...]:
    """The builtin catalog: one scenario per bottleneck class + control.

    Blast radii and propagation depths are derived from ``app``'s call
    graph (TeaStore when ``None``), resolved eagerly — an application
    whose role bindings or graph are broken fails here, at catalog
    load, not mid-campaign.  For TeaStore the derivation reproduces the
    original hand-written expectations byte for byte.
    """
    spec = app or _default_app()
    graph = call_graph(spec)

    def derived(policy: str) -> tuple[tuple[str, ...], int]:
        service = resolve_target(policy, spec)
        blast = tuple(sorted(upstream_closure(service, graph)))
        if service == FABRIC:
            return blast, _graph_depth(graph) + 1
        return blast, _caller_chain_depth(service, graph)

    hottest_blast, hottest_depth = derived("hottest")
    orch_blast, orch_depth = derived("orchestrator")
    storage_blast, storage_depth = derived("storage")
    fabric_blast, fabric_depth = derived("fabric")
    return (
        Scenario(
            name="control",
            bottleneck_class="control",
            target="orchestrator",
            faults=(),
            expectation=Expectation(
                allowed_blast=(), max_depth=0, max_error_rate=0.0,
                pass_p99_ratio=1.5, fail_p99_ratio=10.0,
                recover_within=1.0),
            description="healthy baseline; must grade PASS with an "
                        "empty blast radius"),
        Scenario(
            name="cpu-hog",
            bottleneck_class="execution-saturation",
            target="hottest",
            faults=(
                {"kind": "hog", "at": 0.15, "for": 0.50,
                 "workers": 2, "intensity": 1.0},),
            expectation=Expectation(
                allowed_blast=hottest_blast,
                max_depth=hottest_depth, max_error_rate=0.05,
                pass_p99_ratio=1.5, fail_p99_ratio=25.0,
                recover_within=0.5),
            description="background CPU hogs saturate the hottest "
                        "service's replica (pod-cpu-hog analog)"),
        Scenario(
            name="kill-orchestrator",
            bottleneck_class="critical-path-contention",
            target="orchestrator",
            faults=(
                {"kind": "kill", "at": 0.15, "restore_for": 0.40},),
            expectation=Expectation(
                allowed_blast=orch_blast,
                max_depth=orch_depth, max_error_rate=0.60,
                pass_p99_ratio=1.5, fail_p99_ratio=50.0,
                recover_within=0.6),
            description="kill one replica of the orchestrating entry "
                        "service mid-window, restore it later"),
        Scenario(
            name="db-io",
            bottleneck_class="io-contention",
            target="storage",
            faults=(
                {"kind": "slow", "at": 0.10, "for": 0.60, "factor": 8.0},),
            expectation=Expectation(
                allowed_blast=storage_blast,
                max_depth=storage_depth, max_error_rate=0.05,
                pass_p99_ratio=1.5, fail_p99_ratio=50.0,
                recover_within=0.5),
            description="degraded-disk analog: the storage backend's "
                        "service demand inflates 8x"),
        Scenario(
            name="net-saturation",
            bottleneck_class="bandwidth-saturation",
            target="fabric",
            faults=(
                {"kind": "netdelay", "at": 0.15, "for": 0.50,
                 "factor": 80.0},),
            expectation=Expectation(
                allowed_blast=fabric_blast,
                max_depth=fabric_depth, max_error_rate=0.05,
                pass_p99_ratio=1.5, fail_p99_ratio=200.0,
                recover_within=0.5),
            description="fabric-wide hop-latency inflation (saturated "
                        "NIC / retransmit storm analog)"),
    )


def scenario_by_name(name: str,
                     catalog: t.Sequence[Scenario] | None = None
                     ) -> Scenario:
    """Look up one scenario by name (builtin catalog by default)."""
    scenarios = builtin_catalog() if catalog is None else catalog
    for scenario in scenarios:
        if scenario.name == name:
            return scenario
    raise ConfigurationError(
        f"unknown scenario {name!r}; choose from "
        f"{tuple(s.name for s in scenarios)}")
