"""Named, reproducible random-number streams.

Every stochastic component of the simulation (each user, each service's
demand sampler, the load balancer, ...) draws from its own named stream, so
that changing one component's consumption of randomness does not perturb any
other component.  Streams are derived from a root seed with
``numpy.random.SeedSequence.spawn``-style child seeding keyed by name, which
makes an experiment fully reproducible from ``(config, seed)``.
"""

from __future__ import annotations

import math
import typing as t
import zlib

import numpy as np

from repro._errors import ConfigurationError

#: Maximum standard draws prefetched per Generator call on batched
#: streams.  One vectorized numpy call amortizes the per-call dispatch
#: overhead over ~1k scalar draws; the transforms applied per element are
#: bit-identical to the scalar Generator methods, so batching never
#: changes a result.
_BATCH = 1024

#: First-refill batch size.  Batches double per refill up to ``_BATCH``,
#: so a stream that draws once (e.g. a user's start-jitter stream) holds
#: an 8-double buffer instead of 8 KiB — at 10k simulated users the
#: difference is >150 MB of resident prefetch buffers.  Generator draws
#: consume the bit stream sequentially, so chunked refills produce
#: exactly the values one monolithic batch would.
_BATCH_MIN = 8


class _StreamState:
    """One named stream's generator plus its prefetch buffer.

    ``kind`` is fixed at the first draw: batched streams prefetch ahead
    of consumption, so a second distribution on the same stream would
    see generator state the unbatched code never produced.  Mixing kinds
    on one stream is therefore a configuration error, not a silent
    reordering.
    """

    __slots__ = ("generator", "kind", "buffer", "cursor", "batch")

    def __init__(self, generator: np.random.Generator, kind: str):
        self.generator = generator
        self.kind = kind
        self.buffer: np.ndarray | None = None
        self.cursor = 0
        self.batch = _BATCH_MIN

    def next_standard(self, draw_batch) -> float:
        """The next prefetched standard draw, refilling via ``draw_batch``."""
        buffer = self.buffer
        if buffer is None or self.cursor >= len(buffer):
            size = self.batch
            self.batch = min(size * 2, _BATCH)
            buffer = self.buffer = draw_batch(self.generator, size)
            self.cursor = 0
        value = buffer[self.cursor]
        self.cursor += 1
        return value


def _standard_exponential(generator: np.random.Generator,
                          size: int) -> np.ndarray:
    return generator.standard_exponential(size)


def _standard_uniform(generator: np.random.Generator,
                      size: int) -> np.ndarray:
    return generator.random(size)


def _standard_normal(generator: np.random.Generator,
                     size: int) -> np.ndarray:
    return generator.standard_normal(size)


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator`\\ s."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}
        #: crc32 key → stream name.  Child seeds are keyed by
        #: ``crc32(name)``; two distinct names with colliding CRCs would
        #: silently share a generator and cross-contaminate their
        #: components, so collisions are a configuration error.
        self._crc_registry: dict[int, str] = {}
        #: fork()-derived seed → fork name, same rationale.
        self._fork_registry: dict[int, str] = {}
        #: name → per-stream draw state (buffer, cursor, kind).
        self._states: dict[str, _StreamState] = {}
        #: (mean, cv) → (mu, sigma) for lognormal_mean_cv; demand
        #: samplers call with a handful of fixed parameterizations, so
        #: the log/sqrt work is paid once per distinct pair.
        self._lognormal_params: dict[tuple[float, float],
                                     tuple[float, float]] = {}
        #: weights tuple → normalized CDF for choice_index.
        self._choice_cdfs: dict[tuple[float, ...], np.ndarray] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields the same sequence.
        """
        generator = self._streams.get(name)
        if generator is None:
            key = zlib.crc32(name.encode())
            owner = self._crc_registry.setdefault(key, name)
            if owner != name:
                raise ConfigurationError(
                    f"random-stream key collision: {name!r} and {owner!r} "
                    f"both hash to crc32={key}; rename one stream or the "
                    f"two components will share a generator")
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(key,))
            generator = np.random.default_rng(child)
            self._streams[name] = generator
        return generator

    def _state(self, name: str, kind: str) -> _StreamState:
        """The stream's draw state, pinned to its first-used ``kind``."""
        state = self._states.get(name)
        if state is None:
            state = _StreamState(self.stream(name), kind)
            self._states[name] = state
        elif state.kind != kind:
            raise ConfigurationError(
                f"stream {name!r} already draws {state.kind}; drawing "
                f"{kind} from the same stream would desynchronize its "
                f"prefetched batch — use a separate stream name")
        return state

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream ``name``."""
        state = self._state(name, "exponential")
        return float(mean * state.next_standard(_standard_exponential))

    def exponential_sampler(self, name: str,
                            mean: float) -> t.Callable[[], float]:
        """A zero-argument sampler equivalent to repeated
        :meth:`exponential` calls with this mean.

        Stream-state resolution happens once at creation; the sampler
        draws from exactly the same stream state, so mixing it with
        direct calls preserves the draw sequence.  Closed-loop users
        use this for their think-time stream, trading the per-draw
        dict lookup and kind check for one bound call.
        """
        draw = self._state(name, "exponential").next_standard
        return lambda: float(mean * draw(_standard_exponential))

    def lognormal_mean_cv(self, name: str, mean: float, cv: float) -> float:
        """One lognormal draw parameterized by mean and coefficient of variation.

        Service-time distributions in server workloads are right-skewed; a
        lognormal with a given mean and CV is the conventional stand-in.
        ``cv == 0`` degenerates to the deterministic mean.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative: {cv}")
        if cv == 0:
            return mean
        params = self._lognormal_params.get((mean, cv))
        if params is None:
            sigma2 = np.log1p(cv * cv)
            mu = np.log(mean) - sigma2 / 2.0
            params = (float(mu), float(np.sqrt(sigma2)))
            self._lognormal_params[(mean, cv)] = params
        state = self._state(name, "lognormal")
        return math.exp(params[0]
                        + params[1] * state.next_standard(_standard_normal))

    def lognormal_sampler(self, name: str, mean: float,
                          cv: float) -> t.Callable[[], float]:
        """A zero-argument sampler equivalent to repeated
        :meth:`lognormal_mean_cv` calls with these parameters.

        Parameter derivation and stream-state resolution happen once at
        creation; the sampler draws from exactly the same stream state,
        so mixing it with direct calls preserves the draw sequence.
        Service handlers with fixed per-endpoint demand distributions
        use this to keep per-request lookups off the hot path.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative: {cv}")
        if cv == 0:
            return lambda: mean
        params = self._lognormal_params.get((mean, cv))
        if params is None:
            sigma2 = np.log1p(cv * cv)
            mu = np.log(mean) - sigma2 / 2.0
            params = (float(mu), float(np.sqrt(sigma2)))
            self._lognormal_params[(mean, cv)] = params
        mu, sigma = params
        draw = self._state(name, "lognormal").next_standard
        exp = math.exp
        return lambda: exp(mu + sigma * draw(_standard_normal))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw on stream ``name``."""
        state = self._state(name, "uniform")
        return float(low
                     + (high - low) * state.next_standard(_standard_uniform))

    def choice_index(self, name: str, weights: "np.ndarray | list[float]") -> int:
        """Sample an index proportionally to ``weights`` on stream ``name``.

        Inverse-CDF sampling on one uniform draw — the same algorithm
        (and generator-state consumption) as ``Generator.choice(n, p)``,
        with the CDF cached per distinct weights vector instead of
        revalidated and re-accumulated on every call.
        """
        key = tuple(float(w) for w in weights)
        cdf = self._choice_cdfs.get(key)
        if cdf is None:
            p = np.asarray(key, dtype=float)
            total = p.sum()
            if total <= 0:
                raise ValueError("weights must sum to a positive value")
            cdf = (p / total).cumsum()
            cdf /= cdf[-1]
            self._choice_cdfs[key] = cdf
        state = self._state(name, "choice")
        draw = state.next_standard(_standard_uniform)
        return int(cdf.searchsorted(draw, side="right"))

    def binomial(self, name: str, n: int, p: float) -> int:
        """One binomial draw (e.g. cache misses among ``n`` lookups)."""
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1]: {p}")
        state = self._state(name, "binomial")
        return int(state.generator.binomial(n, p))

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)`` on stream ``name``."""
        state = self._state(name, "integers")
        return int(state.generator.integers(low, high))

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's.

        The child seed is ``seed ^ crc32(name)``; a derived seed equal to
        the parent's (``crc32(name) == 0``) or to another fork's would
        alias two supposedly independent factories, so both cases raise.
        """
        derived = self.seed ^ zlib.crc32(name.encode())
        if derived == self.seed:
            raise ConfigurationError(
                f"fork {name!r} derives the parent's own seed "
                f"({self.seed}); rename the fork")
        owner = self._fork_registry.setdefault(derived, name)
        if owner != name:
            raise ConfigurationError(
                f"fork seed collision: {name!r} and {owner!r} both derive "
                f"seed {derived}; rename one fork")
        return RandomStreams(seed=derived)
