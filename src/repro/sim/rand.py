"""Named, reproducible random-number streams.

Every stochastic component of the simulation (each user, each service's
demand sampler, the load balancer, ...) draws from its own named stream, so
that changing one component's consumption of randomness does not perturb any
other component.  Streams are derived from a root seed with
``numpy.random.SeedSequence.spawn``-style child seeding keyed by name, which
makes an experiment fully reproducible from ``(config, seed)``.
"""

from __future__ import annotations

import zlib

import numpy as np


class RandomStreams:
    """A factory of independent, named :class:`numpy.random.Generator`\\ s."""

    def __init__(self, seed: int = 0):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same ``(seed, name)`` pair always yields the same sequence.
        """
        generator = self._streams.get(name)
        if generator is None:
            child = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(zlib.crc32(name.encode()),))
            generator = np.random.default_rng(child)
            self._streams[name] = generator
        return generator

    def exponential(self, name: str, mean: float) -> float:
        """One draw from Exp(mean) on stream ``name``."""
        return float(self.stream(name).exponential(mean))

    def lognormal_mean_cv(self, name: str, mean: float, cv: float) -> float:
        """One lognormal draw parameterized by mean and coefficient of variation.

        Service-time distributions in server workloads are right-skewed; a
        lognormal with a given mean and CV is the conventional stand-in.
        ``cv == 0`` degenerates to the deterministic mean.
        """
        if mean <= 0:
            raise ValueError(f"mean must be positive: {mean}")
        if cv < 0:
            raise ValueError(f"cv must be non-negative: {cv}")
        if cv == 0:
            return mean
        sigma2 = np.log1p(cv * cv)
        mu = np.log(mean) - sigma2 / 2.0
        return float(self.stream(name).lognormal(mu, np.sqrt(sigma2)))

    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        """One uniform draw on stream ``name``."""
        return float(self.stream(name).uniform(low, high))

    def choice_index(self, name: str, weights: "np.ndarray | list[float]") -> int:
        """Sample an index proportionally to ``weights`` on stream ``name``."""
        weights = np.asarray(weights, dtype=float)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return int(self.stream(name).choice(len(weights), p=weights / total))

    def binomial(self, name: str, n: int, p: float) -> int:
        """One binomial draw (e.g. cache misses among ``n`` lookups)."""
        if n < 0:
            raise ValueError(f"n must be non-negative: {n}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"p must be in [0, 1]: {p}")
        return int(self.stream(name).binomial(n, p))

    def integers(self, name: str, low: int, high: int) -> int:
        """One integer draw in ``[low, high)`` on stream ``name``."""
        return int(self.stream(name).integers(low, high))

    def fork(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(seed=self.seed ^ zlib.crc32(name.encode()))
