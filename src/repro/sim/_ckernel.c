/* Compiled event-loop kernel for repro.sim.
 *
 * A hand-written CPython extension that mirrors
 * repro.sim.kernel.PythonKernel bit for bit: the time heap lives in a
 * raw C array of (double time, long long counter, Handle*) entries, the
 * zero-delay ready queue is a C ring buffer that keeps the counter
 * stamps C-side, and the dispatch loop runs in C with inline fast paths
 * for the two dominant callback families (Process._resume and
 * Timeout._fire).  Any other callable takes the generic call path, so
 * the fast paths are pure accelerations — observable behavior,
 * processing order, and escalated exceptions are identical to the
 * pure-Python kernel (the golden-digest suite pins this byte for byte).
 *
 * The module is inert until configure() hands it the Python-side types
 * and sentinels it shares with repro.sim.events / repro.sim.engine;
 * repro.sim.kernel calls configure() immediately after import.  Slots
 * of those classes are read/written directly through their member
 * descriptor offsets, which is what makes the inline resume path as
 * cheap as a C struct access.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>   /* PyMemberDef layout (pre-3.12 headers) */

#if PY_VERSION_HEX < 0x030A0000
#  error "repro.sim._ckernel requires Python 3.10+ (PyIter_Send)"
#endif

/* Keep in sync with repro.sim.kernel._COMPACT_MIN_TOMBSTONES. */
#define COMPACT_MIN_TOMBSTONES 64

/* ------------------------------------------------------------------ */
/* Module state (configured once by repro.sim.kernel)                  */
/* ------------------------------------------------------------------ */

typedef struct {
    int configured;
    PyObject *event_type;      /* repro.sim.events.Event */
    PyObject *timeout_type;    /* repro.sim.events.Timeout */
    PyObject *process_type;    /* repro.sim.engine.Process */
    PyObject *sim_type;        /* repro.sim.engine.Simulator */
    PyObject *pending;         /* repro.sim.events._PENDING sentinel */
    PyObject *sim_error;       /* repro._errors.SimulationError */
    PyObject *resume_func;     /* plain function Process._resume */
    PyObject *fire_func;       /* plain function Timeout._fire */
    PyObject *str_throw;
    PyObject *str_value;
    PyObject *str_push_ready;
    PyObject *str_process_event;
    /* Slot offsets (member-descriptor offsets are stable across
     * subclasses: Timeout/Process extend Event's layout). */
    Py_ssize_t ev_sim, ev_callbacks, ev_value, ev_ok, ev_defused;
    Py_ssize_t pr_generator, pr_waiting;
    Py_ssize_t tmo_payload;
    Py_ssize_t sim_now;
} KernelState;

static KernelState S;

/* Borrowed reference to the slot's current value (may be NULL). */
static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t offset)
{
    return *(PyObject **)((char *)obj + offset);
}

/* Store a new reference to `value` in the slot, releasing the old. */
static inline void
slot_store(PyObject *obj, Py_ssize_t offset, PyObject *value)
{
    PyObject **slot = (PyObject **)((char *)obj + offset);
    PyObject *old = *slot;
    Py_INCREF(value);
    *slot = value;
    Py_XDECREF(old);
}

/* Truthiness of the _ok/_defused slots.  They only ever hold
 * True/False/None in this codebase; exotic values fall back to
 * PyObject_IsTrue with errors clamped to false. */
static inline int
truthy(PyObject *obj)
{
    if (obj == Py_True)
        return 1;
    if (obj == Py_False || obj == Py_None || obj == NULL)
        return 0;
    int r = PyObject_IsTrue(obj);
    if (r < 0) {
        PyErr_Clear();
        return 0;
    }
    return r;
}

/* ------------------------------------------------------------------ */
/* Handle                                                              */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    double time;
    PyObject *callback;   /* NULL once cancelled */
    /* Optional call arguments (schedule2): the fabric's hop callbacks
     * carry their two operands here instead of in a per-call closure,
     * so a scheduled RPC hop allocates nothing beyond the handle. */
    PyObject *arg1, *arg2;
    PyObject *kernel;     /* owning CKernel while queued, else NULL */
    char cancelled;
    char queued;
} CHandleObject;

typedef struct {
    double time;
    long long cnt;
    PyObject *handle;     /* strong reference to a CHandleObject */
} HeapEntry;

typedef struct {
    PyObject_HEAD
    HeapEntry *heap;
    Py_ssize_t heap_len, heap_cap;
    PyObject **ready;         /* ring buffer of triggered events */
    long long *ready_cnt;     /* counter stamps, parallel to `ready` */
    Py_ssize_t r_head, r_len, r_cap;   /* r_cap is a power of two */
    long long counter;
    Py_ssize_t tombstones;
} CKernelObject;

static PyTypeObject CHandle_Type;
static PyTypeObject CKernel_Type;

static void compact(CKernelObject *k);

static inline void
maybe_compact(CKernelObject *k)
{
    if (k->tombstones > COMPACT_MIN_TOMBSTONES
        && k->tombstones * 2 > k->heap_len)
        compact(k);
}

static PyObject *
CHandle_cancel(CHandleObject *self, PyObject *Py_UNUSED(ignored))
{
    if (!self->cancelled) {
        self->cancelled = 1;
        Py_CLEAR(self->callback);
        Py_CLEAR(self->arg1);
        Py_CLEAR(self->arg2);
        if (self->queued && self->kernel != NULL) {
            CKernelObject *k = (CKernelObject *)self->kernel;
            k->tombstones++;
            maybe_compact(k);
        }
    }
    Py_RETURN_NONE;
}

static PyObject *
CHandle_get_time(CHandleObject *self, void *Py_UNUSED(closure))
{
    return PyFloat_FromDouble(self->time);
}

static PyObject *
CHandle_get_callback(CHandleObject *self, void *Py_UNUSED(closure))
{
    PyObject *cb = self->callback ? self->callback : Py_None;
    Py_INCREF(cb);
    return cb;
}

static PyObject *
CHandle_get_cancelled(CHandleObject *self, void *Py_UNUSED(closure))
{
    return PyBool_FromLong(self->cancelled);
}

static PyObject *
CHandle_repr(CHandleObject *self)
{
    if (self->cancelled)
        return PyUnicode_FromString("<Handle cancelled>");
    char *buf = PyOS_double_to_string(self->time, 'f', 6, 0, NULL);
    if (buf == NULL)
        return NULL;
    PyObject *repr = PyUnicode_FromFormat("<Handle at t=%s>", buf);
    PyMem_Free(buf);
    return repr;
}

static int
CHandle_traverse(CHandleObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->callback);
    Py_VISIT(self->arg1);
    Py_VISIT(self->arg2);
    Py_VISIT(self->kernel);
    return 0;
}

static int
CHandle_clear(CHandleObject *self)
{
    Py_CLEAR(self->callback);
    Py_CLEAR(self->arg1);
    Py_CLEAR(self->arg2);
    Py_CLEAR(self->kernel);
    return 0;
}

static void
CHandle_dealloc(CHandleObject *self)
{
    PyObject_GC_UnTrack(self);
    Py_CLEAR(self->callback);
    Py_CLEAR(self->arg1);
    Py_CLEAR(self->arg2);
    Py_CLEAR(self->kernel);
    PyObject_GC_Del(self);
}

static PyMethodDef CHandle_methods[] = {
    {"cancel", (PyCFunction)CHandle_cancel, METH_NOARGS,
     "Prevent the callback from running.  Idempotent."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CHandle_getset[] = {
    {"time", (getter)CHandle_get_time, NULL, NULL, NULL},
    {"callback", (getter)CHandle_get_callback, NULL, NULL, NULL},
    {"cancelled", (getter)CHandle_get_cancelled, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject CHandle_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.Handle",
    .tp_basicsize = sizeof(CHandleObject),
    .tp_dealloc = (destructor)CHandle_dealloc,
    .tp_repr = (reprfunc)CHandle_repr,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = PyDoc_STR("A cancellable handle for a scheduled callback "
                        "(compiled kernel)."),
    .tp_traverse = (traverseproc)CHandle_traverse,
    .tp_clear = (inquiry)CHandle_clear,
    .tp_methods = CHandle_methods,
    .tp_getset = CHandle_getset,
};

/* ------------------------------------------------------------------ */
/* Heap primitives ((time, counter) min-heap over raw C arrays)        */
/* ------------------------------------------------------------------ */

static inline int
entry_lt(double ta, long long ca, const HeapEntry *b)
{
    return ta < b->time || (ta == b->time && ca < b->cnt);
}

static int
heap_reserve(CKernelObject *k)
{
    if (k->heap_len < k->heap_cap)
        return 0;
    Py_ssize_t ncap = k->heap_cap ? k->heap_cap * 2 : 64;
    HeapEntry *nh = PyMem_Realloc(k->heap, (size_t)ncap * sizeof(HeapEntry));
    if (nh == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    k->heap = nh;
    k->heap_cap = ncap;
    return 0;
}

/* Insert (capacity must already be reserved).  Steals `handle`. */
static void
heap_push_raw(CKernelObject *k, double time, long long cnt, PyObject *handle)
{
    HeapEntry *h = k->heap;
    Py_ssize_t pos = k->heap_len++;
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (entry_lt(time, cnt, &h[parent])) {
            h[pos] = h[parent];
            pos = parent;
        }
        else
            break;
    }
    h[pos].time = time;
    h[pos].cnt = cnt;
    h[pos].handle = handle;
}

/* Re-establish the heap property for the subtree rooted at `pos`. */
static void
heap_siftdown(CKernelObject *k, Py_ssize_t pos)
{
    HeapEntry *h = k->heap;
    Py_ssize_t n = k->heap_len;
    HeapEntry item = h[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= n)
            break;
        Py_ssize_t right = child + 1;
        if (right < n && entry_lt(h[right].time, h[right].cnt, &h[child]))
            child = right;
        if (entry_lt(h[child].time, h[child].cnt, &item)) {
            h[pos] = h[child];
            pos = child;
        }
        else
            break;
    }
    h[pos] = item;
}

/* Pop the minimum entry; returns its handle (ownership transferred). */
static PyObject *
heap_pop_min(CKernelObject *k)
{
    PyObject *handle = k->heap[0].handle;
    Py_ssize_t n = --k->heap_len;
    if (n > 0) {
        k->heap[0] = k->heap[n];
        heap_siftdown(k, 0);
    }
    return handle;
}

/* Pop the minimum, mark it dequeued, drop its kernel backref. */
static CHandleObject *
pop_handle(CKernelObject *k)
{
    CHandleObject *h = (CHandleObject *)heap_pop_min(k);
    h->queued = 0;
    Py_CLEAR(h->kernel);
    return h;
}

/* Filter out cancelled entries in place and re-heapify.  Pop order is
 * preserved: entries compare by the total (time, counter) order
 * regardless of internal arrangement.  Cancelled handles had their
 * callback cleared at cancel() time, so the DECREFs here cannot run
 * arbitrary Python code. */
static void
compact(CKernelObject *k)
{
    Py_ssize_t out = 0;
    for (Py_ssize_t i = 0; i < k->heap_len; i++) {
        CHandleObject *h = (CHandleObject *)k->heap[i].handle;
        if (h->cancelled) {
            h->queued = 0;
            Py_CLEAR(h->kernel);
            Py_DECREF(h);
        }
        else
            k->heap[out++] = k->heap[i];
    }
    k->heap_len = out;
    for (Py_ssize_t i = out / 2 - 1; i >= 0; i--)
        heap_siftdown(k, i);
    k->tombstones = 0;
}

static void
drop_tombstones(CKernelObject *k)
{
    while (k->heap_len
           && ((CHandleObject *)k->heap[0].handle)->cancelled) {
        CHandleObject *h = pop_handle(k);
        k->tombstones--;
        Py_DECREF(h);
    }
}

/* ------------------------------------------------------------------ */
/* Ready ring buffer                                                   */
/* ------------------------------------------------------------------ */

static int
ring_push(CKernelObject *k, PyObject *event, long long cnt)
{
    if (k->r_len == k->r_cap) {
        Py_ssize_t ncap = k->r_cap ? k->r_cap * 2 : 64;
        PyObject **nev = PyMem_New(PyObject *, ncap);
        long long *ncnt = PyMem_New(long long, ncap);
        if (nev == NULL || ncnt == NULL) {
            PyMem_Free(nev);
            PyMem_Free(ncnt);
            PyErr_NoMemory();
            return -1;
        }
        for (Py_ssize_t i = 0; i < k->r_len; i++) {
            Py_ssize_t idx = (k->r_head + i) & (k->r_cap - 1);
            nev[i] = k->ready[idx];
            ncnt[i] = k->ready_cnt[idx];
        }
        PyMem_Free(k->ready);
        PyMem_Free(k->ready_cnt);
        k->ready = nev;
        k->ready_cnt = ncnt;
        k->r_cap = ncap;
        k->r_head = 0;
    }
    Py_ssize_t idx = (k->r_head + k->r_len) & (k->r_cap - 1);
    Py_INCREF(event);
    k->ready[idx] = event;
    k->ready_cnt[idx] = cnt;
    k->r_len++;
    return 0;
}

/* Pop the oldest ready event (ownership transferred). */
static PyObject *
ring_pop(CKernelObject *k)
{
    Py_ssize_t idx = k->r_head;
    PyObject *event = k->ready[idx];
    k->ready[idx] = NULL;
    k->r_head = (idx + 1) & (k->r_cap - 1);
    k->r_len--;
    return event;
}

/* ------------------------------------------------------------------ */
/* Dispatch: event processing and the callback-family fast paths       */
/* ------------------------------------------------------------------ */

static int process_event(CKernelObject *k, PyObject *sim, PyObject *event);
static int trampoline_resume(CKernelObject *k, PyObject *sim,
                             PyObject *proc, PyObject *event);

/* raise event._value (mirrors Python `raise exc`). */
static int
raise_event_value(PyObject *exc)
{
    if (exc != NULL && PyExceptionInstance_Check(exc))
        PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
    else if (exc != NULL && PyExceptionClass_Check(exc))
        PyErr_SetObject(exc, NULL);
    else
        PyErr_SetString(PyExc_TypeError,
                        "exceptions must derive from BaseException");
    return -1;
}

/* Event.succeed / Event.fail on a Process, inlined (exact Process type
 * only, so Event's implementations are the semantics).  The ready push
 * goes through the event's own simulator when it is not the one whose
 * kernel is running. */
static int
do_trigger(CKernelObject *k, PyObject *sim, PyObject *proc,
           PyObject *value, int ok)
{
    if (slot_get(proc, S.ev_value) != S.pending) {
        PyObject *msg = PyUnicode_FromFormat(
            "%R has already been triggered", proc);
        if (msg != NULL) {
            PyErr_SetObject(S.sim_error, msg);
            Py_DECREF(msg);
        }
        return -1;
    }
    slot_store(proc, S.ev_ok, ok ? Py_True : Py_False);
    slot_store(proc, S.ev_value, value);
    PyObject *esim = slot_get(proc, S.ev_sim);
    if (esim == NULL) {
        PyErr_SetString(PyExc_AttributeError, "sim");
        return -1;
    }
    if (esim == sim) {
        k->counter++;
        return ring_push(k, proc, k->counter);
    }
    PyObject *res = PyObject_CallMethodOneArg(esim, S.str_push_ready, proc);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* `self._generator.throw(SimulationError(msg))` for yield-protocol
 * violations; the result (if the generator survives) is discarded,
 * exactly as in Process._advance. */
static int
throw_sim_error(PyObject *gen, PyObject *msg)
{
    PyObject *err = PyObject_CallOneArg(S.sim_error, msg);
    if (err == NULL)
        return -1;
    PyObject *res = PyObject_CallMethodOneArg(gen, S.str_throw, err);
    Py_DECREF(err);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* The generator raised: StopIteration -> succeed(stop.value), anything
 * else -> fail(exc) with the traceback attached (Process._advance's
 * except clauses). */
static int
advance_error(CKernelObject *k, PyObject *sim, PyObject *proc)
{
    if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
        PyObject *type, *val, *tb;
        PyErr_Fetch(&type, &val, &tb);
        PyErr_NormalizeException(&type, &val, &tb);
        PyObject *stop_value =
            val ? PyObject_GetAttr(val, S.str_value) : NULL;
        Py_XDECREF(type);
        Py_XDECREF(val);
        Py_XDECREF(tb);
        if (stop_value == NULL)
            return -1;
        int rv = do_trigger(k, sim, proc, stop_value, 1);
        Py_DECREF(stop_value);
        return rv;
    }
    PyObject *type, *val, *tb;
    PyErr_Fetch(&type, &val, &tb);
    if (type == NULL) {
        PyErr_SetString(PyExc_SystemError,
                        "error return without exception set");
        return -1;
    }
    PyErr_NormalizeException(&type, &val, &tb);
    if (tb != NULL && val != NULL)
        PyException_SetTraceback(val, tb);
    int rv = do_trigger(k, sim, proc, val ? val : Py_None, 0);
    Py_XDECREF(type);
    Py_XDECREF(val);
    Py_XDECREF(tb);
    return rv;
}

/* Process._advance, inlined. */
static int
advance_impl(CKernelObject *k, PyObject *sim, PyObject *proc,
             PyObject *value, int failed)
{
    PyObject *gen = slot_get(proc, S.pr_generator);
    if (gen == NULL) {
        PyErr_SetString(PyExc_AttributeError, "_generator");
        return -1;
    }
    Py_INCREF(gen);
    PyObject *target = NULL;
    int rv = 0;
    if (failed) {
        target = PyObject_CallMethodOneArg(gen, S.str_throw, value);
        if (target == NULL) {
            rv = advance_error(k, sim, proc);
            goto done;
        }
    }
    else {
        PySendResult sr = PyIter_Send(gen, value, &target);
        if (sr == PYGEN_RETURN) {
            rv = do_trigger(k, sim, proc, target, 1);
            Py_DECREF(target);
            goto done;
        }
        if (sr == PYGEN_ERROR) {
            rv = advance_error(k, sim, proc);
            goto done;
        }
    }
    /* The generator yielded `target`. */
    if (!PyObject_TypeCheck(target, (PyTypeObject *)S.event_type)) {
        PyObject *msg = PyUnicode_FromFormat(
            "process yielded a non-event: %R", target);
        rv = msg ? throw_sim_error(gen, msg) : -1;
        Py_XDECREF(msg);
    }
    else if (slot_get(target, S.ev_sim) != slot_get(proc, S.ev_sim)) {
        PyObject *msg = PyUnicode_FromString(
            "yielded event belongs to another simulator");
        rv = msg ? throw_sim_error(gen, msg) : -1;
        Py_XDECREF(msg);
    }
    else {
        slot_store(proc, S.pr_waiting, target);
        PyObject *callbacks = slot_get(target, S.ev_callbacks);
        if (callbacks == NULL || callbacks == Py_None) {
            /* Already processed: resume immediately. */
            rv = trampoline_resume(k, sim, proc, target);
        }
        else if (PyList_Check(callbacks)) {
            PyObject *method = PyMethod_New(S.resume_func, proc);
            if (method == NULL)
                rv = -1;
            else {
                rv = PyList_Append(callbacks, method);
                Py_DECREF(method);
            }
        }
        else {
            PyErr_SetString(PyExc_TypeError,
                            "event callbacks must be a list");
            rv = -1;
        }
    }
    Py_DECREF(target);
done:
    Py_DECREF(gen);
    return rv;
}

/* Process._resume, inlined. */
static int
resume_impl(CKernelObject *k, PyObject *sim, PyObject *proc, PyObject *event)
{
    if (slot_get(proc, S.ev_value) != S.pending) {
        if (!truthy(slot_get(event, S.ev_ok)))
            slot_store(event, S.ev_defused, Py_True);
        return 0;
    }
    slot_store(proc, S.pr_waiting, Py_None);
    int failed;
    if (truthy(slot_get(event, S.ev_ok)))
        failed = 0;
    else {
        slot_store(event, S.ev_defused, Py_True);
        failed = 1;
    }
    PyObject *value = slot_get(event, S.ev_value);
    if (value == NULL)
        value = Py_None;
    Py_INCREF(value);
    int rv = advance_impl(k, sim, proc, value, failed);
    Py_DECREF(value);
    return rv;
}

static int
trampoline_resume(CKernelObject *k, PyObject *sim,
                  PyObject *proc, PyObject *event)
{
    if (Py_EnterRecursiveCall(" in simulation process resume"))
        return -1;
    int rv = resume_impl(k, sim, proc, event);
    Py_LeaveRecursiveCall();
    return rv;
}

/* Timeout._fire, inlined (exact Timeout type only). */
static int
trampoline_fire(CKernelObject *k, PyObject *sim, PyObject *timeout)
{
    slot_store(timeout, S.ev_ok, Py_True);
    PyObject *payload = slot_get(timeout, S.tmo_payload);
    slot_store(timeout, S.ev_value, payload ? payload : Py_None);
    PyObject *tsim = slot_get(timeout, S.ev_sim);
    if (tsim == sim)
        return process_event(k, sim, timeout);
    if (tsim == NULL) {
        PyErr_SetString(PyExc_AttributeError, "sim");
        return -1;
    }
    PyObject *res =
        PyObject_CallMethodOneArg(tsim, S.str_process_event, timeout);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* One event callback: Process._resume fast path or the generic call. */
static int
invoke_event_cb(CKernelObject *k, PyObject *sim, PyObject *cb,
                PyObject *event)
{
    if (PyMethod_Check(cb)
        && PyMethod_GET_FUNCTION(cb) == S.resume_func
        && Py_TYPE(PyMethod_GET_SELF(cb)) == (PyTypeObject *)S.process_type)
        return trampoline_resume(k, sim, PyMethod_GET_SELF(cb), event);
    PyObject *res = PyObject_CallOneArg(cb, event);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* One heap-handle callback: Timeout._fire fast path or the generic
 * zero-argument call. */
static int
invoke_handle_cb(CKernelObject *k, PyObject *sim, CHandleObject *handle)
{
    PyObject *cb = handle->callback;
    if (cb == NULL)   /* cancelled handles never reach the dispatcher */
        return 0;
    Py_INCREF(cb);
    int rv;
    if (PyMethod_Check(cb)
        && PyMethod_GET_FUNCTION(cb) == S.fire_func
        && Py_TYPE(PyMethod_GET_SELF(cb)) == (PyTypeObject *)S.timeout_type)
        rv = trampoline_fire(k, sim, PyMethod_GET_SELF(cb));
    else if (handle->arg1 != NULL) {
        /* schedule2 entries: call with the two stored operands. */
        PyObject *argv[2] = {handle->arg1, handle->arg2};
        Py_INCREF(argv[0]);
        Py_INCREF(argv[1]);
        PyObject *res = PyObject_Vectorcall(cb, argv, 2, NULL);
        Py_DECREF(argv[0]);
        Py_DECREF(argv[1]);
        if (res == NULL)
            rv = -1;
        else {
            Py_DECREF(res);
            rv = 0;
        }
    }
    else {
        PyObject *res = PyObject_CallNoArgs(cb);
        if (res == NULL)
            rv = -1;
        else {
            Py_DECREF(res);
            rv = 0;
        }
    }
    Py_DECREF(cb);
    return rv;
}

/* Simulator._process_event, inlined: run the detached callback list,
 * then escalate an unclaimed failure. */
static int
process_event(CKernelObject *k, PyObject *sim, PyObject *event)
{
    PyObject *callbacks = slot_get(event, S.ev_callbacks);
    if (callbacks == NULL || callbacks == Py_None) {
        PyErr_SetString(PyExc_AssertionError, "event processed twice");
        return -1;
    }
    if (!PyList_Check(callbacks)) {
        PyErr_SetString(PyExc_TypeError, "event callbacks must be a list");
        return -1;
    }
    Py_INCREF(callbacks);
    slot_store(event, S.ev_callbacks, Py_None);
    int rv = 0;
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(callbacks); i++) {
        PyObject *cb = PyList_GET_ITEM(callbacks, i);
        Py_INCREF(cb);
        rv = invoke_event_cb(k, sim, cb, event);
        Py_DECREF(cb);
        if (rv < 0)
            break;
    }
    Py_DECREF(callbacks);
    if (rv < 0)
        return -1;
    if (!truthy(slot_get(event, S.ev_ok))
        && !truthy(slot_get(event, S.ev_defused)))
        return raise_event_value(slot_get(event, S.ev_value));
    return 0;
}

/* ------------------------------------------------------------------ */
/* CKernel methods                                                     */
/* ------------------------------------------------------------------ */

static PyObject *
CKernel_schedule(CKernelObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule() takes exactly 2 arguments "
                        "(time, callback)");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    CHandleObject *handle = PyObject_GC_New(CHandleObject, &CHandle_Type);
    if (handle == NULL)
        return NULL;
    handle->time = time;
    Py_INCREF(args[1]);
    handle->callback = args[1];
    handle->arg1 = NULL;
    handle->arg2 = NULL;
    handle->cancelled = 0;
    handle->queued = 1;
    Py_INCREF(k);
    handle->kernel = (PyObject *)k;
    PyObject_GC_Track(handle);
    if (heap_reserve(k) < 0) {
        handle->queued = 0;
        Py_DECREF(handle);
        return NULL;
    }
    k->counter++;
    Py_INCREF(handle);   /* the heap's reference */
    heap_push_raw(k, time, k->counter, (PyObject *)handle);
    return (PyObject *)handle;
}

/* schedule2(time, func, a, b): like schedule(time, partial(func, a, b))
 * without the partial object — the operands ride in the handle and are
 * passed positionally at dispatch.  Counter and ordering semantics are
 * identical to schedule(). */
static PyObject *
CKernel_schedule2(CKernelObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 4) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule2() takes exactly 4 arguments "
                        "(time, func, a, b)");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    CHandleObject *handle = PyObject_GC_New(CHandleObject, &CHandle_Type);
    if (handle == NULL)
        return NULL;
    handle->time = time;
    Py_INCREF(args[1]);
    handle->callback = args[1];
    Py_INCREF(args[2]);
    handle->arg1 = args[2];
    Py_INCREF(args[3]);
    handle->arg2 = args[3];
    handle->cancelled = 0;
    handle->queued = 1;
    Py_INCREF(k);
    handle->kernel = (PyObject *)k;
    PyObject_GC_Track(handle);
    if (heap_reserve(k) < 0) {
        handle->queued = 0;
        Py_DECREF(handle);
        return NULL;
    }
    k->counter++;
    Py_INCREF(handle);   /* the heap's reference */
    heap_push_raw(k, time, k->counter, (PyObject *)handle);
    return (PyObject *)handle;
}

static PyObject *
CKernel_push_ready(CKernelObject *k, PyObject *event)
{
    k->counter++;
    if (ring_push(k, event, k->counter) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CKernel_note_cancel(CKernelObject *k, PyObject *Py_UNUSED(ignored))
{
    k->tombstones++;
    maybe_compact(k);
    Py_RETURN_NONE;
}

static PyObject *
CKernel_next_time(CKernelObject *k, PyObject *now_obj)
{
    double now = PyFloat_AsDouble(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    if (k->r_len)
        return PyFloat_FromDouble(now);
    drop_tombstones(k);
    if (!k->heap_len)
        return PyFloat_FromDouble(Py_HUGE_VAL);
    return PyFloat_FromDouble(k->heap[0].time);
}

static PyObject *
CKernel_step(CKernelObject *k, PyObject *sim)
{
    drop_tombstones(k);
    if (k->r_len) {
        if (k->heap_len) {
            PyObject *now_obj = slot_get(sim, S.sim_now);
            if (now_obj == NULL) {
                PyErr_SetString(PyExc_AttributeError, "now");
                return NULL;
            }
            double now = PyFloat_AsDouble(now_obj);
            if (now == -1.0 && PyErr_Occurred())
                return NULL;
            if (k->heap[0].time == now
                && k->heap[0].cnt < k->ready_cnt[k->r_head]) {
                CHandleObject *h = pop_handle(k);
                int rv = invoke_handle_cb(k, sim, h);
                Py_DECREF(h);
                if (rv < 0)
                    return NULL;
                Py_RETURN_NONE;
            }
        }
        PyObject *event = ring_pop(k);
        int rv = process_event(k, sim, event);
        Py_DECREF(event);
        if (rv < 0)
            return NULL;
        Py_RETURN_NONE;
    }
    if (!k->heap_len) {
        PyErr_SetString(S.sim_error, "nothing scheduled");
        return NULL;
    }
    PyObject *time_obj = PyFloat_FromDouble(k->heap[0].time);
    if (time_obj == NULL)
        return NULL;
    slot_store(sim, S.sim_now, time_obj);
    Py_DECREF(time_obj);
    CHandleObject *h = pop_handle(k);
    int rv = invoke_handle_cb(k, sim, h);
    Py_DECREF(h);
    if (rv < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
CKernel_run(CKernelObject *k, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "run() takes exactly 2 arguments (sim, until)");
        return NULL;
    }
    PyObject *sim = args[0];
    double until = PyFloat_AsDouble(args[1]);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    PyObject *now_obj = slot_get(sim, S.sim_now);
    if (now_obj == NULL) {
        PyErr_SetString(PyExc_AttributeError, "now");
        return NULL;
    }
    double now = PyFloat_AsDouble(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return NULL;
    for (;;) {
        /* Tombstones never dispatch. */
        while (k->heap_len
               && ((CHandleObject *)k->heap[0].handle)->cancelled) {
            CHandleObject *h = pop_handle(k);
            k->tombstones--;
            Py_DECREF(h);
        }
        if (k->r_len) {
            /* Ready events process at the current time; heap entries
             * already scheduled at this time keep FIFO precedence via
             * the shared counter. */
            if (k->heap_len && k->heap[0].time == now
                && k->heap[0].cnt < k->ready_cnt[k->r_head]) {
                CHandleObject *h = pop_handle(k);
                int rv = invoke_handle_cb(k, sim, h);
                Py_DECREF(h);
                if (rv < 0)
                    return NULL;
            }
            else {
                PyObject *event = ring_pop(k);
                int rv = process_event(k, sim, event);
                Py_DECREF(event);
                if (rv < 0)
                    return NULL;
            }
            continue;
        }
        if (!k->heap_len)
            break;
        double time = k->heap[0].time;
        if (time != now) {
            /* Batch boundary: the clock only moves (and `until` only
             * needs re-checking) when the timestamp actually changes —
             * now <= until is invariant inside a batch. */
            if (time > until)
                break;
            now = time;
            PyObject *f = PyFloat_FromDouble(now);
            if (f == NULL)
                return NULL;
            slot_store(sim, S.sim_now, f);
            Py_DECREF(f);
        }
        CHandleObject *h = pop_handle(k);
        int rv = invoke_handle_cb(k, sim, h);
        Py_DECREF(h);
        if (rv < 0)
            return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
CKernel_pending(CKernelObject *k, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(k->heap_len + k->r_len - k->tombstones);
}

static PyObject *
CKernel_get_backend(CKernelObject *Py_UNUSED(k), void *Py_UNUSED(closure))
{
    return PyUnicode_FromString("compiled");
}

static PyObject *
CKernel_get_tombstones(CKernelObject *k, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(k->tombstones);
}

static PyObject *
CKernel_get_counter(CKernelObject *k, void *Py_UNUSED(closure))
{
    return PyLong_FromLongLong(k->counter);
}

static PyObject *
CKernel_get_heap_size(CKernelObject *k, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(k->heap_len);
}

static PyObject *
CKernel_get_ready_size(CKernelObject *k, void *Py_UNUSED(closure))
{
    return PyLong_FromSsize_t(k->r_len);
}

static int
CKernel_traverse(CKernelObject *k, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < k->heap_len; i++)
        Py_VISIT(k->heap[i].handle);
    for (Py_ssize_t i = 0; i < k->r_len; i++)
        Py_VISIT(k->ready[(k->r_head + i) & (k->r_cap - 1)]);
    return 0;
}

static int
CKernel_clear_impl(CKernelObject *k)
{
    Py_ssize_t n = k->heap_len;
    k->heap_len = 0;
    k->tombstones = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *h = k->heap[i].handle;
        k->heap[i].handle = NULL;
        Py_XDECREF(h);
    }
    Py_ssize_t rn = k->r_len, head = k->r_head, cap = k->r_cap;
    k->r_len = 0;
    k->r_head = 0;
    for (Py_ssize_t i = 0; i < rn; i++) {
        Py_ssize_t idx = (head + i) & (cap - 1);
        PyObject *ev = k->ready[idx];
        k->ready[idx] = NULL;
        Py_XDECREF(ev);
    }
    return 0;
}

static void
CKernel_dealloc(CKernelObject *k)
{
    PyObject_GC_UnTrack(k);
    CKernel_clear_impl(k);
    PyMem_Free(k->heap);
    PyMem_Free(k->ready);
    PyMem_Free(k->ready_cnt);
    Py_TYPE(k)->tp_free((PyObject *)k);
}

static PyObject *
CKernel_new(PyTypeObject *type, PyObject *Py_UNUSED(args),
            PyObject *Py_UNUSED(kwds))
{
    if (!S.configured) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro.sim._ckernel.configure() has not been "
                        "called; import via repro.sim.kernel");
        return NULL;
    }
    return type->tp_alloc(type, 0);   /* zero-filled */
}

static PyMethodDef CKernel_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))CKernel_schedule,
     METH_FASTCALL,
     "schedule(time, callback) -> Handle\n"
     "Push `callback` onto the heap at absolute `time`."},
    {"schedule2", (PyCFunction)(void (*)(void))CKernel_schedule2,
     METH_FASTCALL,
     "schedule2(time, func, a, b) -> Handle\n"
     "schedule(time, partial(func, a, b)) without the closure object."},
    {"push_ready", (PyCFunction)CKernel_push_ready, METH_O,
     "Queue a triggered event for zero-delay processing."},
    {"note_cancel", (PyCFunction)CKernel_note_cancel, METH_NOARGS,
     "Account one newly tombstoned heap entry; compact when the\n"
     "tombstones outnumber the live entries."},
    {"next_time", (PyCFunction)CKernel_next_time, METH_O,
     "next_time(now) -> float\n"
     "Time of the next entry, or inf if none remain."},
    {"step", (PyCFunction)CKernel_step, METH_O,
     "Process exactly one entry, advancing the simulator's clock."},
    {"run", (PyCFunction)(void (*)(void))CKernel_run, METH_FASTCALL,
     "run(sim, until)\n"
     "Drain entries until the heap empties or the clock passes "
     "`until`."},
    {"pending", (PyCFunction)CKernel_pending, METH_NOARGS,
     "Live (non-tombstoned) entries awaiting processing."},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef CKernel_getset[] = {
    {"backend", (getter)CKernel_get_backend, NULL, NULL, NULL},
    {"tombstones", (getter)CKernel_get_tombstones, NULL, NULL, NULL},
    {"counter", (getter)CKernel_get_counter, NULL, NULL, NULL},
    {"heap_size", (getter)CKernel_get_heap_size, NULL, NULL, NULL},
    {"ready_size", (getter)CKernel_get_ready_size, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject CKernel_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._ckernel.CKernel",
    .tp_basicsize = sizeof(CKernelObject),
    .tp_dealloc = (destructor)CKernel_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = PyDoc_STR("Compiled event-loop kernel: C heap, C ready "
                        "ring, batched dispatch loop."),
    .tp_traverse = (traverseproc)CKernel_traverse,
    .tp_clear = (inquiry)CKernel_clear_impl,
    .tp_methods = CKernel_methods,
    .tp_getset = CKernel_getset,
    .tp_new = CKernel_new,
};

/* ------------------------------------------------------------------ */
/* Module configuration                                                */
/* ------------------------------------------------------------------ */

static Py_ssize_t
member_offset(PyObject *type, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_TypeError,
                     "%.200s.%s is not a slot member descriptor",
                     ((PyTypeObject *)type)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    Py_ssize_t offset = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return offset;
}

static PyObject *
ckernel_configure(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *event_type, *timeout_type, *process_type, *sim_type;
    PyObject *pending, *sim_error;
    if (!PyArg_ParseTuple(args, "OOOOOO", &event_type, &timeout_type,
                          &process_type, &sim_type, &pending, &sim_error))
        return NULL;
    if (!PyType_Check(event_type) || !PyType_Check(timeout_type)
        || !PyType_Check(process_type) || !PyType_Check(sim_type)) {
        PyErr_SetString(PyExc_TypeError,
                        "configure() expects (Event, Timeout, Process, "
                        "Simulator, _PENDING, SimulationError)");
        return NULL;
    }

    PyObject *resume_func = PyObject_GetAttrString(process_type, "_resume");
    if (resume_func == NULL)
        return NULL;
    PyObject *fire_func = PyObject_GetAttrString(timeout_type, "_fire");
    if (fire_func == NULL) {
        Py_DECREF(resume_func);
        return NULL;
    }

    Py_ssize_t ev_sim = member_offset(event_type, "sim");
    Py_ssize_t ev_callbacks = member_offset(event_type, "callbacks");
    Py_ssize_t ev_value = member_offset(event_type, "_value");
    Py_ssize_t ev_ok = member_offset(event_type, "_ok");
    Py_ssize_t ev_defused = member_offset(event_type, "_defused");
    Py_ssize_t pr_generator = member_offset(process_type, "_generator");
    Py_ssize_t pr_waiting = member_offset(process_type, "_waiting_on");
    Py_ssize_t tmo_payload = member_offset(timeout_type, "_payload");
    Py_ssize_t sim_now = member_offset(sim_type, "now");
    if (ev_sim < 0 || ev_callbacks < 0 || ev_value < 0 || ev_ok < 0
        || ev_defused < 0 || pr_generator < 0 || pr_waiting < 0
        || tmo_payload < 0 || sim_now < 0) {
        Py_DECREF(resume_func);
        Py_DECREF(fire_func);
        return NULL;
    }

    if (S.str_throw == NULL) {
        S.str_throw = PyUnicode_InternFromString("throw");
        S.str_value = PyUnicode_InternFromString("value");
        S.str_push_ready = PyUnicode_InternFromString("_push_ready");
        S.str_process_event = PyUnicode_InternFromString("_process_event");
        if (S.str_throw == NULL || S.str_value == NULL
            || S.str_push_ready == NULL || S.str_process_event == NULL) {
            Py_DECREF(resume_func);
            Py_DECREF(fire_func);
            return NULL;
        }
    }

    Py_INCREF(event_type);
    Py_XSETREF(S.event_type, event_type);
    Py_INCREF(timeout_type);
    Py_XSETREF(S.timeout_type, timeout_type);
    Py_INCREF(process_type);
    Py_XSETREF(S.process_type, process_type);
    Py_INCREF(sim_type);
    Py_XSETREF(S.sim_type, sim_type);
    Py_INCREF(pending);
    Py_XSETREF(S.pending, pending);
    Py_INCREF(sim_error);
    Py_XSETREF(S.sim_error, sim_error);
    Py_XSETREF(S.resume_func, resume_func);
    Py_XSETREF(S.fire_func, fire_func);

    S.ev_sim = ev_sim;
    S.ev_callbacks = ev_callbacks;
    S.ev_value = ev_value;
    S.ev_ok = ev_ok;
    S.ev_defused = ev_defused;
    S.pr_generator = pr_generator;
    S.pr_waiting = pr_waiting;
    S.tmo_payload = tmo_payload;
    S.sim_now = sim_now;
    S.configured = 1;
    Py_RETURN_NONE;
}

static PyMethodDef ckernel_functions[] = {
    {"configure", ckernel_configure, METH_VARARGS,
     "configure(Event, Timeout, Process, Simulator, _PENDING, "
     "SimulationError)\n"
     "Wire the kernel to the Python-side simulation classes."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ckernel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._ckernel",
    .m_doc = "Compiled event-loop kernel (see repro.sim.kernel).",
    .m_size = -1,
    .m_methods = ckernel_functions,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (PyType_Ready(&CHandle_Type) < 0)
        return NULL;
    if (PyType_Ready(&CKernel_Type) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&ckernel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&CHandle_Type);
    if (PyModule_AddObject(module, "Handle",
                           (PyObject *)&CHandle_Type) < 0) {
        Py_DECREF(&CHandle_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&CKernel_Type);
    if (PyModule_AddObject(module, "CKernel",
                           (PyObject *)&CKernel_Type) < 0) {
        Py_DECREF(&CKernel_Type);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
