"""Pluggable event-loop kernels: the heap / ready-deque / dispatch core.

The simulator's event-loop core — the time-ordered heap, the zero-delay
ready deque, the shared insertion counter, tombstone accounting for
cancelled handles, and the dispatch loop itself — lives behind the
narrow :class:`EventKernel` interface defined here.  Two backends are
registered:

* ``python`` — the pure-Python reference implementation
  (:class:`PythonKernel`).  Always available; the semantics oracle.
* ``compiled`` — a hand-written CPython extension
  (:mod:`repro.sim._ckernel`) that keeps the heap and ready queue as raw
  C arrays and runs the dispatch loop in C, with inline fast paths for
  the two dominant callback families (process resume, timeout fire).
  Optional: built with ``python setup.py build_ext --inplace``; when the
  module is absent the kernel silently falls back to ``python``.

Both backends are **bit-identical in behavior**: entries process in
exactly the same order (FIFO at equal times via the shared counter), the
same exceptions escalate from the same places, and the golden-digest
suite pins their equivalence byte for byte.

Batched dispatch
----------------

The dispatch loop drains *batches* instead of re-deciding the world per
event, under rules that provably cannot reorder observable effects:

* **Same-timestamp heap runs.**  Once the clock advances to ``t``,
  consecutive heap entries at exactly ``t`` execute without re-checking
  ``until`` or re-writing the clock — the pop order (time, counter) is
  unchanged, only the per-event loop bookkeeping is batched away.
* **Ready chains.**  Triggered events drain in counter order; a heap
  entry at the current time interleaves exactly where its counter slots
  it.  The per-event decision is one comparison against the heap top.
* **Callback-family fast paths** (compiled backend).  A callback that
  is a process resume or a timeout fire is executed inline in C — the
  same slot reads and generator ``send``/``throw`` the Python code
  performs, without the interpreter frames.  Any other callable takes
  the generic call path, so the family detection is a pure fast path.

What may *not* batch: entries at different timestamps (the clock write
between them is observable), and anything that would skip the
ready-versus-heap counter comparison (zero-delay triggers during a
callback must interleave exactly as the shared counter dictates).

Backend selection
-----------------

``REPRO_KERNEL`` (environment) or ``repro --kernel`` (CLI) choose the
backend: ``auto`` (default — compiled when built, else python),
``python``, or ``compiled`` (hard requirement; raises when the module
is missing).  :func:`active_backend` reports what a new
:class:`~repro.sim.engine.Simulator` would use — perf artifacts are
tagged with it so trajectories from different backends are never
compared blindly.
"""

from __future__ import annotations

import collections
import functools
import heapq
import importlib
import os
import typing as t

from repro._errors import ConfigurationError, SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator
    from repro.sim.events import Event

#: Environment variable naming the kernel backend.
KERNEL_ENV = "REPRO_KERNEL"

#: Tombstone-compaction floor: below this many cancelled entries the heap
#: is left alone (re-heapifying a small heap costs more than carrying the
#: tombstones to their natural pops).
_COMPACT_MIN_TOMBSTONES = 64

#: Session-level backend override (set by :func:`set_default_backend`);
#: ``None`` defers to the environment.
_default_backend: str | None = None


def _noop() -> None:
    return None


class Handle:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_in`.
    Cancellation is O(1): the heap entry is tombstoned and skipped when
    popped (the kernel compacts the heap when tombstones dominate).

    The compiled backend returns its own handle type with the same
    ``time`` / ``callback`` / ``cancelled`` / ``cancel()`` surface.
    """

    __slots__ = ("time", "callback", "cancelled", "_kernel", "_queued")

    def __init__(self, time: float, callback: t.Callable[[], None],
                 kernel: "PythonKernel | None" = None):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self._kernel = kernel
        self._queued = kernel is not None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            self.callback = _noop
            if self._queued and self._kernel is not None:
                self._kernel.note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at t={self.time:.6f}"
        return f"<Handle {state}>"


class PythonKernel:
    """The pure-Python reference kernel.

    Owns the time heap (``(time, counter, handle)`` tuples via
    :mod:`heapq`), the zero-delay ready deque, the insertion counter
    shared between them (FIFO interleaving at equal times), and the
    tombstone count for cancelled handles.
    """

    backend = "python"

    __slots__ = ("heap", "ready", "counter", "tombstones")

    def __init__(self) -> None:
        self.heap: list[tuple[float, int, Handle]] = []
        #: Triggered events awaiting processing at the current time, in
        #: insertion order; each carries its counter stamp in
        #: ``_qcounter``.
        self.ready: collections.deque["Event"] = collections.deque()
        self.counter = 0
        #: Cancelled entries still sitting in the heap.
        self.tombstones = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, time: float,
                 callback: t.Callable[[], None]) -> Handle:
        """Push ``callback`` onto the heap at absolute ``time``."""
        handle = Handle(time, callback, self)
        self.counter += 1
        heapq.heappush(self.heap, (time, self.counter, handle))
        return handle

    def schedule2(self, time: float, func: t.Callable[..., None],
                  a: t.Any, b: t.Any) -> Handle:
        """``schedule(time, partial(func, a, b))``, as one entry point.

        The reference backend builds the partial; the compiled backend
        stores the operands in the handle and skips the closure
        allocation.  Counter and ordering semantics are identical to
        :meth:`schedule`.
        """
        return self.schedule(time, functools.partial(func, a, b))

    def push_ready(self, event: "Event") -> None:
        """Queue a triggered event for zero-delay processing."""
        self.counter = event._qcounter = self.counter + 1
        self.ready.append(event)

    def note_cancel(self) -> None:
        """Account one newly tombstoned heap entry; compact when the
        tombstones outnumber the live entries."""
        self.tombstones += 1
        if (self.tombstones > _COMPACT_MIN_TOMBSTONES
                and self.tombstones * 2 > len(self.heap)):
            # Rebuilding via heapify preserves pop order exactly: entries
            # compare by the total (time, counter) order regardless of
            # their internal arrangement.  In-place (slice assignment)
            # so the run loop's local binding of the heap stays valid.
            self.heap[:] = [entry for entry in self.heap
                            if not entry[2].cancelled]
            heapq.heapify(self.heap)
            self.tombstones = 0

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _drop_tombstones(self) -> None:
        heap = self.heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2]._queued = False
            self.tombstones -= 1

    def next_time(self, now: float) -> float:
        """Time of the next entry, or ``inf`` if none remain."""
        if self.ready:
            # Ready events process at the current time; no heap entry can
            # be earlier (scheduling in the past is rejected).
            return now
        self._drop_tombstones()
        if not self.heap:
            return float("inf")
        return self.heap[0][0]

    def step(self, sim: "Simulator") -> None:
        """Process exactly one entry, advancing the simulator's clock."""
        self._drop_tombstones()
        heap = self.heap
        ready = self.ready
        if ready:
            # Heap entries scheduled at the current time before the ready
            # event keep their FIFO precedence via the shared counter.
            if heap and heap[0][0] == sim.now \
                    and heap[0][1] < ready[0]._qcounter:
                __, __, handle = heapq.heappop(heap)
                handle._queued = False
                handle.callback()
            else:
                sim._process_event(ready.popleft())
            return
        if not heap:
            raise SimulationError("nothing scheduled")
        time, __, handle = heapq.heappop(heap)
        handle._queued = False
        sim.now = time
        handle.callback()

    def run(self, sim: "Simulator", until: float) -> None:
        """Drain entries until the heap empties or the clock passes
        ``until`` (``inf`` = run to exhaustion).

        One merged loop instead of peek()/step() pairs: identical
        processing order, half the call overhead and one tombstone scan
        per iteration on the engine's hottest loop.  Same-timestamp heap
        entries drain as a batch — the clock is written once per
        distinct time and the ``until`` bound is re-checked only when
        time advances.
        """
        ready = self.ready
        heap = self.heap
        heappop = heapq.heappop
        now = sim.now
        while True:
            while heap and heap[0][2].cancelled:
                heappop(heap)[2]._queued = False
                self.tombstones -= 1
            if ready:
                # Ready events process at the current time; heap entries
                # already scheduled at this time keep FIFO precedence
                # via the shared counter.
                if (heap and heap[0][0] == now
                        and heap[0][1] < ready[0]._qcounter):
                    __, __, handle = heappop(heap)
                    handle._queued = False
                    handle.callback()
                else:
                    # Simulator._process_event, inlined.
                    event = ready.popleft()
                    callbacks = event.callbacks
                    event.callbacks = None
                    assert callbacks is not None, "event processed twice"
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise t.cast(BaseException, event._value)
                continue
            if not heap:
                break
            time = heap[0][0]
            if time != now:
                # Batch boundary: the clock only moves (and ``until``
                # only needs re-checking) when the timestamp actually
                # changes — ``now <= until`` is invariant inside a batch.
                if time > until:
                    break
                sim.now = now = time
            __, __, handle = heappop(heap)
            handle._queued = False
            handle.callback()

    def pending(self) -> int:
        """Live (non-tombstoned) entries awaiting processing."""
        return len(self.heap) + len(self.ready) - self.tombstones


# ----------------------------------------------------------------------
# Backend registry and selection
# ----------------------------------------------------------------------

def _load_compiled() -> t.Any | None:
    """The compiled extension module, or ``None`` when not built."""
    try:
        return importlib.import_module("repro.sim._ckernel")
    except ImportError:
        return None


_compiled_checked = False
_compiled_module: t.Any | None = None


def compiled_module() -> t.Any | None:
    """Cached lookup of the optional compiled kernel module."""
    global _compiled_checked, _compiled_module
    if not _compiled_checked:
        module = _load_compiled()
        if module is not None:
            # Hand the C side the Python types it fast-paths, and the
            # sentinel/exception objects it must share with events.py.
            from repro.sim import engine, events
            module.configure(
                events.Event, events.Timeout, engine.Process,
                engine.Simulator, events._PENDING, SimulationError)
        _compiled_module = module
        _compiled_checked = True
    return _compiled_module


def compiled_available() -> bool:
    """True when the compiled backend can actually be instantiated."""
    return compiled_module() is not None


_model_checked = False
_model_module: t.Any | None = None


def model_module() -> t.Any | None:
    """Cached lookup of the optional compiled *model* module.

    ``repro.sim._cmodel`` compiles the model layer above the event loop
    — the CPU scheduler's burst lifecycle and the service instance
    worker machine — and is selected alongside the compiled kernel
    (``--kernel compiled`` / ``REPRO_KERNEL=compiled`` / ``auto``).
    Like the kernel extension it is optional; when absent the
    pure-Python reference classes run.
    """
    global _model_checked, _model_module
    if not _model_checked:
        try:
            module = importlib.import_module("repro.sim._cmodel")
        except ImportError:
            module = None
        if module is not None:
            # Late imports: the model layer sits above this module, so
            # binding its types here at import time would be a cycle.
            from repro._errors import SchedulingError
            from repro.cpu.burst import CpuBurst, TaskGroup
            from repro.memory.system import MemorySystemModel
            from repro.services.instance import (
                ServiceContext,
                ServiceInstance,
                _worker_protocol_error,
            )
            from repro.services.request import Request
            from repro.sim import engine, events
            module.configure(
                events.Event, events._PENDING, SimulationError,
                engine.Simulator, CpuBurst, TaskGroup, Request,
                ServiceInstance, ServiceContext, _worker_protocol_error,
                SchedulingError, MemorySystemModel)
        _model_module = module
        _model_checked = True
    return _model_module


def model_available() -> bool:
    """True when the compiled model layer can actually be used."""
    return model_module() is not None


def available_backends() -> tuple[str, ...]:
    """The backends a :class:`~repro.sim.engine.Simulator` can use now."""
    if compiled_available():
        return ("python", "compiled")
    return ("python",)


def set_default_backend(name: str | None) -> None:
    """Set the session-wide default backend (``None`` → environment).

    Used by the CLI's ``--kernel`` flag and by test fixtures; validated
    on the next kernel creation, not here, so ``compiled`` may be set
    before the extension is importable.
    """
    global _default_backend
    if name is not None and name not in ("auto", "python", "compiled"):
        raise ConfigurationError(
            f"unknown kernel backend {name!r}; choose from "
            f"'auto', 'python', 'compiled'")
    _default_backend = name


def resolve_backend(name: str | None = None) -> str:
    """Resolve a backend request to a concrete backend name.

    Precedence: explicit ``name`` → :func:`set_default_backend` →
    ``REPRO_KERNEL`` environment → ``auto``.  ``auto`` resolves to
    ``compiled`` when the extension is importable, else ``python``.
    ``compiled`` is a hard requirement and raises when absent — the
    silent fallback belongs to ``auto`` only, so CI jobs that must
    exercise the compiled path fail loudly instead of quietly testing
    the wrong kernel.
    """
    if name is None:
        name = _default_backend
    if name is None:
        name = os.environ.get(KERNEL_ENV) or "auto"
    if name == "auto":
        return "compiled" if compiled_available() else "python"
    if name == "python":
        return "python"
    if name == "compiled":
        if not compiled_available():
            raise ConfigurationError(
                "kernel backend 'compiled' requested but "
                "repro.sim._ckernel is not built; run "
                "'python setup.py build_ext --inplace' or use "
                "REPRO_KERNEL=auto for automatic fallback")
        return "compiled"
    raise ConfigurationError(
        f"unknown kernel backend {name!r}; choose from "
        f"'auto', 'python', 'compiled'")


def active_backend() -> str:
    """The backend a newly created simulator would use right now."""
    return resolve_backend()


def make_kernel(name: str | None = None):
    """Instantiate the kernel for ``name`` (see :func:`resolve_backend`)."""
    backend = resolve_backend(name)
    if backend == "compiled":
        return compiled_module().CKernel()
    return PythonKernel()


class use_backend:
    """Context manager pinning the default backend (tests, CLI).

    ::

        with kernel.use_backend("compiled"):
            result = e2_load_scaling.run(settings)
    """

    def __init__(self, name: str | None):
        self.name = name
        self._saved: str | None = None

    def __enter__(self) -> "use_backend":
        global _default_backend
        self._saved = _default_backend
        set_default_backend(self.name)
        return self

    def __exit__(self, *exc_info: object) -> None:
        global _default_backend
        _default_backend = self._saved
