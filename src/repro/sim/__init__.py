"""Discrete-event simulation kernel.

A small, dependency-free DES core in the style of SimPy:

* :class:`~repro.sim.engine.Simulator` — the event loop and clock.
* :class:`~repro.sim.events.Event` — one-shot triggerable events.
* :class:`~repro.sim.engine.Process` — generator-based coroutines that
  ``yield`` events to wait on them.
* :class:`~repro.sim.resources.Resource` / :class:`~repro.sim.resources.Store`
  — capacity-limited resources and FIFO item queues.
* :class:`~repro.sim.rand.RandomStreams` — named, independently seeded
  random-number streams for reproducible experiments.

The kernel additionally exposes cheap *callback scheduling*
(:meth:`Simulator.call_at` / :meth:`Simulator.call_in`) with cancellable
handles, which the CPU scheduler uses for burst completions that must be
re-timed when execution rates change.

The event-loop core (heap, ready deque, dispatch loop) is pluggable:
:mod:`repro.sim.kernel` registers a pure-Python reference backend and an
optional compiled backend with identical behavior (``REPRO_KERNEL``
selects; automatic fallback when the extension is not built).
"""

from repro.sim.engine import Process, Simulator
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.rand import RandomStreams
from repro.sim.resources import Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
]
