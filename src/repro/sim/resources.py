"""Capacity-limited resources and FIFO stores for the simulation kernel."""

from __future__ import annotations

import collections
import typing as t

from repro._errors import SimulationError
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator


class Resource:
    """A counted resource with FIFO admission.

    ``acquire()`` returns an event that succeeds when a slot is granted;
    ``release()`` frees a slot and grants it to the oldest waiter.  Unlike
    SimPy there is no request-object handshake: the caller promises to call
    ``release()`` exactly once per successful acquire (service worker pools
    and database connection pools follow this discipline).
    """

    def __init__(self, sim: "Simulator", capacity: int):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: collections.deque[Event] = collections.deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquisitions still waiting."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request a slot; the returned event succeeds when granted."""
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed(self)
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Free one slot, handing it to the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError("release() without a matching acquire()")
        if self._waiters:
            # Slot transfers directly to the next waiter; _in_use unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    def __repr__(self) -> str:
        return (f"<Resource {self._in_use}/{self.capacity} in use, "
                f"{len(self._waiters)} waiting>")


class Store:
    """An unbounded-or-bounded FIFO queue of items.

    ``put(item)`` returns an event succeeding once the item is accepted
    (immediately unless the store is full); ``get()`` returns an event
    succeeding with the oldest item once one is available.
    """

    def __init__(self, sim: "Simulator", capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1: {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, object]] = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def getters_waiting(self) -> int:
        """Number of blocked ``get()`` calls."""
        return len(self._getters)

    @property
    def putters_waiting(self) -> int:
        """Number of blocked ``put()`` calls."""
        return len(self._putters)

    def put(self, item: object) -> Event:
        """Offer ``item``; the returned event succeeds once accepted."""
        event = Event(self.sim)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def try_put(self, item: object) -> bool:
        """Non-blocking put: accept ``item`` now or return ``False``."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Event:
        """Take the oldest item; the returned event succeeds with it."""
        event = Event(self.sim)
        items = self._items
        if items:
            item = items.popleft()
            # _admit_blocked_putter, inlined: gets outnumber blocked puts
            # by orders of magnitude on the worker hot path.
            if self._putters:
                put_event, blocked = self._putters.popleft()
                items.append(blocked)
                put_event.succeed()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def drain(self) -> list[object]:
        """Remove and return every queued item (blocked putters stay
        blocked; used for crash semantics — the owner decides their fate)."""
        items = list(self._items)
        self._items.clear()
        return items

    def _admit_blocked_putter(self) -> None:
        if self._putters:
            put_event, item = self._putters.popleft()
            self._items.append(item)
            put_event.succeed()

    def __repr__(self) -> str:
        cap = "inf" if self.capacity is None else str(self.capacity)
        return (f"<Store {len(self._items)}/{cap} items, "
                f"{len(self._getters)} getters, {len(self._putters)} putters>")
