"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot object that is *pending* until it either
succeeds with a value or fails with an exception.  Callbacks attached to a
pending event run when the simulator processes the triggered event; callbacks
attached after triggering run immediately at processing time.

Processes (see :mod:`repro.sim.engine`) wait on events by ``yield``-ing them.
"""

from __future__ import annotations

import typing as t

from repro._errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.sim.engine import Simulator

#: Sentinel for "event has not produced a value yet".
_PENDING = object()


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The interrupting party supplies an arbitrary ``cause`` describing why.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:
        return f"Interrupt(cause={self.cause!r})"


class Event:
    """A one-shot triggerable event bound to a simulator.

    Lifecycle: *pending* → (``succeed`` | ``fail``) → *triggered* →
    *processed* (callbacks ran).  Re-triggering raises
    :class:`~repro._errors.SimulationError`.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused",
                 "_qcounter")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with this event when it is processed.  Set to
        #: ``None`` once processed.
        self.callbacks: list[t.Callable[[Event], None]] | None = []
        self._value: object = _PENDING
        self._ok: bool | None = None
        self._defused = False
        #: Insertion-counter stamp assigned when the triggered event is
        #: queued on the pure-Python kernel's ready deque (shared with
        #: the time heap for FIFO interleaving); carried on the event
        #: itself so enqueueing allocates no tuple.  The compiled kernel
        #: keeps the stamp in its own ring buffer and leaves this slot
        #: untouched.
        self._qcounter = 0

    @property
    def triggered(self) -> bool:
        """True once the event has succeeded or failed."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> object:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"value of {self!r} is not yet available")
        return self._value

    @property
    def defused(self) -> bool:
        """True when a failure has been claimed by a waiter.

        An unclaimed failure escalates out of
        :meth:`~repro.sim.engine.Simulator.run` to avoid silently dropped
        errors.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failure as handled so it does not crash the simulation."""
        self._defused = True

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        # Simulator._schedule_event zero-delay fast path: this is the
        # single hottest call in the engine, so it goes straight to the
        # kernel's ready queue via the bound method cached on the sim.
        self.sim._push_ready(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._push_ready(self)
        return self

    def add_callback(self, callback: t.Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event is processed.

        If the event was already processed the callback runs immediately.
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that succeeds after a fixed delay.

    Created via :meth:`~repro.sim.engine.Simulator.timeout`; the constructor
    schedules it immediately.
    """

    __slots__ = ("delay", "_payload")

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self.delay = delay
        self._payload = value
        sim.call_in(delay, self._fire)

    def _fire(self) -> None:
        self._ok = True
        self._value = self._payload
        # Process directly instead of re-queueing: the timeout already owns
        # its slot in the time heap, so an extra hop would only distort
        # same-timestamp ordering.
        self.sim._process_event(self)

    def succeed(self, value: object = None) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")

    def fail(self, exception: BaseException) -> "Event":  # pragma: no cover
        raise SimulationError("Timeout events trigger themselves")


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: t.Iterable[Event]):
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        for event in self.events:
            if event.sim is not sim:
                raise SimulationError(
                    "cannot mix events from different simulators")
        self._count = 0
        if not self.events:
            self._ok = True
            self._value = {}
            sim._schedule_event(self)
            return
        for event in self.events:
            event.add_callback(self._check)

    def _satisfied(self, n_triggered: int) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                # A sibling failure after the condition resolved must still
                # be claimed, otherwise the simulator escalates it.
                event.defuse()
            return
        if not event.ok:
            event.defuse()
            self.fail(t.cast(BaseException, event.value))
            return
        self._count += 1
        if self._satisfied(self._count):
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, object]:
        return {e: e.value for e in self.events if e.triggered and e.ok}


class AllOf(_Condition):
    """Succeeds when *all* component events have succeeded.

    The value is a dict mapping each event to its value.  Fails as soon as
    any component fails.
    """

    __slots__ = ()

    def _satisfied(self, n_triggered: int) -> bool:
        return n_triggered == len(self.events)


class AnyOf(_Condition):
    """Succeeds when *any* component event has succeeded.

    The value is a dict of the events that had succeeded at trigger time.
    """

    __slots__ = ()

    def _satisfied(self, n_triggered: int) -> bool:
        return n_triggered >= 1
