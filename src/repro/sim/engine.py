"""The simulation event loop, clock, and process machinery."""

from __future__ import annotations

import heapq
import typing as t

from repro._errors import SimulationError
from repro.sim.events import Event, Interrupt, Timeout


class Handle:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_in`.
    Cancellation is O(1): the heap entry is tombstoned and skipped when
    popped.
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: t.Callable[[], None]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True
        self.callback = _noop

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at t={self.time:.6f}"
        return f"<Handle {state}>"


def _noop() -> None:
    return None


class Simulator:
    """Discrete-event simulator: a clock plus a time-ordered work heap.

    Two scheduling styles coexist:

    * **Events & processes** — rich SimPy-style coroutines for modelling
      protocol logic (service handlers, load generators).
    * **Raw callbacks** — :meth:`call_in` returns a cancellable
      :class:`Handle`; used on hot paths (CPU burst completions) where
      events would be needless overhead and cancellation must be cheap.

    Entries at equal times are processed in insertion order (FIFO), which
    makes runs deterministic.
    """

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[tuple[float, int, Handle]] = []
        self._counter = 0
        self._running = False

    # ------------------------------------------------------------------
    # Raw callback scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: t.Callable[[], None]) -> Handle:
        """Schedule ``callback()`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}")
        handle = Handle(time, callback)
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, handle))
        return handle

    def call_in(self, delay: float, callback: t.Callable[[], None]) -> Handle:
        """Schedule ``callback()`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for callback processing."""
        self.call_in(delay, lambda: self._process_event(event))

    def _process_event(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        if not event.ok and not event.defused:
            exc = t.cast(BaseException, event.value)
            raise exc

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator[Event, object, object]) -> "Process":
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none remain."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process exactly one scheduled entry, advancing the clock."""
        while True:
            if not self._heap:
                raise SimulationError("nothing scheduled")
            time, __, handle = heapq.heappop(self._heap)
            if not handle.cancelled:
                break
        self.now = time
        handle.callback()

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        try:
            if until is not None and until < self.now:
                raise SimulationError(
                    f"until={until} is in the past (now={self.now})")
            while True:
                next_time = self.peek()
                if next_time == float("inf"):
                    break
                if until is not None and next_time > until:
                    break
                self.step()
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._running = False

    def __repr__(self) -> str:
        return f"<Simulator now={self.now:.6f} pending={len(self._heap)}>"


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator ``yield``\\ s :class:`Event` objects; the process
    resumes when each yielded event is processed, receiving the event's
    value (or having the exception thrown in, if it failed).  The process
    itself is an event that succeeds with the generator's return value.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: Simulator, generator: t.Generator[Event, object, object]):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off on the next processing slot so construction order does
        # not matter within a time step.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on (the
        event stays valid and may trigger later without effect).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver on the next processing slot, preserving determinism.
        carrier = Event(self.sim)
        carrier.add_callback(lambda __: self._advance(exc, failed=True))
        carrier.succeed()

    def _resume(self, event: Event) -> None:
        if self.triggered:
            if not event.ok:
                event.defuse()
            return
        self._waiting_on = None
        if event.ok:
            self._advance(event.value, failed=False)
        else:
            event.defuse()
            self._advance(t.cast(BaseException, event.value), failed=True)

    def _advance(self, value: object, failed: bool) -> None:
        try:
            if failed:
                target = self._generator.throw(t.cast(BaseException, value))
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process yielded a non-event: {target!r}")
            self._generator.throw(error)
            return
        if target.sim is not self.sim:
            error = SimulationError("yielded event belongs to another simulator")
            self._generator.throw(error)
            return
        self._waiting_on = target
        target.add_callback(self._resume)
