"""The simulation event loop, clock, and process machinery."""

from __future__ import annotations

import collections
import gc
import heapq
import typing as t

from repro._errors import SimulationError
from repro.sim.events import _PENDING, Event, Interrupt, Timeout

#: Tombstone-compaction floor: below this many cancelled entries the heap
#: is left alone (re-heapifying a small heap costs more than carrying the
#: tombstones to their natural pops).
_COMPACT_MIN_TOMBSTONES = 64


class Handle:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`Simulator.call_at` / :meth:`Simulator.call_in`.
    Cancellation is O(1): the heap entry is tombstoned and skipped when
    popped (the simulator compacts the heap when tombstones dominate).
    """

    __slots__ = ("time", "callback", "cancelled", "_sim", "_queued")

    def __init__(self, time: float, callback: t.Callable[[], None],
                 sim: "Simulator | None" = None):
        self.time = time
        self.callback = callback
        self.cancelled = False
        self._sim = sim
        self._queued = sim is not None

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            self.callback = _noop
            if self._queued and self._sim is not None:
                self._sim._note_cancel()

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else f"at t={self.time:.6f}"
        return f"<Handle {state}>"


def _noop() -> None:
    return None


class Simulator:
    """Discrete-event simulator: a clock plus a time-ordered work heap.

    Two scheduling styles coexist:

    * **Events & processes** — rich SimPy-style coroutines for modelling
      protocol logic (service handlers, load generators).
    * **Raw callbacks** — :meth:`call_in` returns a cancellable
      :class:`Handle`; used on hot paths (CPU burst completions) where
      events would be needless overhead and cancellation must be cheap.

    Entries at equal times are processed in insertion order (FIFO), which
    makes runs deterministic.  Zero-delay event processing — the dominant
    scheduling pattern (every ``succeed``/``fail``) — bypasses the heap
    entirely: triggered events land on a ready deque stamped with the
    same global insertion counter the heap uses, so the interleaving
    with same-time heap entries is exactly the FIFO order a pure heap
    would produce, without the push/pop and closure allocation.
    """

    __slots__ = ("now", "_heap", "_counter", "_running", "_ready",
                 "_tombstones")

    def __init__(self, start_time: float = 0.0):
        self.now = float(start_time)
        self._heap: list[tuple[float, int, Handle]] = []
        self._counter = 0
        self._running = False
        #: Triggered events awaiting processing at the current time, in
        #: insertion order; each carries its counter stamp in
        #: ``_qcounter``.
        self._ready: collections.deque[Event] = collections.deque()
        #: Cancelled entries still sitting in the heap.
        self._tombstones = 0

    # ------------------------------------------------------------------
    # Raw callback scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: t.Callable[[], None]) -> Handle:
        """Schedule ``callback()`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}")
        handle = Handle(time, callback, self)
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, handle))
        return handle

    def _note_cancel(self) -> None:
        """Account one newly tombstoned heap entry; compact when the
        tombstones outnumber the live entries."""
        self._tombstones += 1
        if (self._tombstones > _COMPACT_MIN_TOMBSTONES
                and self._tombstones * 2 > len(self._heap)):
            # Rebuilding via heapify preserves pop order exactly: entries
            # compare by the total (time, counter) order regardless of
            # their internal arrangement.  In-place (slice assignment)
            # so the run loop's local binding of the heap stays valid.
            self._heap[:] = [entry for entry in self._heap
                             if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._tombstones = 0

    def call_in(self, delay: float, callback: t.Callable[[], None]) -> Handle:
        """Schedule ``callback()`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        # call_at inlined: this is the hot scheduling entry point (burst
        # completions, sibling re-rates, RPC hops all land here).
        time = self.now + delay
        handle = Handle(time, callback, self)
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, handle))
        return handle

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for callback processing.

        The ubiquitous zero-delay case takes the ready-deque fast path;
        it shares the heap's insertion counter, so processing order is
        identical to scheduling a heap entry at the current time.
        """
        if delay == 0.0:
            self._counter += 1
            event._qcounter = self._counter
            self._ready.append(event)
        else:
            self.call_in(delay, lambda: self._process_event(event))

    def _process_event(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        # Direct slot reads (not the ok/defused properties): this runs
        # once per processed event.
        if not event._ok and not event._defused:
            exc = t.cast(BaseException, event._value)
            raise exc

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator[Event, object, object]) -> "Process":
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def _drop_heap_tombstones(self) -> None:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)[2]._queued = False
            self._tombstones -= 1

    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none remain."""
        if self._ready:
            # Ready events process at the current time; no heap entry can
            # be earlier (scheduling in the past is rejected).
            return self.now
        self._drop_heap_tombstones()
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process exactly one scheduled entry, advancing the clock."""
        self._drop_heap_tombstones()
        heap = self._heap
        ready = self._ready
        if ready:
            # Heap entries scheduled at the current time before the ready
            # event keep their FIFO precedence via the shared counter.
            if heap and heap[0][0] == self.now \
                    and heap[0][1] < ready[0]._qcounter:
                __, __, handle = heapq.heappop(heap)
                handle._queued = False
                handle.callback()
            else:
                self._process_event(ready.popleft())
            return
        if not heap:
            raise SimulationError("nothing scheduled")
        time, __, handle = heapq.heappop(heap)
        handle._queued = False
        self.now = time
        handle.callback()

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        # One merged loop instead of peek()/step() pairs: identical
        # processing order, half the call overhead and one tombstone
        # scan per iteration on the engine's hottest loop.  The heap is
        # bound once — compaction mutates the list in place.  Cyclic GC
        # is suspended for the duration: the loop allocates millions of
        # short-lived acyclic objects (events, handles, heap tuples)
        # whose refcounts free them immediately, while repeated gen-2
        # scans of the long-lived process graph would buy nothing.
        ready = self._ready
        heap = self._heap
        heappop = heapq.heappop
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if until is not None and until < self.now:
                raise SimulationError(
                    f"until={until} is in the past (now={self.now})")
            while True:
                while heap and heap[0][2].cancelled:
                    heappop(heap)[2]._queued = False
                    self._tombstones -= 1
                if ready:
                    # Ready events process at the current time; heap
                    # entries already scheduled at this time keep FIFO
                    # precedence via the shared counter.
                    if (heap and heap[0][0] == self.now
                            and heap[0][1] < ready[0]._qcounter):
                        __, __, handle = heappop(heap)
                        handle._queued = False
                        handle.callback()
                    else:
                        # _process_event, inlined.
                        event = ready.popleft()
                        callbacks = event.callbacks
                        event.callbacks = None
                        assert callbacks is not None, "event processed twice"
                        for callback in callbacks:
                            callback(event)
                        if not event._ok and not event._defused:
                            raise t.cast(BaseException, event._value)
                    continue
                if not heap:
                    break
                time = heap[0][0]
                if until is not None and time > until:
                    break
                __, __, handle = heappop(heap)
                handle._queued = False
                self.now = time
                handle.callback()
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def __repr__(self) -> str:
        pending = len(self._heap) + len(self._ready) - self._tombstones
        return f"<Simulator now={self.now:.6f} pending={pending}>"


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator ``yield``\\ s :class:`Event` objects; the process
    resumes when each yielded event is processed, receiving the event's
    value (or having the exception thrown in, if it failed).  The process
    itself is an event that succeeds with the generator's return value.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: Simulator, generator: t.Generator[Event, object, object]):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off on the next processing slot so construction order does
        # not matter within a time step.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on (the
        event stays valid and may trigger later without effect).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver on the next processing slot, preserving determinism.
        carrier = Event(self.sim)
        carrier.add_callback(lambda __: self._advance(exc, failed=True))
        carrier.succeed()

    def _resume(self, event: Event) -> None:
        # Direct slot reads and an inlined _advance throughout: this runs
        # once per process wakeup, the single most frequent callback in
        # the simulator.
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        self._waiting_on = None
        if event._ok:
            failed = False
        else:
            event._defused = True
            failed = True
        self._advance(event._value, failed)

    def _advance(self, value: object, failed: bool) -> None:
        try:
            if failed:
                target = self._generator.throw(t.cast(BaseException, value))
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process yielded a non-event: {target!r}")
            self._generator.throw(error)
            return
        if target.sim is not self.sim:
            error = SimulationError("yielded event belongs to another simulator")
            self._generator.throw(error)
            return
        self._waiting_on = target
        # add_callback, inlined (the already-processed branch included).
        callbacks = target.callbacks
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume)
