"""The simulation event loop, clock, and process machinery.

The event-loop core (time heap, ready deque, insertion counter,
tombstone compaction, dispatch loop) lives behind the pluggable
:class:`~repro.sim.kernel.EventKernel` interface in
:mod:`repro.sim.kernel`; the :class:`Simulator` here owns the clock and
the process machinery and delegates scheduling/dispatch to its kernel.
"""

from __future__ import annotations

import gc
import typing as t

from repro._errors import SimulationError
from repro.sim.events import _PENDING, Event, Interrupt, Timeout
from repro.sim.kernel import Handle, make_kernel

__all__ = ["Handle", "Simulator", "Process"]


class Simulator:
    """Discrete-event simulator: a clock plus a time-ordered work heap.

    Two scheduling styles coexist:

    * **Events & processes** — rich SimPy-style coroutines for modelling
      protocol logic (service handlers, load generators).
    * **Raw callbacks** — :meth:`call_in` returns a cancellable
      :class:`~repro.sim.kernel.Handle`; used on hot paths (CPU burst
      completions) where events would be needless overhead and
      cancellation must be cheap.

    Entries at equal times are processed in insertion order (FIFO), which
    makes runs deterministic.  Zero-delay event processing — the dominant
    scheduling pattern (every ``succeed``/``fail``) — bypasses the heap
    entirely: triggered events land on the kernel's ready queue stamped
    with the same global insertion counter the heap uses, so the
    interleaving with same-time heap entries is exactly the FIFO order a
    pure heap would produce, without the push/pop and closure allocation.

    ``kernel`` picks the event-loop backend (``"python"``,
    ``"compiled"``, ``"auto"``; default: the session/environment
    selection — see :mod:`repro.sim.kernel`).  Backends are
    behavior-identical; only speed differs.
    """

    __slots__ = ("now", "_running", "_kernel", "schedule", "schedule2",
                 "_push_ready")

    def __init__(self, start_time: float = 0.0, kernel: str | None = None):
        self.now = float(start_time)
        self._running = False
        self._kernel = make_kernel(kernel)
        #: Bound kernel entry points, cached as slots: ``schedule`` and
        #: ``_push_ready`` are the two hottest calls in the simulator
        #: (every burst completion / RPC hop, every ``succeed``), so hot
        #: call sites pay one attribute load, not two.  ``schedule2``
        #: is ``schedule`` with the callback's two operands carried in
        #: the handle instead of a per-call closure (RPC hops).
        self.schedule = self._kernel.schedule
        self.schedule2 = self._kernel.schedule2
        self._push_ready = self._kernel.push_ready

    @property
    def kernel_backend(self) -> str:
        """Which event-loop backend this simulator runs on."""
        return self._kernel.backend

    # ------------------------------------------------------------------
    # Raw callback scheduling
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: t.Callable[[], None]) -> Handle:
        """Schedule ``callback()`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self.now}")
        return self.schedule(time, callback)

    def call_in(self, delay: float, callback: t.Callable[[], None]) -> Handle:
        """Schedule ``callback()`` after ``delay`` simulated time units."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.schedule(self.now + delay, callback)

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Queue a triggered event for callback processing.

        The ubiquitous zero-delay case takes the kernel's ready-queue
        fast path; it shares the heap's insertion counter, so processing
        order is identical to scheduling a heap entry at the current
        time.
        """
        if delay == 0.0:
            self._push_ready(event)
        else:
            self.call_in(delay, lambda: self._process_event(event))

    def _process_event(self, event: Event) -> None:
        callbacks = event.callbacks
        event.callbacks = None
        assert callbacks is not None, "event processed twice"
        for callback in callbacks:
            callback(event)
        # Direct slot reads (not the ok/defused properties): this runs
        # once per processed event.
        if not event._ok and not event._defused:
            exc = t.cast(BaseException, event._value)
            raise exc

    def event(self) -> Event:
        """Create a fresh pending :class:`Event` bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that succeeds ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: t.Generator[Event, object, object]) -> "Process":
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled entry, or ``inf`` if none remain."""
        return self._kernel.next_time(self.now)

    def step(self) -> None:
        """Process exactly one scheduled entry, advancing the clock."""
        self._kernel.step(self)

    def run(self, until: float | None = None) -> None:
        """Run until the heap drains or the clock reaches ``until``.

        When ``until`` is given the clock is advanced to exactly ``until``
        even if the last event fires earlier, mirroring SimPy semantics.

        The dispatch loop itself belongs to the kernel backend.  Cyclic
        GC is suspended for the duration: the loop allocates millions of
        short-lived acyclic objects (events, handles, heap entries)
        whose refcounts free them immediately, while repeated gen-2
        scans of the long-lived process graph would buy nothing.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            if until is not None and until < self.now:
                raise SimulationError(
                    f"until={until} is in the past (now={self.now})")
            self._kernel.run(self,
                             float("inf") if until is None else until)
            if until is not None:
                self.now = max(self.now, until)
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def __repr__(self) -> str:
        return (f"<Simulator now={self.now:.6f} "
                f"pending={self._kernel.pending()}>")


class Process(Event):
    """A coroutine driven by the simulator.

    The wrapped generator ``yield``\\ s :class:`Event` objects; the process
    resumes when each yielded event is processed, receiving the event's
    value (or having the exception thrown in, if it failed).  The process
    itself is an event that succeeds with the generator's return value.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: Simulator, generator: t.Generator[Event, object, object]):
        if not hasattr(generator, "throw"):
            raise SimulationError(
                f"process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off on the next processing slot so construction order does
        # not matter within a time step.
        bootstrap = Event(sim)
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is an error; interrupting a process
        that is waiting detaches it from the event it was waiting on (the
        event stays valid and may trigger later without effect).
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished {self!r}")
        if self._waiting_on is self:
            raise SimulationError("a process cannot interrupt itself")
        exc = Interrupt(cause)
        target = self._waiting_on
        self._waiting_on = None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        # Deliver on the next processing slot, preserving determinism.
        carrier = Event(self.sim)
        carrier.add_callback(lambda __: self._advance(exc, failed=True))
        carrier.succeed()

    def _resume(self, event: Event) -> None:
        # Direct slot reads and an inlined _advance throughout: this runs
        # once per process wakeup, the single most frequent callback in
        # the simulator.  The compiled kernel executes an equivalent
        # inline fast path in C; this body is the reference semantics.
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        self._waiting_on = None
        if event._ok:
            failed = False
        else:
            event._defused = True
            failed = True
        self._advance(event._value, failed)

    def _advance(self, value: object, failed: bool) -> None:
        try:
            if failed:
                target = self._generator.throw(t.cast(BaseException, value))
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            error = SimulationError(
                f"process yielded a non-event: {target!r}")
            self._generator.throw(error)
            return
        if target.sim is not self.sim:
            error = SimulationError("yielded event belongs to another simulator")
            self._generator.throw(error)
            return
        self._waiting_on = target
        # add_callback, inlined (the already-processed branch included).
        callbacks = target.callbacks
        if callbacks is None:
            self._resume(target)
        else:
            callbacks.append(self._resume)
