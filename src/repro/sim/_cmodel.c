/* Compiled model layer for repro: scheduler core + worker machines.
 *
 * Two hand-written CPython objects that mirror the pure-Python model
 * hot path bit for bit:
 *
 * - SchedCore executes repro.cpu.scheduler.CpuScheduler's burst
 *   lifecycle (submit placement, idle-CPU scoring, run queues, work
 *   stealing, SMT sibling re-rate, completion accounting) over raw C
 *   arrays, calling back into Python only where the reference does —
 *   the perf model's hooks, kernel scheduling, handle cancellation,
 *   and the burst's `done` completion — in exactly the reference's
 *   order.  CompiledCpuScheduler owns one and delegates to it.
 *
 * - CWorker is repro.services.instance._WorkerMachine in C: one
 *   replica worker that registers itself as the event callback for
 *   whatever it waits on and drives the endpoint handler generator
 *   with send/throw, chaining through already-processed events inline.
 *
 * Both consume the kernel's shared insertion counter identically to
 * their Python references on every path, so golden digests are
 * byte-for-byte unchanged (the determinism contract pinned by
 * tests/golden).  Rare paths — yield-protocol violations, expired or
 * failed requests, escalations — call the shared Python helpers
 * rather than duplicating their logic.
 *
 * Like _ckernel.c, the module is inert until configure() hands it the
 * Python-side types and helpers; repro.sim.kernel.model_module() calls
 * configure() immediately after import.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>   /* PyMemberDef layout (pre-3.12 headers) */
#include <stdint.h>

#if PY_VERSION_HEX < 0x030A0000
#  error "repro.sim._cmodel requires Python 3.10+ (PyIter_Send)"
#endif

/* Keep in sync with repro.cpu.scheduler._MIN_RATE. */
#define MIN_RATE 1e-9

/* ------------------------------------------------------------------ */
/* Module state (configured once by repro.sim.kernel)                  */
/* ------------------------------------------------------------------ */

typedef struct {
    int configured;
    PyObject *event_type;      /* repro.sim.events.Event */
    PyObject *pending;         /* repro.sim.events._PENDING */
    PyObject *sim_error;       /* repro._errors.SimulationError */
    PyObject *sim_type;        /* repro.sim.engine.Simulator */
    PyObject *burst_type;      /* repro.cpu.burst.CpuBurst */
    PyObject *group_type;      /* repro.cpu.burst.TaskGroup */
    PyObject *request_type;    /* repro.services.request.Request */
    PyObject *instance_type;   /* repro.services.instance.ServiceInstance */
    PyObject *context_type;    /* repro.services.instance.ServiceContext */
    PyObject *protocol_error;  /* instance._worker_protocol_error */
    PyObject *sched_error;     /* repro._errors.SchedulingError */
    PyObject *memmodel_type;   /* repro.memory.system.MemorySystemModel */
    PyObject *str_throw, *str_succeed, *str_fail, *str_cancel;
    PyObject *str_value, *str_get, *str_resolve, *str_respond;
    PyObject *str_tracer, *str_record, *str_handler;
    PyObject *str_sim, *str_rpc;
    PyObject *str_epoch, *str_mem_load, *str_total, *str_intensity;
    /* Slot offsets (stable across subclasses). */
    Py_ssize_t ev_sim, ev_callbacks, ev_value, ev_ok, ev_defused,
               ev_qcounter;
    Py_ssize_t sim_now, sim_push_ready;
    Py_ssize_t b_demand, b_group, b_done, b_submitted, b_started,
               b_finished, b_cpu_index, b_wall;
    Py_ssize_t g_group_id, g_profile, g_cpu_time, g_last_ccx, g_completed;
    Py_ssize_t rq_endpoint, rq_done, rq_started, rq_completed, rq_deadline;
    Py_ssize_t in_deployment, in_spec, in_queue, in_outstanding,
               in_completed, in_pause, in_group, in_demand_factor;
} ModelState;

static ModelState M;

static inline PyObject *
slot_get(PyObject *obj, Py_ssize_t offset)
{
    return *(PyObject **)((char *)obj + offset);
}

static inline void
slot_store(PyObject *obj, Py_ssize_t offset, PyObject *value)
{
    PyObject **slot = (PyObject **)((char *)obj + offset);
    PyObject *old = *slot;
    Py_INCREF(value);
    *slot = value;
    Py_XDECREF(old);
}

/* Truthiness of _ok/_defused (True/False/None in this codebase). */
static inline int
truthy(PyObject *obj)
{
    if (obj == Py_True)
        return 1;
    if (obj == Py_False || obj == Py_None || obj == NULL)
        return 0;
    int r = PyObject_IsTrue(obj);
    if (r < 0) {
        PyErr_Clear();
        return 0;
    }
    return r;
}

/* value of a float-bearing slot; -1.0 with error set on failure. */
static inline double
as_double(PyObject *obj)
{
    if (PyFloat_CheckExact(obj))
        return PyFloat_AS_DOUBLE(obj);
    return PyFloat_AsDouble(obj);
}

/* slot += delta for PyLong-bearing counter slots. */
static int
slot_add_long(PyObject *obj, Py_ssize_t offset, long delta)
{
    PyObject *cur = slot_get(obj, offset);
    long long v = PyLong_AsLongLong(cur);
    if (v == -1 && PyErr_Occurred())
        return -1;
    PyObject *next = PyLong_FromLongLong(v + delta);
    if (next == NULL)
        return -1;
    slot_store(obj, offset, next);
    Py_DECREF(next);
    return 0;
}

/* slot += delta for float-bearing accumulator slots. */
static int
slot_add_double(PyObject *obj, Py_ssize_t offset, double delta)
{
    double v = as_double(slot_get(obj, offset));
    if (v == -1.0 && PyErr_Occurred())
        return -1;
    PyObject *next = PyFloat_FromDouble(v + delta);
    if (next == NULL)
        return -1;
    slot_store(obj, offset, next);
    Py_DECREF(next);
    return 0;
}

/* `Event(sim).fail(exc)` — deferred escalation on the next slot. */
static int
escalate(PyObject *sim, PyObject *exc)
{
    PyObject *event = PyObject_CallOneArg(M.event_type, sim);
    if (event == NULL)
        return -1;
    PyObject *res = PyObject_CallMethodOneArg(event, M.str_fail, exc);
    Py_DECREF(event);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* done.succeed(value), inlined for exact Event / exact Simulator. */
static int
trigger_succeed(PyObject *done, PyObject *value)
{
    if (Py_TYPE(done) != (PyTypeObject *)M.event_type) {
        PyObject *res = PyObject_CallMethodOneArg(done, M.str_succeed,
                                                  value);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    if (slot_get(done, M.ev_value) != M.pending) {
        PyObject *msg = PyUnicode_FromFormat(
            "%R has already been triggered", done);
        if (msg != NULL) {
            PyErr_SetObject(M.sim_error, msg);
            Py_DECREF(msg);
        }
        return -1;
    }
    slot_store(done, M.ev_ok, Py_True);
    slot_store(done, M.ev_value, value);
    PyObject *esim = slot_get(done, M.ev_sim);
    if (esim == NULL) {
        PyErr_SetString(PyExc_AttributeError, "sim");
        return -1;
    }
    PyObject *push = (Py_TYPE(esim) == (PyTypeObject *)M.sim_type)
        ? slot_get(esim, M.sim_push_ready) : NULL;
    PyObject *res;
    if (push != NULL)
        res = PyObject_CallOneArg(push, done);
    else {
        res = PyObject_GetAttrString(esim, "_push_ready");
        if (res != NULL) {
            PyObject *bound = res;
            res = PyObject_CallOneArg(bound, done);
            Py_DECREF(bound);
        }
    }
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* A fresh pending Event on `sim`, equivalent to `Event(sim)` for the
 * exact Event type but without entering the interpreter. */
static PyObject *
make_event(PyObject *sim)
{
    PyTypeObject *type = (PyTypeObject *)M.event_type;
    PyObject *event = type->tp_alloc(type, 0);
    if (event == NULL)
        return NULL;
    PyObject *callbacks = PyList_New(0);
    if (callbacks == NULL) {
        Py_DECREF(event);
        return NULL;
    }
    Py_INCREF(sim);
    *(PyObject **)((char *)event + M.ev_sim) = sim;
    *(PyObject **)((char *)event + M.ev_callbacks) = callbacks;
    Py_INCREF(M.pending);
    *(PyObject **)((char *)event + M.ev_value) = M.pending;
    Py_INCREF(Py_None);
    *(PyObject **)((char *)event + M.ev_ok) = Py_None;
    Py_INCREF(Py_False);
    *(PyObject **)((char *)event + M.ev_defused) = Py_False;
    PyObject *zero = PyLong_FromLong(0);
    if (zero == NULL) {
        Py_DECREF(event);
        return NULL;
    }
    *(PyObject **)((char *)event + M.ev_qcounter) = zero;
    return event;
}

/* ------------------------------------------------------------------ */
/* SchedCore: the CPU scheduler's burst lifecycle                      */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject *burst;       /* strong; NULL when the CPU is not running */
    PyObject *handle;      /* strong; the pending completion entry */
    double rate;
    double segment_start;
    double remaining;
    double start_time;     /* burst.started_at, as a double */
} CRun;

typedef struct {
    PyObject **buf;        /* ring of strong burst references */
    Py_ssize_t head, len, cap;   /* cap is a power of two (or 0) */
} CQueue;

typedef struct {
    int *allowed;          /* ascending online CPU ids of the mask */
    int n_allowed;
    uint64_t *mask;        /* bitmask over CPU ids, nwords words */
} GroupInfo;

typedef struct SchedCoreObject {
    PyObject_HEAD
    PyObject *sim;             /* Simulator */
    PyObject *kschedule;       /* bound kernel.schedule */
    PyObject *perf_model;
    PyObject *perf_cpi;        /* bound perf hooks, looked up once */
    PyObject *perf_on_start;
    PyObject *perf_on_complete;
    PyObject *perf_breakdown;  /* bound breakdown (fast perf path only) */
    PyObject *infl_cache;      /* the model's _inflation_cache dict */
    PyObject *register_cb;     /* bound wrapper._core_register */
    PyObject *groups;          /* dict: TaskGroup -> PyLong gid */
    PyObject **cpus;           /* [n] strong Cpu objects */
    PyObject **complete_cbs;   /* [n] strong CCompleteCB */
    PyObject **cpu_longs;      /* [n] cached PyLong(i) */
    PyObject **ccx_longs;      /* [n] cached PyLong(ccx_of[i]) */
    PyObject **ccx_objs;       /* [n] cached cpu.ccx.index */
    PyObject **node_objs;      /* [n] cached cpu.node.index */
    CRun *run;                 /* [n] */
    CQueue *queues;            /* [n] */
    int *depths;               /* [n] mirrors queues[i].len */
    char *idle;                /* [n] */
    char *online;              /* [n] */
    int *sibling;              /* [n]; -1 = no SMT sibling */
    int *core_of;              /* [n] */
    int *ccx_of;               /* [n] */
    int *busy_threads;         /* [n_cores] */
    double *busy_time;         /* [n] */
    double *freq_factor;       /* [total_cores + 1] */
    uint64_t **steal_mask;     /* [n] x nwords eligibility bits */
    GroupInfo *ginfo;
    Py_ssize_t n_groups, ginfo_cap;
    Py_ssize_t idle_count;
    double smt_factor[2];
    double bw_capacity, bw_weight;
    long long dispatched, stolen;
    int n, n_cores, total_cores, active_cores, nwords;
    int fast_perf;             /* perf_model is exactly MemorySystemModel
                                  with no counter sink: hooks inlined */
    int has_capacity;          /* bandwidth congestion model enabled */
} SchedCoreObject;

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    SchedCoreObject *core;     /* strong (collected via GC) */
    int cpu;
} CCompleteCBObject;

static PyTypeObject SchedCore_Type;
static PyTypeObject CCompleteCB_Type;

static int core_complete(SchedCoreObject *c, int cpu);

/* ---- queue ring ---- */

static int
cq_push(CQueue *q, PyObject *burst)
{
    if (q->len == q->cap) {
        Py_ssize_t ncap = q->cap ? q->cap * 2 : 8;
        PyObject **nbuf = PyMem_New(PyObject *, ncap);
        if (nbuf == NULL) {
            PyErr_NoMemory();
            return -1;
        }
        for (Py_ssize_t i = 0; i < q->len; i++)
            nbuf[i] = q->buf[(q->head + i) & (q->cap - 1)];
        PyMem_Free(q->buf);
        q->buf = nbuf;
        q->cap = ncap;
        q->head = 0;
    }
    Py_INCREF(burst);
    q->buf[(q->head + q->len) & (q->cap - 1)] = burst;
    q->len++;
    return 0;
}

/* Pop the oldest burst; ownership transferred to the caller. */
static PyObject *
cq_popleft(CQueue *q)
{
    PyObject *burst = q->buf[q->head];
    q->buf[q->head] = NULL;
    q->head = (q->head + 1) & (q->cap - 1);
    q->len--;
    return burst;
}

/* Remove the burst at `pos` (deque `del q[pos]` semantics); ownership
 * of the removed reference is transferred to the caller. */
static PyObject *
cq_remove_at(CQueue *q, Py_ssize_t pos)
{
    Py_ssize_t mask = q->cap - 1;
    PyObject *burst = q->buf[(q->head + pos) & mask];
    for (Py_ssize_t i = pos; i < q->len - 1; i++)
        q->buf[(q->head + i) & mask] = q->buf[(q->head + i + 1) & mask];
    q->buf[(q->head + q->len - 1) & mask] = NULL;
    q->len--;
    return burst;
}

/* ---- group registry ---- */

static GroupInfo *
core_group(SchedCoreObject *c, PyObject *group)
{
    PyObject *gid = PyDict_GetItemWithError(c->groups, group);
    if (gid != NULL)
        return &c->ginfo[PyLong_AS_LONG(gid)];
    if (PyErr_Occurred())
        return NULL;
    /* First submission of this group: the wrapper's registration
     * callback resolves (and validates) the allowed-CPU tuple through
     * the reference _allowed_for, keeping both layers coherent. */
    PyObject *ids = PyObject_CallOneArg(c->register_cb, group);
    if (ids == NULL)
        return NULL;
    PyObject *fast = PySequence_Fast(ids, "allowed ids must be a sequence");
    Py_DECREF(ids);
    if (fast == NULL)
        return NULL;
    Py_ssize_t n_allowed = PySequence_Fast_GET_SIZE(fast);
    if (c->n_groups == c->ginfo_cap) {
        Py_ssize_t ncap = c->ginfo_cap ? c->ginfo_cap * 2 : 8;
        GroupInfo *ng = PyMem_Resize(c->ginfo, GroupInfo, ncap);
        if (ng == NULL) {
            Py_DECREF(fast);
            PyErr_NoMemory();
            return NULL;
        }
        c->ginfo = ng;
        c->ginfo_cap = ncap;
    }
    GroupInfo *info = &c->ginfo[c->n_groups];
    info->allowed = PyMem_New(int, n_allowed > 0 ? n_allowed : 1);
    info->mask = PyMem_New(uint64_t, c->nwords);
    if (info->allowed == NULL || info->mask == NULL) {
        PyMem_Free(info->allowed);
        PyMem_Free(info->mask);
        Py_DECREF(fast);
        PyErr_NoMemory();
        return NULL;
    }
    memset(info->mask, 0, c->nwords * sizeof(uint64_t));
    info->n_allowed = (int)n_allowed;
    for (Py_ssize_t i = 0; i < n_allowed; i++) {
        long cpu = PyLong_AsLong(PySequence_Fast_GET_ITEM(fast, i));
        if ((cpu == -1 && PyErr_Occurred()) || cpu < 0 || cpu >= c->n) {
            PyMem_Free(info->allowed);
            PyMem_Free(info->mask);
            Py_DECREF(fast);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError,
                                "allowed CPU id out of range");
            return NULL;
        }
        info->allowed[i] = (int)cpu;
        info->mask[cpu >> 6] |= (uint64_t)1 << (cpu & 63);
    }
    Py_DECREF(fast);
    /* Mirror _allowed_for's steal-eligibility update: every CPU in the
     * mask may steal any burst queued on any CPU of the mask. */
    for (Py_ssize_t i = 0; i < n_allowed; i++) {
        uint64_t *row = c->steal_mask[info->allowed[i]];
        for (int w = 0; w < c->nwords; w++)
            row[w] |= info->mask[w];
    }
    gid = PyLong_FromSsize_t(c->n_groups);
    if (gid == NULL || PyDict_SetItem(c->groups, group, gid) < 0) {
        Py_XDECREF(gid);
        PyMem_Free(info->allowed);
        PyMem_Free(info->mask);
        return NULL;
    }
    Py_DECREF(gid);
    c->n_groups++;
    return info;
}

/* ---- execution ---- */

/* MemorySystemModel.cpi_inflation inlined: epoch-stamped cache of the
 * static breakdown plus the optional bandwidth congestion term.  The
 * cache dict and its (epoch, static) tuples are shared with the Python
 * method, so mixing callers stays coherent. */
static double
fast_cpi(SchedCoreObject *c, PyObject *burst, int cpu, int *error)
{
    PyObject *model = c->perf_model;
    PyObject *group = slot_get(burst, M.b_group);
    long long gid = PyLong_AsLongLong(slot_get(group, M.g_group_id));
    if (gid == -1 && PyErr_Occurred())
        goto fail;
    PyObject *epoch_obj = PyObject_GetAttr(model, M.str_epoch);
    if (epoch_obj == NULL)
        goto fail;
    PyObject *key = PyLong_FromLongLong((gid << 20) | cpu);
    if (key == NULL) {
        Py_DECREF(epoch_obj);
        goto fail;
    }
    PyObject *cached = PyDict_GetItemWithError(c->infl_cache, key);
    double static_infl;
    int hit = 0;
    if (cached != NULL && PyTuple_CheckExact(cached)
        && PyTuple_GET_SIZE(cached) == 2) {
        int same = PyObject_RichCompareBool(
            PyTuple_GET_ITEM(cached, 0), epoch_obj, Py_EQ);
        if (same < 0) {
            Py_DECREF(key);
            Py_DECREF(epoch_obj);
            goto fail;
        }
        if (same) {
            static_infl = as_double(PyTuple_GET_ITEM(cached, 1));
            hit = 1;
        }
    }
    else if (cached == NULL && PyErr_Occurred()) {
        Py_DECREF(key);
        Py_DECREF(epoch_obj);
        goto fail;
    }
    if (!hit) {
        PyObject *argv[3] = {group, c->ccx_objs[cpu], c->node_objs[cpu]};
        PyObject *breakdown =
            PyObject_Vectorcall(c->perf_breakdown, argv, 3, NULL);
        if (breakdown == NULL) {
            Py_DECREF(key);
            Py_DECREF(epoch_obj);
            goto fail;
        }
        PyObject *total = PyObject_GetAttr(breakdown, M.str_total);
        Py_DECREF(breakdown);
        if (total == NULL) {
            Py_DECREF(key);
            Py_DECREF(epoch_obj);
            goto fail;
        }
        PyObject *entry = PyTuple_Pack(2, epoch_obj, total);
        if (entry == NULL || PyDict_SetItem(c->infl_cache, key, entry) < 0) {
            Py_XDECREF(entry);
            Py_DECREF(total);
            Py_DECREF(key);
            Py_DECREF(epoch_obj);
            goto fail;
        }
        Py_DECREF(entry);
        static_infl = as_double(total);
        Py_DECREF(total);
    }
    Py_DECREF(key);
    Py_DECREF(epoch_obj);
    if (static_infl == -1.0 && PyErr_Occurred())
        goto fail;
    PyObject *profile = slot_get(group, M.g_profile);
    if (profile == NULL || profile == Py_None || !c->has_capacity)
        return static_infl;
    PyObject *load = PyObject_GetAttr(model, M.str_mem_load);
    if (load == NULL)
        goto fail;
    double mem_load = as_double(load);
    Py_DECREF(load);
    PyObject *inten = PyObject_GetAttr(profile, M.str_intensity);
    if (inten == NULL)
        goto fail;
    double intensity = as_double(inten);
    Py_DECREF(inten);
    if (PyErr_Occurred())
        goto fail;
    double overload = (mem_load - c->bw_capacity) / c->bw_capacity;
    if (overload < 0.0)
        overload = 0.0;
    return static_infl + c->bw_weight * intensity * overload;
fail:
    *error = 1;
    return 0.0;
}

/* MemorySystemModel.on_burst_start/complete inlined (no counter sink):
 * the running memory-intensity load stays canonical on the model. */
static int
fast_mem_load_delta(SchedCoreObject *c, PyObject *burst, double sign)
{
    PyObject *group = slot_get(burst, M.b_group);
    PyObject *profile = slot_get(group, M.g_profile);
    if (profile == NULL || profile == Py_None)
        return 0;
    PyObject *load = PyObject_GetAttr(c->perf_model, M.str_mem_load);
    if (load == NULL)
        return -1;
    double v = as_double(load);
    Py_DECREF(load);
    PyObject *inten = PyObject_GetAttr(profile, M.str_intensity);
    if (inten == NULL)
        return -1;
    double intensity = as_double(inten);
    Py_DECREF(inten);
    if (PyErr_Occurred())
        return -1;
    PyObject *next = PyFloat_FromDouble(v + sign * intensity);
    if (next == NULL)
        return -1;
    int rv = PyObject_SetAttr(c->perf_model, M.str_mem_load, next);
    Py_DECREF(next);
    return rv;
}

/* CpuScheduler._rate: frequency boost x SMT factor / CPI inflation. */
static double
core_rate(SchedCoreObject *c, PyObject *burst, int cpu, int *error)
{
    int sib = c->sibling[cpu];
    int sibling_busy = (sib >= 0 && c->run[sib].burst != NULL);
    double inflation;
    if (c->fast_perf) {
        inflation = fast_cpi(c, burst, cpu, error);
        if (*error)
            return 0.0;
    }
    else {
        PyObject *argv[2] = {burst, c->cpus[cpu]};
        PyObject *res = PyObject_Vectorcall(c->perf_cpi, argv, 2, NULL);
        if (res == NULL) {
            *error = 1;
            return 0.0;
        }
        inflation = as_double(res);
        Py_DECREF(res);
        if (inflation == -1.0 && PyErr_Occurred()) {
            *error = 1;
            return 0.0;
        }
    }
    if (inflation < 1.0)
        inflation = 1.0;
    double rate = c->freq_factor[c->active_cores]
        * c->smt_factor[sibling_busy] / inflation;
    return rate > MIN_RATE ? rate : MIN_RATE;
}

static int core_re_rate_sibling(SchedCoreObject *c, int cpu);

/* CpuScheduler._start. */
static int
core_start(SchedCoreObject *c, int cpu, PyObject *burst, int rerate_sibling)
{
    PyObject *now_obj = slot_get(c->sim, M.sim_now);
    double now = as_double(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return -1;
    slot_store(burst, M.b_started, now_obj);
    slot_store(burst, M.b_cpu_index, c->cpu_longs[cpu]);
    if (c->idle[cpu]) {
        c->idle[cpu] = 0;
        c->idle_count--;
    }
    int core = c->core_of[cpu];
    if (++c->busy_threads[core] == 1)
        c->active_cores++;
    if (c->fast_perf) {
        if (fast_mem_load_delta(c, burst, 1.0) < 0)
            return -1;
    }
    else {
        PyObject *argv[2] = {burst, c->cpus[cpu]};
        PyObject *res = PyObject_Vectorcall(c->perf_on_start, argv, 2,
                                            NULL);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
    }
    int error = 0;
    double rate = core_rate(c, burst, cpu, &error);
    if (error)
        return -1;
    double demand = as_double(slot_get(burst, M.b_demand));
    if (demand == -1.0 && PyErr_Occurred())
        return -1;
    PyObject *when = PyFloat_FromDouble(now + demand / rate);
    if (when == NULL)
        return -1;
    PyObject *kargv[2] = {when, c->complete_cbs[cpu]};
    PyObject *handle = PyObject_Vectorcall(c->kschedule, kargv, 2, NULL);
    Py_DECREF(when);
    if (handle == NULL)
        return -1;
    CRun *r = &c->run[cpu];
    Py_INCREF(burst);
    r->burst = burst;
    r->handle = handle;          /* ownership transferred */
    r->rate = rate;
    r->segment_start = now;
    r->remaining = demand;
    r->start_time = now;
    c->dispatched++;
    if (rerate_sibling)
        return core_re_rate_sibling(c, cpu);
    return 0;
}

/* CpuScheduler._re_rate_sibling. */
static int
core_re_rate_sibling(SchedCoreObject *c, int cpu)
{
    int sib = c->sibling[cpu];
    if (sib < 0)
        return 0;
    CRun *r = &c->run[sib];
    if (r->burst == NULL)
        return 0;
    double now = as_double(slot_get(c->sim, M.sim_now));
    if (now == -1.0 && PyErr_Occurred())
        return -1;
    double elapsed = now - r->segment_start;
    double remaining = r->remaining - elapsed * r->rate;
    r->remaining = remaining > 0.0 ? remaining : 0.0;
    c->busy_time[sib] += elapsed;
    r->segment_start = now;
    PyObject *res = PyObject_CallMethodNoArgs(r->handle, M.str_cancel);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    int error = 0;
    double rate = core_rate(c, r->burst, sib, &error);
    if (error)
        return -1;
    r->rate = rate;
    PyObject *when = PyFloat_FromDouble(now + r->remaining / rate);
    if (when == NULL)
        return -1;
    PyObject *kargv[2] = {when, c->complete_cbs[sib]};
    PyObject *handle = PyObject_Vectorcall(c->kschedule, kargv, 2, NULL);
    Py_DECREF(when);
    if (handle == NULL)
        return -1;
    Py_SETREF(r->handle, handle);
    return 0;
}

/* CpuScheduler._steal_from: oldest burst on `victim` allowing `cpu`. */
static PyObject *
core_steal_from(SchedCoreObject *c, int victim, int cpu)
{
    CQueue *q = &c->queues[victim];
    Py_ssize_t mask = q->cap - 1;
    for (Py_ssize_t pos = 0; pos < q->len; pos++) {
        PyObject *burst = q->buf[(q->head + pos) & mask];
        PyObject *group = slot_get(burst, M.b_group);
        GroupInfo *info = core_group(c, group);
        if (info == NULL)
            return NULL;    /* registration error; PyErr set */
        if (info->mask[cpu >> 6] & ((uint64_t)1 << (cpu & 63))) {
            PyObject *taken = cq_remove_at(q, pos);
            c->depths[victim]--;
            return taken;
        }
    }
    return Py_None;   /* borrowed sentinel: no eligible burst */
}

static int
cmp_victim(const void *a, const void *b)
{
    /* sorted((-depth, v)): deeper first, lower id on ties. */
    const int *va = (const int *)a, *vb = (const int *)b;
    if (va[1] != vb[1])
        return vb[1] - va[1];
    return va[0] - vb[0];
}

/* CpuScheduler._steal_for: deepest eligible queue, then the sorted
 * fallback order.  Returns a new reference, Py_None (borrowed) when
 * nothing is stealable, NULL on error. */
static PyObject *
core_steal_for(SchedCoreObject *c, int cpu)
{
    const uint64_t *row = c->steal_mask[cpu];
    int best = -1, bestd = 0;
    for (int v = 0; v < c->n; v++) {
        if (!(row[v >> 6] & ((uint64_t)1 << (v & 63))))
            continue;
        int d = c->depths[v];
        if (d > bestd) {
            bestd = d;
            best = v;
        }
    }
    if (best < 0)
        return Py_None;
    PyObject *stolen = core_steal_from(c, best, cpu);
    if (stolen != Py_None)
        return stolen;    /* burst or NULL (error) */
    /* The deepest queue held no eligible burst: walk every nonempty
     * eligible victim by (depth desc, id asc), skipping `best`. */
    int *order = PyMem_New(int, 2 * c->n);
    if (order == NULL) {
        PyErr_NoMemory();
        return NULL;
    }
    int count = 0;
    for (int v = 0; v < c->n; v++) {
        if (!(row[v >> 6] & ((uint64_t)1 << (v & 63))))
            continue;
        if (c->depths[v] > 0) {
            order[2 * count] = v;
            order[2 * count + 1] = c->depths[v];
            count++;
        }
    }
    qsort(order, count, 2 * sizeof(int), cmp_victim);
    for (int i = 0; i < count; i++) {
        int victim = order[2 * i];
        if (victim == best)
            continue;
        stolen = core_steal_from(c, victim, cpu);
        if (stolen != Py_None) {
            PyMem_Free(order);
            return stolen;
        }
    }
    PyMem_Free(order);
    return Py_None;
}

/* CpuScheduler._dispatch_next. */
static int
core_dispatch_next(SchedCoreObject *c, int cpu)
{
    CQueue *q = &c->queues[cpu];
    if (q->len) {
        PyObject *burst = cq_popleft(q);
        c->depths[cpu]--;
        int rv = core_start(c, cpu, burst, 0);
        Py_DECREF(burst);
        return rv;
    }
    PyObject *stolen = core_steal_for(c, cpu);
    if (stolen == NULL)
        return -1;
    if (stolen != Py_None) {
        c->stolen++;
        int rv = core_start(c, cpu, stolen, 0);
        Py_DECREF(stolen);
        return rv;
    }
    c->idle[cpu] = 1;
    c->idle_count++;
    return 0;
}

/* CpuScheduler._complete (scheduled per-CPU via CCompleteCB). */
static int
core_complete(SchedCoreObject *c, int cpu)
{
    CRun *r = &c->run[cpu];
    if (r->burst == NULL) {
        PyErr_SetString(PyExc_AssertionError,
                        "completion fired on idle CPU");
        return -1;
    }
    PyObject *now_obj = slot_get(c->sim, M.sim_now);
    double now = as_double(now_obj);
    if (now == -1.0 && PyErr_Occurred())
        return -1;
    PyObject *burst = r->burst;      /* take over the run's reference */
    PyObject *handle = r->handle;
    double start_time = r->start_time;
    c->busy_time[cpu] += now - r->segment_start;
    r->burst = NULL;
    r->handle = NULL;
    Py_DECREF(handle);               /* already fired; just release */
    int core = c->core_of[cpu];
    if (--c->busy_threads[core] == 0)
        c->active_cores--;

    int rv = -1;
    slot_store(burst, M.b_finished, now_obj);
    double wall = now - start_time;
    PyObject *wall_obj = PyFloat_FromDouble(wall);
    if (wall_obj == NULL)
        goto done;
    slot_store(burst, M.b_wall, wall_obj);
    PyObject *group = slot_get(burst, M.b_group);
    if (slot_add_double(group, M.g_cpu_time, wall) < 0) {
        Py_DECREF(wall_obj);
        goto done;
    }
    slot_store(group, M.g_last_ccx, c->ccx_longs[cpu]);
    if (slot_add_long(group, M.g_completed, 1) < 0) {
        Py_DECREF(wall_obj);
        goto done;
    }
    if (c->fast_perf) {
        Py_DECREF(wall_obj);
        if (fast_mem_load_delta(c, burst, -1.0) < 0)
            goto done;
    }
    else {
        PyObject *argv[3] = {burst, c->cpus[cpu], wall_obj};
        PyObject *res = PyObject_Vectorcall(c->perf_on_complete, argv, 3,
                                            NULL);
        Py_DECREF(wall_obj);
        if (res == NULL)
            goto done;
        Py_DECREF(res);
    }
    if (core_dispatch_next(c, cpu) < 0)
        goto done;
    if (core_re_rate_sibling(c, cpu) < 0)
        goto done;
    rv = trigger_succeed(slot_get(burst, M.b_done), burst);
done:
    Py_DECREF(burst);
    return rv;
}

/* CpuScheduler._pick_idle_cpu: lowest id among the minimal
 * (whole-core-idle, ccx-local) scores over the allowed idle CPUs. */
static int
core_pick_idle(SchedCoreObject *c, GroupInfo *info, int last_ccx)
{
    int best = -1, best_score = 4;
    const int *allowed = info->allowed;
    int n_allowed = info->n_allowed;
    for (int i = 0; i < n_allowed; i++) {
        int cpu = allowed[i];
        if (!c->idle[cpu])
            continue;
        int sib = c->sibling[cpu];
        int whole = (sib >= 0 && c->run[sib].burst != NULL) ? 1 : 0;
        int local = (last_ccx >= 0 && c->ccx_of[cpu] == last_ccx) ? 0 : 1;
        int score = whole * 2 + local;
        if (score < best_score) {
            best = cpu;
            best_score = score;
            if (score == 0)
                break;
        }
    }
    return best;
}

/* CpuScheduler.submit. */
static int
core_submit(SchedCoreObject *c, PyObject *burst)
{
    PyObject *group = slot_get(burst, M.b_group);
    if (group == NULL) {
        PyErr_SetString(PyExc_AttributeError, "group");
        return -1;
    }
    GroupInfo *info = core_group(c, group);
    if (info == NULL)
        return -1;
    slot_store(burst, M.b_submitted, slot_get(c->sim, M.sim_now));
    if (c->idle_count > 0) {
        PyObject *ccx = slot_get(group, M.g_last_ccx);
        int last_ccx = (ccx == Py_None || ccx == NULL)
            ? -1 : (int)PyLong_AsLong(ccx);
        if (last_ccx == -1 && PyErr_Occurred())
            return -1;
        int cpu = core_pick_idle(c, info, last_ccx);
        if (cpu >= 0)
            return core_start(c, cpu, burst, 1);
    }
    /* Shortest allowed queue, lowest id on ties (first occurrence of
     * the minimum over the ascending mask — all three reference
     * branches reduce to this one scan). */
    const int *allowed = info->allowed;
    int target = allowed[0];
    int shortest = c->depths[target];
    if (shortest) {
        for (int i = 1; i < info->n_allowed; i++) {
            int depth = c->depths[allowed[i]];
            if (depth < shortest) {
                shortest = depth;
                target = allowed[i];
                if (!depth)
                    break;
            }
        }
    }
    if (cq_push(&c->queues[target], burst) < 0)
        return -1;
    c->depths[target]++;
    return 0;
}

static PyObject *
SchedCore_submit(SchedCoreObject *c, PyObject *burst)
{
    if (core_submit(c, burst) < 0)
        return NULL;
    Py_RETURN_NONE;
}

/* ServiceContext.submit_demand's hot core: scale the demand by the
 * replica's factor, build the burst and its completion event without
 * entering the interpreter, and submit — returning the done event. */
static PyObject *
SchedCore_submit_demand(SchedCoreObject *c, PyObject *const *args,
                        Py_ssize_t nargs)
{
    if (nargs != 2) {
        PyErr_SetString(PyExc_TypeError,
                        "submit_demand(instance, demand) takes 2 arguments");
        return NULL;
    }
    PyObject *instance = args[0], *demand = args[1];
    if (!PyObject_TypeCheck(instance, (PyTypeObject *)M.instance_type)) {
        PyErr_SetString(PyExc_TypeError,
                        "submit_demand() expects a ServiceInstance");
        return NULL;
    }
    PyObject *factor = slot_get(instance, M.in_demand_factor);
    PyObject *group = slot_get(instance, M.in_group);
    if (factor == NULL || group == NULL) {
        PyErr_SetString(PyExc_AttributeError, "demand_factor");
        return NULL;
    }
    PyObject *scaled;
    if (PyFloat_CheckExact(demand) && PyFloat_CheckExact(factor))
        scaled = PyFloat_FromDouble(PyFloat_AS_DOUBLE(demand)
                                    * PyFloat_AS_DOUBLE(factor));
    else
        scaled = PyNumber_Multiply(demand, factor);
    if (scaled == NULL)
        return NULL;
    double value = as_double(scaled);
    if (value == -1.0 && PyErr_Occurred()) {
        Py_DECREF(scaled);
        return NULL;
    }
    if (value < 0.0) {
        /* CpuBurst.__init__'s validation, message included. */
        PyObject *msg = PyUnicode_FromFormat("negative CPU demand: %S",
                                             scaled);
        if (msg != NULL) {
            PyErr_SetObject(M.sched_error, msg);
            Py_DECREF(msg);
        }
        Py_DECREF(scaled);
        return NULL;
    }
    PyObject *done = make_event(c->sim);
    if (done == NULL) {
        Py_DECREF(scaled);
        return NULL;
    }
    PyTypeObject *burst_type = (PyTypeObject *)M.burst_type;
    PyObject *burst = burst_type->tp_alloc(burst_type, 0);
    if (burst == NULL) {
        Py_DECREF(scaled);
        Py_DECREF(done);
        return NULL;
    }
    PyObject *wall = PyFloat_FromDouble(0.0);
    if (wall == NULL) {
        Py_DECREF(scaled);
        Py_DECREF(done);
        Py_DECREF(burst);
        return NULL;
    }
    /* Mirror CpuBurst.__init__'s slot assignments exactly. */
    *(PyObject **)((char *)burst + M.b_demand) = scaled;
    Py_INCREF(group);
    *(PyObject **)((char *)burst + M.b_group) = group;
    Py_INCREF(done);
    *(PyObject **)((char *)burst + M.b_done) = done;
    Py_INCREF(Py_None);
    *(PyObject **)((char *)burst + M.b_submitted) = Py_None;
    Py_INCREF(Py_None);
    *(PyObject **)((char *)burst + M.b_started) = Py_None;
    Py_INCREF(Py_None);
    *(PyObject **)((char *)burst + M.b_finished) = Py_None;
    Py_INCREF(Py_None);
    *(PyObject **)((char *)burst + M.b_cpu_index) = Py_None;
    *(PyObject **)((char *)burst + M.b_wall) = wall;
    int rv = core_submit(c, burst);
    Py_DECREF(burst);
    if (rv < 0) {
        Py_DECREF(done);
        return NULL;
    }
    return done;
}

static PyObject *
SchedCore_busy_time(SchedCoreObject *c, PyObject *arg)
{
    long cpu = PyLong_AsLong(arg);
    if (cpu == -1 && PyErr_Occurred())
        return NULL;
    if (cpu < 0 || cpu >= c->n) {
        PyErr_SetString(PyExc_IndexError, "cpu index out of range");
        return NULL;
    }
    double total = c->busy_time[cpu];
    CRun *r = &c->run[cpu];
    if (r->burst != NULL) {
        double now = as_double(slot_get(c->sim, M.sim_now));
        if (now == -1.0 && PyErr_Occurred())
            return NULL;
        total += now - r->segment_start;
    }
    return PyFloat_FromDouble(total);
}

static PyObject *
SchedCore_queue_depth(SchedCoreObject *c, PyObject *Py_UNUSED(ignored))
{
    long long total = 0;
    for (int i = 0; i < c->n; i++)
        total += c->depths[i];
    return PyLong_FromLongLong(total);
}

static PyObject *
SchedCore_is_idle(SchedCoreObject *c, PyObject *arg)
{
    long cpu = PyLong_AsLong(arg);
    if (cpu == -1 && PyErr_Occurred())
        return NULL;
    if (cpu < 0 || cpu >= c->n)
        Py_RETURN_FALSE;
    return PyBool_FromLong(c->idle[cpu]);
}

static PyObject *
SchedCore_bursts_dispatched(SchedCoreObject *c, PyObject *Py_UNUSED(ig))
{
    return PyLong_FromLongLong(c->dispatched);
}

static PyObject *
SchedCore_bursts_stolen(SchedCoreObject *c, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromLongLong(c->stolen);
}

static PyObject *
SchedCore_stats(SchedCoreObject *c, PyObject *Py_UNUSED(ignored))
{
    int running = 0;
    long long queued = 0;
    for (int i = 0; i < c->n; i++) {
        if (c->run[i].burst != NULL)
            running++;
        queued += c->depths[i];
    }
    return Py_BuildValue("(iLn)", running, queued, c->idle_count);
}

/* ---- construction / teardown ---- */

static int
load_int_list(PyObject *wrapper, const char *name, int **out, int n,
              int none_value)
{
    PyObject *seq = PyObject_GetAttrString(wrapper, name);
    if (seq == NULL)
        return -1;
    PyObject *fast = PySequence_Fast(seq, "expected a sequence");
    Py_DECREF(seq);
    if (fast == NULL)
        return -1;
    if (PySequence_Fast_GET_SIZE(fast) != n) {
        Py_DECREF(fast);
        PyErr_Format(PyExc_ValueError, "%s has unexpected length", name);
        return -1;
    }
    int *arr = PyMem_New(int, n > 0 ? n : 1);
    if (arr == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        return -1;
    }
    for (int i = 0; i < n; i++) {
        PyObject *item = PySequence_Fast_GET_ITEM(fast, i);
        if (item == Py_None)
            arr[i] = none_value;
        else {
            long v = PyLong_AsLong(item);
            if (v == -1 && PyErr_Occurred()) {
                PyMem_Free(arr);
                Py_DECREF(fast);
                return -1;
            }
            arr[i] = (int)v;
        }
    }
    Py_DECREF(fast);
    *out = arr;
    return 0;
}

static void
SchedCore_dealloc(SchedCoreObject *c)
{
    PyObject_GC_UnTrack(c);
    Py_XDECREF(c->sim);
    Py_XDECREF(c->kschedule);
    Py_XDECREF(c->perf_model);
    Py_XDECREF(c->perf_cpi);
    Py_XDECREF(c->perf_on_start);
    Py_XDECREF(c->perf_on_complete);
    Py_XDECREF(c->perf_breakdown);
    Py_XDECREF(c->infl_cache);
    Py_XDECREF(c->register_cb);
    Py_XDECREF(c->groups);
    for (int i = 0; i < c->n; i++) {
        if (c->cpus != NULL)
            Py_XDECREF(c->cpus[i]);
        if (c->complete_cbs != NULL)
            Py_XDECREF(c->complete_cbs[i]);
        if (c->cpu_longs != NULL)
            Py_XDECREF(c->cpu_longs[i]);
        if (c->ccx_longs != NULL)
            Py_XDECREF(c->ccx_longs[i]);
        if (c->ccx_objs != NULL)
            Py_XDECREF(c->ccx_objs[i]);
        if (c->node_objs != NULL)
            Py_XDECREF(c->node_objs[i]);
        if (c->run != NULL) {
            Py_XDECREF(c->run[i].burst);
            Py_XDECREF(c->run[i].handle);
        }
        if (c->queues != NULL) {
            CQueue *q = &c->queues[i];
            for (Py_ssize_t j = 0; j < q->len; j++)
                Py_XDECREF(q->buf[(q->head + j) & (q->cap - 1)]);
            PyMem_Free(q->buf);
        }
        if (c->steal_mask != NULL)
            PyMem_Free(c->steal_mask[i]);
    }
    for (Py_ssize_t g = 0; g < c->n_groups; g++) {
        PyMem_Free(c->ginfo[g].allowed);
        PyMem_Free(c->ginfo[g].mask);
    }
    PyMem_Free(c->ginfo);
    PyMem_Free(c->cpus);
    PyMem_Free(c->complete_cbs);
    PyMem_Free(c->cpu_longs);
    PyMem_Free(c->ccx_longs);
    PyMem_Free(c->ccx_objs);
    PyMem_Free(c->node_objs);
    PyMem_Free(c->run);
    PyMem_Free(c->queues);
    PyMem_Free(c->depths);
    PyMem_Free(c->idle);
    PyMem_Free(c->online);
    PyMem_Free(c->sibling);
    PyMem_Free(c->core_of);
    PyMem_Free(c->ccx_of);
    PyMem_Free(c->busy_threads);
    PyMem_Free(c->busy_time);
    PyMem_Free(c->freq_factor);
    PyMem_Free(c->steal_mask);
    Py_TYPE(c)->tp_free((PyObject *)c);
}

static int
SchedCore_traverse(SchedCoreObject *c, visitproc visit, void *arg)
{
    Py_VISIT(c->sim);
    Py_VISIT(c->kschedule);
    Py_VISIT(c->perf_model);
    Py_VISIT(c->perf_cpi);
    Py_VISIT(c->perf_on_start);
    Py_VISIT(c->perf_on_complete);
    Py_VISIT(c->perf_breakdown);
    Py_VISIT(c->infl_cache);
    Py_VISIT(c->register_cb);
    Py_VISIT(c->groups);
    for (int i = 0; i < c->n; i++) {
        if (c->cpus != NULL)
            Py_VISIT(c->cpus[i]);
        if (c->complete_cbs != NULL)
            Py_VISIT(c->complete_cbs[i]);
        if (c->run != NULL) {
            Py_VISIT(c->run[i].burst);
            Py_VISIT(c->run[i].handle);
        }
        if (c->queues != NULL) {
            CQueue *q = &c->queues[i];
            for (Py_ssize_t j = 0; j < q->len; j++)
                Py_VISIT(q->buf[(q->head + j) & (q->cap - 1)]);
        }
    }
    return 0;
}

static int
SchedCore_clear_impl(SchedCoreObject *c)
{
    Py_CLEAR(c->kschedule);
    Py_CLEAR(c->perf_cpi);
    Py_CLEAR(c->perf_on_start);
    Py_CLEAR(c->perf_on_complete);
    Py_CLEAR(c->perf_breakdown);
    Py_CLEAR(c->infl_cache);
    Py_CLEAR(c->register_cb);
    Py_CLEAR(c->groups);
    for (int i = 0; i < c->n; i++) {
        if (c->complete_cbs != NULL)
            Py_CLEAR(c->complete_cbs[i]);
        if (c->run != NULL) {
            Py_CLEAR(c->run[i].burst);
            Py_CLEAR(c->run[i].handle);
        }
        if (c->queues != NULL) {
            CQueue *q = &c->queues[i];
            for (Py_ssize_t j = 0; j < q->len; j++)
                Py_CLEAR(q->buf[(q->head + j) & (q->cap - 1)]);
            q->len = 0;
            q->head = 0;
        }
    }
    return 0;
}

static PyObject *CCompleteCB_new_for(SchedCoreObject *core, int cpu);

static PyObject *
SchedCore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *wrapper;
    if (!M.configured) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro.sim._cmodel.configure() has not been called");
        return NULL;
    }
    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "SchedCore() takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O", &wrapper))
        return NULL;
    SchedCoreObject *c = (SchedCoreObject *)type->tp_alloc(type, 0);
    if (c == NULL)
        return NULL;
    c->sim = PyObject_GetAttrString(wrapper, "sim");
    c->kschedule = PyObject_GetAttrString(wrapper, "_kschedule");
    c->perf_model = PyObject_GetAttrString(wrapper, "perf_model");
    c->register_cb = PyObject_GetAttrString(wrapper, "_core_register");
    c->groups = PyDict_New();
    if (c->sim == NULL || c->kschedule == NULL || c->perf_model == NULL
        || c->register_cb == NULL || c->groups == NULL)
        goto fail;
    /* The perf hooks are bound once: the model is fixed for the
     * scheduler's lifetime (the deployment constructs both together). */
    c->perf_cpi = PyObject_GetAttrString(c->perf_model, "cpi_inflation");
    c->perf_on_start = PyObject_GetAttrString(c->perf_model,
                                              "on_burst_start");
    c->perf_on_complete = PyObject_GetAttrString(c->perf_model,
                                                 "on_burst_complete");
    if (c->perf_cpi == NULL || c->perf_on_start == NULL
        || c->perf_on_complete == NULL)
        goto fail;

    PyObject *cpus_list = PyObject_GetAttrString(wrapper, "_cpus");
    if (cpus_list == NULL)
        goto fail;
    PyObject *fast = PySequence_Fast(cpus_list, "_cpus must be a sequence");
    Py_DECREF(cpus_list);
    if (fast == NULL)
        goto fail;
    Py_ssize_t n = PySequence_Fast_GET_SIZE(fast);
    if (n < 1 || n > 1 << 20) {
        Py_DECREF(fast);
        PyErr_SetString(PyExc_ValueError, "unreasonable CPU count");
        goto fail;
    }
    c->n = (int)n;
    c->nwords = (c->n + 63) / 64;
    c->cpus = PyMem_New(PyObject *, n);
    c->complete_cbs = PyMem_New(PyObject *, n);
    c->cpu_longs = PyMem_New(PyObject *, n);
    c->ccx_longs = PyMem_New(PyObject *, n);
    c->ccx_objs = PyMem_New(PyObject *, n);
    c->node_objs = PyMem_New(PyObject *, n);
    c->run = PyMem_New(CRun, n);
    c->queues = PyMem_New(CQueue, n);
    c->depths = PyMem_New(int, n);
    c->idle = PyMem_New(char, n);
    c->online = PyMem_New(char, n);
    c->busy_time = PyMem_New(double, n);
    c->steal_mask = PyMem_New(uint64_t *, n);
    if (c->cpus == NULL || c->complete_cbs == NULL || c->cpu_longs == NULL
        || c->ccx_longs == NULL || c->ccx_objs == NULL
        || c->node_objs == NULL || c->run == NULL || c->queues == NULL
        || c->depths == NULL || c->idle == NULL || c->online == NULL
        || c->busy_time == NULL || c->steal_mask == NULL) {
        Py_DECREF(fast);
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        c->cpus[i] = NULL;
        c->complete_cbs[i] = NULL;
        c->cpu_longs[i] = NULL;
        c->ccx_longs[i] = NULL;
        c->ccx_objs[i] = NULL;
        c->node_objs[i] = NULL;
        c->run[i].burst = NULL;
        c->run[i].handle = NULL;
        c->queues[i].buf = NULL;
        c->queues[i].head = c->queues[i].len = c->queues[i].cap = 0;
        c->depths[i] = 0;
        c->idle[i] = 0;
        c->online[i] = 0;
        c->busy_time[i] = 0.0;
        c->steal_mask[i] = NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *cpu = PySequence_Fast_GET_ITEM(fast, i);
        Py_INCREF(cpu);
        c->cpus[i] = cpu;
        c->cpu_longs[i] = PyLong_FromSsize_t(i);
        c->steal_mask[i] = PyMem_New(uint64_t, c->nwords);
        if (c->cpu_longs[i] == NULL || c->steal_mask[i] == NULL) {
            Py_DECREF(fast);
            if (!PyErr_Occurred())
                PyErr_NoMemory();
            goto fail;
        }
        memset(c->steal_mask[i], 0, c->nwords * sizeof(uint64_t));
    }
    Py_DECREF(fast);

    if (load_int_list(wrapper, "_sibling_index", &c->sibling, c->n, -1) < 0
        || load_int_list(wrapper, "_core_index", &c->core_of, c->n, -1) < 0
        || load_int_list(wrapper, "_ccx_index", &c->ccx_of, c->n, -1) < 0)
        goto fail;
    for (int i = 0; i < c->n; i++) {
        c->ccx_longs[i] = PyLong_FromLong(c->ccx_of[i]);
        if (c->ccx_longs[i] == NULL)
            goto fail;
    }

    PyObject *tc = PyObject_GetAttrString(wrapper, "total_cores");
    if (tc == NULL)
        goto fail;
    c->total_cores = (int)PyLong_AsLong(tc);
    Py_DECREF(tc);
    if (c->total_cores == -1 && PyErr_Occurred())
        goto fail;
    PyObject *btl = PyObject_GetAttrString(wrapper,
                                           "_busy_threads_per_core");
    if (btl == NULL)
        goto fail;
    Py_ssize_t n_cores = PySequence_Size(btl);
    Py_DECREF(btl);
    if (n_cores < 0)
        goto fail;
    c->n_cores = (int)n_cores;
    c->busy_threads = PyMem_New(int, c->n_cores > 0 ? c->n_cores : 1);
    if (c->busy_threads == NULL) {
        PyErr_NoMemory();
        goto fail;
    }
    memset(c->busy_threads, 0, c->n_cores * sizeof(int));

    PyObject *freq = PyObject_GetAttrString(wrapper, "_freq_factor");
    if (freq == NULL)
        goto fail;
    PyObject *ffast = PySequence_Fast(freq, "_freq_factor");
    Py_DECREF(freq);
    if (ffast == NULL)
        goto fail;
    Py_ssize_t n_freq = PySequence_Fast_GET_SIZE(ffast);
    if (n_freq != c->total_cores + 1) {
        Py_DECREF(ffast);
        PyErr_SetString(PyExc_ValueError,
                        "_freq_factor length != total_cores + 1");
        goto fail;
    }
    c->freq_factor = PyMem_New(double, n_freq);
    if (c->freq_factor == NULL) {
        Py_DECREF(ffast);
        PyErr_NoMemory();
        goto fail;
    }
    for (Py_ssize_t i = 0; i < n_freq; i++) {
        c->freq_factor[i] =
            as_double(PySequence_Fast_GET_ITEM(ffast, i));
        if (c->freq_factor[i] == -1.0 && PyErr_Occurred()) {
            Py_DECREF(ffast);
            goto fail;
        }
    }
    Py_DECREF(ffast);

    PyObject *smt = PyObject_GetAttrString(wrapper, "_smt_factor");
    if (smt == NULL)
        goto fail;
    int bad_smt = (!PyTuple_Check(smt) || PyTuple_GET_SIZE(smt) != 2);
    if (!bad_smt) {
        c->smt_factor[0] = as_double(PyTuple_GET_ITEM(smt, 0));
        c->smt_factor[1] = as_double(PyTuple_GET_ITEM(smt, 1));
    }
    Py_DECREF(smt);
    if (bad_smt) {
        PyErr_SetString(PyExc_ValueError, "_smt_factor must be a 2-tuple");
        goto fail;
    }
    if (PyErr_Occurred())
        goto fail;

    PyObject *online = PyObject_GetAttrString(wrapper, "_online_ids");
    if (online == NULL)
        goto fail;
    PyObject *ofast = PySequence_Fast(online, "_online_ids");
    Py_DECREF(online);
    if (ofast == NULL)
        goto fail;
    for (Py_ssize_t i = 0; i < PySequence_Fast_GET_SIZE(ofast); i++) {
        long cpu = PyLong_AsLong(PySequence_Fast_GET_ITEM(ofast, i));
        if ((cpu == -1 && PyErr_Occurred()) || cpu < 0 || cpu >= c->n) {
            Py_DECREF(ofast);
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_ValueError,
                                "online CPU id out of range");
            goto fail;
        }
        c->online[cpu] = 1;
        c->idle[cpu] = 1;
        c->idle_count++;
    }
    Py_DECREF(ofast);

    /* Inline the perf hooks when the model is exactly MemorySystemModel
     * with no counter sink (the overwhelmingly common configuration);
     * anything else — subclasses, protocol implementations, hardware
     * counter collection — goes through the bound Python hooks. */
    if (M.memmodel_type != NULL
        && Py_TYPE(c->perf_model) == (PyTypeObject *)M.memmodel_type) {
        PyObject *sink = PyObject_GetAttrString(c->perf_model,
                                                "counter_sink");
        if (sink == NULL)
            goto fail;
        int plain = (sink == Py_None);
        Py_DECREF(sink);
        if (plain) {
            c->perf_breakdown = PyObject_GetAttrString(c->perf_model,
                                                       "breakdown");
            c->infl_cache = PyObject_GetAttrString(c->perf_model,
                                                   "_inflation_cache");
            if (c->perf_breakdown == NULL || c->infl_cache == NULL)
                goto fail;
            if (!PyDict_Check(c->infl_cache)) {
                PyErr_SetString(PyExc_TypeError,
                                "_inflation_cache must be a dict");
                goto fail;
            }
            PyObject *config = PyObject_GetAttrString(c->perf_model,
                                                      "config");
            if (config == NULL)
                goto fail;
            PyObject *cap = PyObject_GetAttrString(config,
                                                   "bandwidth_capacity");
            PyObject *weight = PyObject_GetAttrString(config,
                                                      "bandwidth_weight");
            Py_DECREF(config);
            if (cap == NULL || weight == NULL) {
                Py_XDECREF(cap);
                Py_XDECREF(weight);
                goto fail;
            }
            if (cap != Py_None) {
                c->has_capacity = 1;
                c->bw_capacity = as_double(cap);
            }
            c->bw_weight = as_double(weight);
            Py_DECREF(cap);
            Py_DECREF(weight);
            if (PyErr_Occurred())
                goto fail;
            for (int i = 0; i < c->n; i++) {
                PyObject *ccx = PyObject_GetAttrString(c->cpus[i], "ccx");
                if (ccx == NULL)
                    goto fail;
                c->ccx_objs[i] = PyObject_GetAttrString(ccx, "index");
                Py_DECREF(ccx);
                if (c->ccx_objs[i] == NULL)
                    goto fail;
                PyObject *node = PyObject_GetAttrString(c->cpus[i],
                                                        "node");
                if (node == NULL)
                    goto fail;
                c->node_objs[i] = PyObject_GetAttrString(node, "index");
                Py_DECREF(node);
                if (c->node_objs[i] == NULL)
                    goto fail;
            }
            c->fast_perf = 1;
        }
    }
    for (int i = 0; i < c->n; i++) {
        c->complete_cbs[i] = CCompleteCB_new_for(c, i);
        if (c->complete_cbs[i] == NULL)
            goto fail;
    }
    return (PyObject *)c;
fail:
    Py_DECREF(c);
    return NULL;
}

static PyMethodDef SchedCore_methods[] = {
    {"submit", (PyCFunction)SchedCore_submit, METH_O,
     "Make a burst runnable (CpuScheduler.submit)."},
    {"submit_demand", (PyCFunction)SchedCore_submit_demand, METH_FASTCALL,
     "submit_demand(instance, demand) -> Event\n"
     "Scale, wrap and submit one CPU demand (ServiceContext fast path)."},
    {"busy_time", (PyCFunction)SchedCore_busy_time, METH_O,
     "Accumulated busy time of one logical CPU."},
    {"queue_depth", (PyCFunction)SchedCore_queue_depth, METH_NOARGS,
     "Bursts currently waiting in run queues."},
    {"is_idle", (PyCFunction)SchedCore_is_idle, METH_O,
     "True when the CPU is online and not executing."},
    {"bursts_dispatched", (PyCFunction)SchedCore_bursts_dispatched,
     METH_NOARGS, "Total bursts started."},
    {"bursts_stolen", (PyCFunction)SchedCore_bursts_stolen, METH_NOARGS,
     "Total bursts obtained via work stealing."},
    {"stats", (PyCFunction)SchedCore_stats, METH_NOARGS,
     "(running, queued, idle) counts for repr()."},
    {NULL, NULL, 0, NULL},
};

static PyTypeObject SchedCore_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cmodel.SchedCore",
    .tp_basicsize = sizeof(SchedCoreObject),
    .tp_dealloc = (destructor)SchedCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C core of CompiledCpuScheduler (see repro.cpu.scheduler).",
    .tp_traverse = (traverseproc)SchedCore_traverse,
    .tp_clear = (inquiry)SchedCore_clear_impl,
    .tp_methods = SchedCore_methods,
    .tp_new = SchedCore_new,
};

/* ---- the per-CPU completion callable ---- */

static PyObject *
CCompleteCB_vectorcall(PyObject *self, PyObject *const *Py_UNUSED(args),
                       size_t nargsf, PyObject *kwnames)
{
    CCompleteCBObject *cb = (CCompleteCBObject *)self;
    if (PyVectorcall_NARGS(nargsf) != 0
        || (kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0)) {
        PyErr_SetString(PyExc_TypeError,
                        "completion callback takes no arguments");
        return NULL;
    }
    if (core_complete(cb->core, cb->cpu) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static void
CCompleteCB_dealloc(CCompleteCBObject *cb)
{
    PyObject_GC_UnTrack(cb);
    Py_XDECREF(cb->core);
    Py_TYPE(cb)->tp_free((PyObject *)cb);
}

static int
CCompleteCB_traverse(CCompleteCBObject *cb, visitproc visit, void *arg)
{
    Py_VISIT(cb->core);
    return 0;
}

static int
CCompleteCB_clear(CCompleteCBObject *cb)
{
    Py_CLEAR(cb->core);
    return 0;
}

static PyTypeObject CCompleteCB_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cmodel.CCompleteCB",
    .tp_basicsize = sizeof(CCompleteCBObject),
    .tp_dealloc = (destructor)CCompleteCB_dealloc,
    .tp_vectorcall_offset = offsetof(CCompleteCBObject, vectorcall),
    .tp_call = PyVectorcall_Call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
        | Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_doc = "Scheduled completion callback for one logical CPU.",
    .tp_traverse = (traverseproc)CCompleteCB_traverse,
    .tp_clear = (inquiry)CCompleteCB_clear,
};

static PyObject *
CCompleteCB_new_for(SchedCoreObject *core, int cpu)
{
    CCompleteCBObject *cb =
        PyObject_GC_New(CCompleteCBObject, &CCompleteCB_Type);
    if (cb == NULL)
        return NULL;
    cb->vectorcall = CCompleteCB_vectorcall;
    Py_INCREF(core);
    cb->core = core;
    cb->cpu = cpu;
    PyObject_GC_Track(cb);
    return (PyObject *)cb;
}

/* ------------------------------------------------------------------ */
/* CWorker: one replica worker as a C state machine                    */
/* ------------------------------------------------------------------ */

/* Keep in sync with repro.services.instance._BOOT.._RUN. */
enum { W_BOOT = 0, W_GET = 1, W_PAUSE = 2, W_RUN = 3 };

typedef struct {
    PyObject_HEAD
    vectorcallfunc vectorcall;
    PyObject *instance;     /* ServiceInstance */
    PyObject *deployment;
    PyObject *sim;
    PyObject *rpc_respond;  /* bound rpc.respond */
    PyObject *resolve;      /* bound spec.resolve */
    PyObject *queue_get;    /* bound queue.get */
    PyObject *request;      /* in-flight request, per state */
    PyObject *handler;      /* endpoint handler generator while W_RUN */
    int state;
} CWorkerObject;

static PyTypeObject CWorker_Type;

static int worker_begin(CWorkerObject *w, PyObject *request);
static int worker_drive(CWorkerObject *w, PyObject *value, int failed);

/* self.state = _GET; self.queue.get().callbacks.append(self) */
static int
worker_next_get(CWorkerObject *w)
{
    w->state = W_GET;
    PyObject *event = PyObject_CallNoArgs(w->queue_get);
    if (event == NULL)
        return -1;
    PyObject *callbacks = slot_get(event, M.ev_callbacks);
    int rv;
    if (callbacks == NULL || !PyList_Check(callbacks)) {
        PyErr_SetString(PyExc_SystemError,
                        "store get event has no callback list");
        rv = -1;
    }
    else
        rv = PyList_Append(callbacks, (PyObject *)w);
    Py_DECREF(event);
    return rv;
}

/* instance._fail_request(request, exc) + next queue get. */
static int
worker_fail_request(CWorkerObject *w, PyObject *request, PyObject *exc,
                    int then_get)
{
    PyObject *res = PyObject_CallMethod(w->instance, "_fail_request", "OO",
                                        request, exc);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return then_get ? worker_next_get(w) : 0;
}

/* The drive loop hit a yield-protocol violation: clear state and hand
 * off to the shared Python helper (throw in, park forever). */
static int
worker_protocol_error(CWorkerObject *w, PyObject *message)
{
    PyObject *request = w->request;
    PyObject *handler = w->handler;
    w->request = NULL;
    w->handler = NULL;
    PyObject *res = PyObject_CallFunctionObjArgs(
        M.protocol_error, w->instance, handler, request, message, NULL);
    Py_XDECREF(request);
    Py_XDECREF(handler);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

/* Fetch the pending exception normalized, with traceback attached.
 * Returns a new reference to the exception instance. */
static PyObject *
fetch_exception(void)
{
    PyObject *type, *val, *tb;
    PyErr_Fetch(&type, &val, &tb);
    if (type == NULL) {
        PyErr_SetString(PyExc_SystemError,
                        "error return without exception set");
        return NULL;
    }
    PyErr_NormalizeException(&type, &val, &tb);
    if (tb != NULL && val != NULL)
        PyException_SetTraceback(val, tb);
    Py_XDECREF(type);
    Py_XDECREF(tb);
    return val;
}

/* Completion bookkeeping + respond + next get (machine._finish). */
static int
worker_finish(CWorkerObject *w, PyObject *response)
{
    PyObject *request = w->request;
    w->request = NULL;
    Py_CLEAR(w->handler);
    int rv = -1;
    slot_store(request, M.rq_completed, slot_get(w->sim, M.sim_now));
    if (slot_add_long(w->instance, M.in_completed, 1) < 0)
        goto done;
    if (slot_add_long(w->instance, M.in_outstanding, -1) < 0)
        goto done;
    PyObject *tracer = PyObject_GetAttr(w->deployment, M.str_tracer);
    if (tracer == NULL)
        goto done;
    if (tracer != Py_None) {
        PyObject *res = PyObject_CallMethodOneArg(tracer, M.str_record,
                                                  request);
        if (res == NULL) {
            Py_DECREF(tracer);
            goto done;
        }
        Py_DECREF(res);
    }
    Py_DECREF(tracer);
    PyObject *done_ev = slot_get(request, M.rq_done);
    PyObject *argv[2] = {done_ev, response};
    PyObject *res = PyObject_Vectorcall(w->rpc_respond, argv, 2, NULL);
    if (res == NULL)
        goto done;
    Py_DECREF(res);
    rv = worker_next_get(w);
done:
    Py_DECREF(request);
    return rv;
}

/* machine._drive: pump the endpoint handler generator. */
static int
worker_drive(CWorkerObject *w, PyObject *value, int failed)
{
    PyObject *handler = w->handler;
    Py_INCREF(handler);
    Py_XINCREF(value);
    int rv = 0;
    for (;;) {
        PyObject *target = NULL;
        if (failed) {
            target = PyObject_CallMethodOneArg(handler, M.str_throw, value);
            Py_CLEAR(value);
            if (target == NULL)
                goto handler_raised;
        }
        else {
            PySendResult sr = PyIter_Send(handler, value ? value : Py_None,
                                          &target);
            Py_CLEAR(value);
            if (sr == PYGEN_RETURN) {
                rv = worker_finish(w, target);
                Py_DECREF(target);
                break;
            }
            if (sr == PYGEN_ERROR)
                goto handler_raised;
        }
        /* The handler yielded `target`. */
        if (!PyObject_TypeCheck(target, (PyTypeObject *)M.event_type)) {
            PyObject *msg = PyUnicode_FromFormat(
                "process yielded a non-event: %R", target);
            Py_DECREF(target);
            rv = msg ? worker_protocol_error(w, msg) : -1;
            Py_XDECREF(msg);
            break;
        }
        if (slot_get(target, M.ev_sim) != w->sim) {
            Py_DECREF(target);
            PyObject *msg = PyUnicode_FromString(
                "yielded event belongs to another simulator");
            rv = msg ? worker_protocol_error(w, msg) : -1;
            Py_XDECREF(msg);
            break;
        }
        PyObject *callbacks = slot_get(target, M.ev_callbacks);
        if (callbacks == NULL || callbacks == Py_None) {
            /* Already processed: resume inline. */
            if (truthy(slot_get(target, M.ev_ok)))
                failed = 0;
            else {
                slot_store(target, M.ev_defused, Py_True);
                failed = 1;
            }
            value = slot_get(target, M.ev_value);
            Py_XINCREF(value);
            Py_DECREF(target);
            continue;
        }
        if (!PyList_Check(callbacks)) {
            Py_DECREF(target);
            PyErr_SetString(PyExc_TypeError,
                            "event callbacks must be a list");
            rv = -1;
            break;
        }
        rv = PyList_Append(callbacks, (PyObject *)w);
        Py_DECREF(target);
        break;

    handler_raised:
        if (PyErr_ExceptionMatches(PyExc_StopIteration)) {
            PyObject *exc = fetch_exception();
            if (exc == NULL) {
                rv = -1;
                break;
            }
            PyObject *stop_value = PyObject_GetAttr(exc, M.str_value);
            Py_DECREF(exc);
            if (stop_value == NULL) {
                rv = -1;
                break;
            }
            rv = worker_finish(w, stop_value);
            Py_DECREF(stop_value);
            break;
        }
        PyObject *exc = fetch_exception();
        if (exc == NULL) {
            rv = -1;
            break;
        }
        if (PyObject_IsInstance(exc, PyExc_Exception) > 0) {
            /* Handler bug or modelled failure. */
            PyObject *request = w->request;
            w->request = NULL;
            Py_CLEAR(w->handler);
            rv = worker_fail_request(w, request, exc, 1);
            Py_XDECREF(request);
            Py_DECREF(exc);
            break;
        }
        /* BaseException: escalate on the next processing slot. */
        Py_CLEAR(w->handler);
        Py_CLEAR(w->request);
        rv = escalate(w->sim, exc);
        Py_DECREF(exc);
        break;
    }
    Py_DECREF(handler);
    return rv;
}

/* machine._begin: pause gate -> deadline -> handler construction. */
static int
worker_begin(CWorkerObject *w, PyObject *request)
{
    /* `request` is owned by the caller throughout. */
    for (;;) {
        PyObject *pause = slot_get(w->instance, M.in_pause);
        if (pause == NULL || pause == Py_None)
            break;
        PyObject *callbacks = slot_get(pause, M.ev_callbacks);
        if (callbacks == NULL || callbacks == Py_None) {
            /* Already processed: a failed gate escalates, a succeeded
             * one re-checks the gate. */
            if (!truthy(slot_get(pause, M.ev_ok))) {
                slot_store(pause, M.ev_defused, Py_True);
                PyObject *exc = slot_get(pause, M.ev_value);
                return escalate(w->sim, exc ? exc : Py_None);
            }
            continue;
        }
        if (!PyList_Check(callbacks)) {
            PyErr_SetString(PyExc_TypeError,
                            "event callbacks must be a list");
            return -1;
        }
        Py_INCREF(request);
        Py_XSETREF(w->request, request);
        w->state = W_PAUSE;
        return PyList_Append(callbacks, (PyObject *)w);
    }
    PyObject *now_obj = slot_get(w->sim, M.sim_now);
    slot_store(request, M.rq_started, now_obj);
    PyObject *deadline = slot_get(request, M.rq_deadline);
    if (deadline != NULL && deadline != Py_None) {
        double now = as_double(now_obj);
        double dl = as_double(deadline);
        if (PyErr_Occurred())
            return -1;
        if (now >= dl) {
            PyObject *res = PyObject_CallMethod(
                w->instance, "_expire_request", "O", request);
            if (res == NULL)
                return -1;
            Py_DECREF(res);
            return worker_next_get(w);
        }
    }
    PyObject *context = NULL, *endpoint_spec = NULL;
    PyObject *handler_fn = NULL, *handler = NULL;
    context = PyObject_CallFunctionObjArgs(M.context_type, w->instance,
                                           request, NULL);
    if (context == NULL)
        goto construction_failed;
    endpoint_spec = PyObject_CallOneArg(
        w->resolve, slot_get(request, M.rq_endpoint));
    if (endpoint_spec == NULL)
        goto construction_failed;
    handler_fn = PyObject_GetAttr(endpoint_spec, M.str_handler);
    if (handler_fn == NULL)
        goto construction_failed;
    handler = PyObject_CallOneArg(handler_fn, context);
    if (handler == NULL)
        goto construction_failed;
    Py_DECREF(context);
    Py_DECREF(endpoint_spec);
    Py_DECREF(handler_fn);
    Py_INCREF(request);
    Py_XSETREF(w->request, request);
    w->handler = handler;
    w->state = W_RUN;
    return worker_drive(w, NULL, 0);

construction_failed:
    Py_XDECREF(context);
    Py_XDECREF(endpoint_spec);
    Py_XDECREF(handler_fn);
    /* except Exception -> fail the request; BaseException propagates
     * (exactly the reference's try/except Exception). */
    {
        PyObject *exc = fetch_exception();
        if (exc == NULL)
            return -1;
        int is_exc = PyObject_IsInstance(exc, PyExc_Exception);
        if (is_exc <= 0) {
            if (is_exc == 0)
                PyErr_SetObject((PyObject *)Py_TYPE(exc), exc);
            Py_DECREF(exc);
            return -1;
        }
        int rv = worker_fail_request(w, request, exc, 1);
        Py_DECREF(exc);
        return rv;
    }
}

/* machine.__call__(event): the event-callback entry point. */
static PyObject *
CWorker_vectorcall(PyObject *self, PyObject *const *args, size_t nargsf,
                   PyObject *kwnames)
{
    CWorkerObject *w = (CWorkerObject *)self;
    if (PyVectorcall_NARGS(nargsf) != 1
        || (kwnames != NULL && PyTuple_GET_SIZE(kwnames) > 0)) {
        PyErr_SetString(PyExc_TypeError,
                        "worker machine expects exactly one event");
        return NULL;
    }
    PyObject *event = args[0];
    int rv;
    int state = w->state;
    if (state == W_RUN) {
        PyObject *value = slot_get(event, M.ev_value);
        if (truthy(slot_get(event, M.ev_ok)))
            rv = worker_drive(w, value, 0);
        else {
            slot_store(event, M.ev_defused, Py_True);
            rv = worker_drive(w, value, 1);
        }
    }
    else if (!truthy(slot_get(event, M.ev_ok))) {
        /* Failed wake with no handler frame: defuse and escalate. */
        slot_store(event, M.ev_defused, Py_True);
        PyObject *exc = slot_get(event, M.ev_value);
        rv = escalate(w->sim, exc ? exc : Py_None);
    }
    else if (state == W_GET) {
        PyObject *request = slot_get(event, M.ev_value);
        Py_XINCREF(request);
        rv = request ? worker_begin(w, request) : -1;
        Py_XDECREF(request);
    }
    else if (state == W_PAUSE) {
        PyObject *request = w->request;
        w->request = NULL;
        rv = request ? worker_begin(w, request) : -1;
        if (request == NULL)
            PyErr_SetString(PyExc_SystemError,
                            "paused worker lost its request");
        Py_XDECREF(request);
    }
    else    /* W_BOOT */
        rv = worker_next_get(w);
    if (rv < 0)
        return NULL;
    Py_RETURN_NONE;
}

static void
CWorker_dealloc(CWorkerObject *w)
{
    PyObject_GC_UnTrack(w);
    Py_XDECREF(w->instance);
    Py_XDECREF(w->deployment);
    Py_XDECREF(w->sim);
    Py_XDECREF(w->rpc_respond);
    Py_XDECREF(w->resolve);
    Py_XDECREF(w->queue_get);
    Py_XDECREF(w->request);
    Py_XDECREF(w->handler);
    Py_TYPE(w)->tp_free((PyObject *)w);
}

static int
CWorker_traverse(CWorkerObject *w, visitproc visit, void *arg)
{
    Py_VISIT(w->instance);
    Py_VISIT(w->deployment);
    Py_VISIT(w->sim);
    Py_VISIT(w->rpc_respond);
    Py_VISIT(w->resolve);
    Py_VISIT(w->queue_get);
    Py_VISIT(w->request);
    Py_VISIT(w->handler);
    return 0;
}

static int
CWorker_clear_impl(CWorkerObject *w)
{
    Py_CLEAR(w->instance);
    Py_CLEAR(w->deployment);
    Py_CLEAR(w->rpc_respond);
    Py_CLEAR(w->resolve);
    Py_CLEAR(w->queue_get);
    Py_CLEAR(w->request);
    Py_CLEAR(w->handler);
    return 0;
}

static PyObject *
CWorker_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    PyObject *instance;
    if (!M.configured) {
        PyErr_SetString(PyExc_RuntimeError,
                        "repro.sim._cmodel.configure() has not been called");
        return NULL;
    }
    if (kwds != NULL && PyDict_GET_SIZE(kwds) > 0) {
        PyErr_SetString(PyExc_TypeError,
                        "CWorker() takes no keyword arguments");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O", &instance))
        return NULL;
    CWorkerObject *w = (CWorkerObject *)type->tp_alloc(type, 0);
    if (w == NULL)
        return NULL;
    w->vectorcall = CWorker_vectorcall;
    w->state = W_BOOT;
    Py_INCREF(instance);
    w->instance = instance;
    PyObject *deployment = slot_get(instance, M.in_deployment);
    if (deployment == NULL) {
        PyErr_SetString(PyExc_AttributeError, "deployment");
        goto fail;
    }
    Py_INCREF(deployment);
    w->deployment = deployment;
    w->sim = PyObject_GetAttr(deployment, M.str_sim);
    if (w->sim == NULL)
        goto fail;
    PyObject *rpc = PyObject_GetAttr(deployment, M.str_rpc);
    if (rpc == NULL)
        goto fail;
    w->rpc_respond = PyObject_GetAttr(rpc, M.str_respond);
    Py_DECREF(rpc);
    if (w->rpc_respond == NULL)
        goto fail;
    PyObject *spec = slot_get(instance, M.in_spec);
    if (spec == NULL) {
        PyErr_SetString(PyExc_AttributeError, "spec");
        goto fail;
    }
    w->resolve = PyObject_GetAttr(spec, M.str_resolve);
    if (w->resolve == NULL)
        goto fail;
    PyObject *queue = slot_get(instance, M.in_queue);
    if (queue == NULL) {
        PyErr_SetString(PyExc_AttributeError, "queue");
        goto fail;
    }
    w->queue_get = PyObject_GetAttr(queue, M.str_get);
    if (w->queue_get == NULL)
        goto fail;
    /* Same bootstrap pattern (and counter consumption) as the Python
     * machine and Process: first run on the next processing slot. */
    PyObject *bootstrap = PyObject_CallOneArg(M.event_type, w->sim);
    if (bootstrap == NULL)
        goto fail;
    PyObject *callbacks = slot_get(bootstrap, M.ev_callbacks);
    if (callbacks == NULL || !PyList_Check(callbacks)
        || PyList_Append(callbacks, (PyObject *)w) < 0) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_SystemError,
                            "fresh event has no callback list");
        Py_DECREF(bootstrap);
        goto fail;
    }
    PyObject *res = PyObject_CallMethodNoArgs(bootstrap, M.str_succeed);
    Py_DECREF(bootstrap);
    if (res == NULL)
        goto fail;
    Py_DECREF(res);
    return (PyObject *)w;
fail:
    Py_DECREF(w);
    return NULL;
}

static PyTypeObject CWorker_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._cmodel.CWorker",
    .tp_basicsize = sizeof(CWorkerObject),
    .tp_dealloc = (destructor)CWorker_dealloc,
    .tp_vectorcall_offset = offsetof(CWorkerObject, vectorcall),
    .tp_call = PyVectorcall_Call,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC
        | Py_TPFLAGS_HAVE_VECTORCALL,
    .tp_doc = "Compiled replica worker machine "
              "(see repro.services.instance._WorkerMachine).",
    .tp_traverse = (traverseproc)CWorker_traverse,
    .tp_clear = (inquiry)CWorker_clear_impl,
    .tp_new = CWorker_new,
};

/* ------------------------------------------------------------------ */
/* Module configuration                                                */
/* ------------------------------------------------------------------ */

static Py_ssize_t
member_offset(PyObject *type, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_TypeError,
                     "%.200s.%s is not a slot member descriptor",
                     ((PyTypeObject *)type)->tp_name, name);
        Py_DECREF(descr);
        return -1;
    }
    Py_ssize_t offset = ((PyMemberDescrObject *)descr)->d_member->offset;
    Py_DECREF(descr);
    return offset;
}

static PyObject *
cmodel_configure(PyObject *Py_UNUSED(module), PyObject *args)
{
    PyObject *event_type, *pending, *sim_error, *sim_type;
    PyObject *burst_type, *group_type, *request_type, *instance_type;
    PyObject *context_type, *protocol_error, *sched_error, *memmodel_type;
    if (!PyArg_ParseTuple(args, "OOOOOOOOOOOO", &event_type, &pending,
                          &sim_error, &sim_type, &burst_type, &group_type,
                          &request_type, &instance_type, &context_type,
                          &protocol_error, &sched_error, &memmodel_type))
        return NULL;
    if (!PyType_Check(event_type) || !PyType_Check(sim_type)
        || !PyType_Check(burst_type) || !PyType_Check(group_type)
        || !PyType_Check(request_type) || !PyType_Check(instance_type)
        || !PyType_Check(context_type) || !PyType_Check(memmodel_type)) {
        PyErr_SetString(PyExc_TypeError,
                        "configure() expects (Event, _PENDING, "
                        "SimulationError, Simulator, CpuBurst, TaskGroup, "
                        "Request, ServiceInstance, ServiceContext, "
                        "_worker_protocol_error, SchedulingError, "
                        "MemorySystemModel)");
        return NULL;
    }

    Py_ssize_t ev_sim = member_offset(event_type, "sim");
    Py_ssize_t ev_callbacks = member_offset(event_type, "callbacks");
    Py_ssize_t ev_value = member_offset(event_type, "_value");
    Py_ssize_t ev_ok = member_offset(event_type, "_ok");
    Py_ssize_t ev_defused = member_offset(event_type, "_defused");
    Py_ssize_t ev_qcounter = member_offset(event_type, "_qcounter");
    Py_ssize_t sim_now = member_offset(sim_type, "now");
    Py_ssize_t sim_push_ready = member_offset(sim_type, "_push_ready");
    Py_ssize_t b_demand = member_offset(burst_type, "demand");
    Py_ssize_t b_group = member_offset(burst_type, "group");
    Py_ssize_t b_done = member_offset(burst_type, "done");
    Py_ssize_t b_submitted = member_offset(burst_type, "submitted_at");
    Py_ssize_t b_started = member_offset(burst_type, "started_at");
    Py_ssize_t b_finished = member_offset(burst_type, "finished_at");
    Py_ssize_t b_cpu_index = member_offset(burst_type, "cpu_index");
    Py_ssize_t b_wall = member_offset(burst_type, "wall_time");
    Py_ssize_t g_group_id = member_offset(group_type, "group_id");
    Py_ssize_t g_profile = member_offset(group_type, "profile");
    Py_ssize_t g_cpu_time = member_offset(group_type, "cpu_time");
    Py_ssize_t g_last_ccx = member_offset(group_type, "last_ccx");
    Py_ssize_t g_completed = member_offset(group_type, "bursts_completed");
    Py_ssize_t rq_endpoint = member_offset(request_type, "endpoint");
    Py_ssize_t rq_done = member_offset(request_type, "done");
    Py_ssize_t rq_started = member_offset(request_type, "started_at");
    Py_ssize_t rq_completed = member_offset(request_type, "completed_at");
    Py_ssize_t rq_deadline = member_offset(request_type, "deadline");
    Py_ssize_t in_deployment = member_offset(instance_type, "deployment");
    Py_ssize_t in_spec = member_offset(instance_type, "spec");
    Py_ssize_t in_queue = member_offset(instance_type, "queue");
    Py_ssize_t in_outstanding = member_offset(instance_type, "outstanding");
    Py_ssize_t in_completed = member_offset(instance_type, "completed");
    Py_ssize_t in_pause = member_offset(instance_type, "_pause");
    Py_ssize_t in_group = member_offset(instance_type, "group");
    Py_ssize_t in_demand_factor = member_offset(instance_type,
                                                "demand_factor");
    if (ev_sim < 0 || ev_callbacks < 0 || ev_value < 0 || ev_ok < 0
        || ev_defused < 0 || ev_qcounter < 0 || sim_now < 0
        || sim_push_ready < 0
        || b_demand < 0 || b_group < 0 || b_done < 0 || b_submitted < 0
        || b_started < 0 || b_finished < 0 || b_cpu_index < 0 || b_wall < 0
        || g_group_id < 0 || g_profile < 0
        || g_cpu_time < 0 || g_last_ccx < 0 || g_completed < 0
        || rq_endpoint < 0 || rq_done < 0 || rq_started < 0
        || rq_completed < 0 || rq_deadline < 0 || in_deployment < 0
        || in_spec < 0 || in_queue < 0 || in_outstanding < 0
        || in_completed < 0 || in_pause < 0 || in_group < 0
        || in_demand_factor < 0)
        return NULL;

    if (M.str_throw == NULL) {
        M.str_throw = PyUnicode_InternFromString("throw");
        M.str_succeed = PyUnicode_InternFromString("succeed");
        M.str_fail = PyUnicode_InternFromString("fail");
        M.str_cancel = PyUnicode_InternFromString("cancel");
        M.str_value = PyUnicode_InternFromString("value");
        M.str_get = PyUnicode_InternFromString("get");
        M.str_resolve = PyUnicode_InternFromString("resolve");
        M.str_respond = PyUnicode_InternFromString("respond");
        M.str_tracer = PyUnicode_InternFromString("tracer");
        M.str_record = PyUnicode_InternFromString("record");
        M.str_handler = PyUnicode_InternFromString("handler");
        M.str_sim = PyUnicode_InternFromString("sim");
        M.str_rpc = PyUnicode_InternFromString("rpc");
        M.str_epoch = PyUnicode_InternFromString("_epoch");
        M.str_mem_load = PyUnicode_InternFromString("_running_mem_load");
        M.str_total = PyUnicode_InternFromString("total");
        M.str_intensity = PyUnicode_InternFromString("mem_intensity");
        if (M.str_throw == NULL || M.str_succeed == NULL
            || M.str_fail == NULL || M.str_cancel == NULL
            || M.str_value == NULL || M.str_get == NULL
            || M.str_resolve == NULL || M.str_respond == NULL
            || M.str_tracer == NULL || M.str_record == NULL
            || M.str_handler == NULL || M.str_sim == NULL
            || M.str_rpc == NULL || M.str_epoch == NULL
            || M.str_mem_load == NULL || M.str_total == NULL
            || M.str_intensity == NULL)
            return NULL;
    }

    Py_INCREF(event_type);
    Py_XSETREF(M.event_type, event_type);
    Py_INCREF(pending);
    Py_XSETREF(M.pending, pending);
    Py_INCREF(sim_error);
    Py_XSETREF(M.sim_error, sim_error);
    Py_INCREF(sim_type);
    Py_XSETREF(M.sim_type, sim_type);
    Py_INCREF(burst_type);
    Py_XSETREF(M.burst_type, burst_type);
    Py_INCREF(group_type);
    Py_XSETREF(M.group_type, group_type);
    Py_INCREF(request_type);
    Py_XSETREF(M.request_type, request_type);
    Py_INCREF(instance_type);
    Py_XSETREF(M.instance_type, instance_type);
    Py_INCREF(context_type);
    Py_XSETREF(M.context_type, context_type);
    Py_INCREF(protocol_error);
    Py_XSETREF(M.protocol_error, protocol_error);
    Py_INCREF(sched_error);
    Py_XSETREF(M.sched_error, sched_error);
    Py_INCREF(memmodel_type);
    Py_XSETREF(M.memmodel_type, memmodel_type);

    M.ev_sim = ev_sim;
    M.ev_callbacks = ev_callbacks;
    M.ev_value = ev_value;
    M.ev_ok = ev_ok;
    M.ev_defused = ev_defused;
    M.ev_qcounter = ev_qcounter;
    M.sim_now = sim_now;
    M.sim_push_ready = sim_push_ready;
    M.b_demand = b_demand;
    M.b_group = b_group;
    M.b_done = b_done;
    M.b_submitted = b_submitted;
    M.b_started = b_started;
    M.b_finished = b_finished;
    M.b_cpu_index = b_cpu_index;
    M.b_wall = b_wall;
    M.g_group_id = g_group_id;
    M.g_profile = g_profile;
    M.g_cpu_time = g_cpu_time;
    M.g_last_ccx = g_last_ccx;
    M.g_completed = g_completed;
    M.rq_endpoint = rq_endpoint;
    M.rq_done = rq_done;
    M.rq_started = rq_started;
    M.rq_completed = rq_completed;
    M.rq_deadline = rq_deadline;
    M.in_deployment = in_deployment;
    M.in_spec = in_spec;
    M.in_queue = in_queue;
    M.in_outstanding = in_outstanding;
    M.in_completed = in_completed;
    M.in_pause = in_pause;
    M.in_group = in_group;
    M.in_demand_factor = in_demand_factor;
    M.configured = 1;
    Py_RETURN_NONE;
}

static PyMethodDef cmodel_functions[] = {
    {"configure", cmodel_configure, METH_VARARGS,
     "configure(Event, _PENDING, SimulationError, Simulator, CpuBurst, "
     "TaskGroup, Request, ServiceInstance, ServiceContext, "
     "_worker_protocol_error)\n"
     "Wire the model layer to the Python-side simulation classes."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef cmodel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._cmodel",
    .m_doc = "Compiled model layer: scheduler core + worker machines.",
    .m_size = -1,
    .m_methods = cmodel_functions,
};

PyMODINIT_FUNC
PyInit__cmodel(void)
{
    if (PyType_Ready(&SchedCore_Type) < 0)
        return NULL;
    if (PyType_Ready(&CCompleteCB_Type) < 0)
        return NULL;
    if (PyType_Ready(&CWorker_Type) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&cmodel_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&SchedCore_Type);
    if (PyModule_AddObject(module, "SchedCore",
                           (PyObject *)&SchedCore_Type) < 0) {
        Py_DECREF(&SchedCore_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&CWorker_Type);
    if (PyModule_AddObject(module, "CWorker",
                           (PyObject *)&CWorker_Type) < 0) {
        Py_DECREF(&CWorker_Type);
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
