"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError``, ``ValueError`` from misuse
of the standard library) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class SimulationError(ReproError):
    """Raised for illegal operations on the simulation kernel.

    Examples: running a finished simulator, yielding a foreign object from a
    process, or re-triggering an already-triggered event.
    """


class TopologyError(ReproError):
    """Raised for malformed machine descriptions or invalid CPU references."""


class SchedulingError(ReproError):
    """Raised for scheduler misuse, e.g. a burst with an empty affinity mask."""


class ConfigurationError(ReproError):
    """Raised when an experiment or service configuration is inconsistent."""


class PlacementError(ReproError):
    """Raised when a placement policy cannot satisfy its constraints."""


class WorkloadError(ReproError):
    """Raised for invalid workload definitions (e.g. bad Markov profiles)."""


class ServiceOverloadError(ReproError):
    """A request was shed because a replica's bounded queue was full.

    Travels through the failed completion event to the caller, which may
    count it as an error response (load generators do).
    """


class ServiceUnavailableError(ReproError):
    """A request hit a replica that has been shut down or crashed."""


class DeadlineExceededError(ReproError):
    """A call's deadline elapsed before the response arrived.

    Raised caller-side by the resilient dispatch path when the per-call
    timeout fires, and instance-side when a request is dequeued (or
    arrives off the wire) after its deadline already passed.
    """


class AnalysisError(ReproError):
    """Raised when a statistical fit or analysis cannot be computed."""
