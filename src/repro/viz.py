"""Dependency-free SVG charts for regenerating the paper's figures.

Matplotlib is deliberately not required: these are small, deterministic
SVG writers good enough for scaling curves and breakdown bars.  The
experiment→figure mapping lives in :mod:`repro.experiments.figures`; the
CLI writes them with ``repro run all --figures DIR``.
"""

from __future__ import annotations

import typing as t
from xml.sax.saxutils import escape

from repro._errors import ConfigurationError

#: One series: name → list of (x, y) points.
Series = t.Mapping[str, t.Sequence[tuple[float, float]]]

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
           "#8c564b", "#17becf", "#7f7f7f")

_WIDTH, _HEIGHT = 640, 400
_MARGIN_LEFT, _MARGIN_RIGHT = 70, 20
_MARGIN_TOP, _MARGIN_BOTTOM = 50, 60


def _plot_area() -> tuple[float, float, float, float]:
    return (_MARGIN_LEFT, _MARGIN_TOP,
            _WIDTH - _MARGIN_RIGHT, _HEIGHT - _MARGIN_BOTTOM)


def _ticks(low: float, high: float, n: int = 5) -> list[float]:
    if high <= low:
        high = low + 1.0
    step = (high - low) / (n - 1)
    return [low + i * step for i in range(n)]


def _header(title: str) -> list[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="16" font-weight="bold">{escape(title)}</text>',
    ]


def _axes(x_label: str, y_label: str,
          x_ticks: list[tuple[float, str]],
          y_ticks: list[tuple[float, str]]) -> list[str]:
    left, top, right, bottom = _plot_area()
    parts = [
        f'<line x1="{left}" y1="{bottom}" x2="{right}" y2="{bottom}" '
        f'stroke="black"/>',
        f'<line x1="{left}" y1="{top}" x2="{left}" y2="{bottom}" '
        f'stroke="black"/>',
        f'<text x="{(left + right) / 2}" y="{_HEIGHT - 14}" '
        f'text-anchor="middle" font-size="13">{escape(x_label)}</text>',
        f'<text x="18" y="{(top + bottom) / 2}" text-anchor="middle" '
        f'font-size="13" transform="rotate(-90 18 '
        f'{(top + bottom) / 2})">{escape(y_label)}</text>',
    ]
    for position, label in x_ticks:
        parts.append(f'<line x1="{position:.1f}" y1="{bottom}" '
                     f'x2="{position:.1f}" y2="{bottom + 5}" '
                     f'stroke="black"/>')
        parts.append(f'<text x="{position:.1f}" y="{bottom + 20}" '
                     f'text-anchor="middle" font-size="11">'
                     f'{escape(label)}</text>')
    for position, label in y_ticks:
        parts.append(f'<line x1="{left - 5}" y1="{position:.1f}" '
                     f'x2="{left}" y2="{position:.1f}" stroke="black"/>')
        parts.append(f'<text x="{left - 8}" y="{position + 4:.1f}" '
                     f'text-anchor="end" font-size="11">'
                     f'{escape(label)}</text>')
        parts.append(f'<line x1="{left}" y1="{position:.1f}" '
                     f'x2="{_plot_area()[2]}" y2="{position:.1f}" '
                     f'stroke="#dddddd"/>')
    return parts


def _format_value(value: float) -> str:
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.0f}"
    return f"{value:.2g}"


def line_chart(series: Series, title: str,
               x_label: str = "", y_label: str = "") -> str:
    """A multi-series line chart with markers and a legend."""
    if not series or all(not points for points in series.values()):
        raise ConfigurationError("line_chart needs at least one point")
    left, top, right, bottom = _plot_area()
    xs = [x for points in series.values() for x, __ in points]
    ys = [y for points in series.values() for __, y in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(0.0, min(ys)), max(ys) * 1.05

    def sx(x: float) -> float:
        span = (x_high - x_low) or 1.0
        return left + (x - x_low) / span * (right - left)

    def sy(y: float) -> float:
        span = (y_high - y_low) or 1.0
        return bottom - (y - y_low) / span * (bottom - top)

    parts = _header(title)
    parts += _axes(
        x_label, y_label,
        [(sx(x), _format_value(x)) for x in _ticks(x_low, x_high)],
        [(sy(y), _format_value(y)) for y in _ticks(y_low, y_high)])
    for index, (name, points) in enumerate(series.items()):
        color = _COLORS[index % len(_COLORS)]
        ordered = sorted(points)
        path = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in ordered)
        parts.append(f'<polyline points="{path}" fill="none" '
                     f'stroke="{color}" stroke-width="2"/>')
        for x, y in ordered:
            parts.append(f'<circle cx="{sx(x):.1f}" cy="{sy(y):.1f}" '
                         f'r="3.5" fill="{color}"/>')
        legend_y = top + 16 * index
        parts.append(f'<rect x="{right - 150}" y="{legend_y - 9}" '
                     f'width="12" height="12" fill="{color}"/>')
        parts.append(f'<text x="{right - 133}" y="{legend_y + 2}" '
                     f'font-size="12">{escape(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def bar_chart(labels: t.Sequence[str], values: t.Sequence[float],
              title: str, y_label: str = "",
              color: str = _COLORS[0]) -> str:
    """A single-series vertical bar chart."""
    if not labels or len(labels) != len(values):
        raise ConfigurationError(
            "bar_chart needs equal, non-empty labels and values")
    left, top, right, bottom = _plot_area()
    y_high = max(max(values), 1e-12) * 1.05
    slot = (right - left) / len(labels)
    bar_width = slot * 0.65

    def sy(y: float) -> float:
        return bottom - y / y_high * (bottom - top)

    parts = _header(title)
    parts += _axes("", y_label, [],
                   [(sy(y), _format_value(y)) for y in _ticks(0, y_high)])
    for index, (label, value) in enumerate(zip(labels, values)):
        x = left + slot * index + (slot - bar_width) / 2
        parts.append(f'<rect x="{x:.1f}" y="{sy(value):.1f}" '
                     f'width="{bar_width:.1f}" '
                     f'height="{bottom - sy(value):.1f}" fill="{color}"/>')
        center = x + bar_width / 2
        parts.append(f'<text x="{center:.1f}" y="{bottom + 16}" '
                     f'text-anchor="middle" font-size="11">'
                     f'{escape(str(label))}</text>')
        parts.append(f'<text x="{center:.1f}" y="{sy(value) - 4:.1f}" '
                     f'text-anchor="middle" font-size="10">'
                     f'{_format_value(value)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)


def grouped_bar_chart(groups: t.Sequence[str],
                      series: t.Mapping[str, t.Sequence[float]],
                      title: str, y_label: str = "") -> str:
    """Bars grouped by category, one color per series."""
    if not groups or not series:
        raise ConfigurationError("grouped_bar_chart needs groups and series")
    for name, values in series.items():
        if len(values) != len(groups):
            raise ConfigurationError(
                f"series {name!r} has {len(values)} values for "
                f"{len(groups)} groups")
    left, top, right, bottom = _plot_area()
    y_high = max(max(values) for values in series.values()) * 1.05
    slot = (right - left) / len(groups)
    bar_width = slot * 0.8 / len(series)

    def sy(y: float) -> float:
        return bottom - y / y_high * (bottom - top)

    parts = _header(title)
    parts += _axes("", y_label, [],
                   [(sy(y), _format_value(y)) for y in _ticks(0, y_high)])
    for group_index, group in enumerate(groups):
        base = left + slot * group_index + slot * 0.1
        for series_index, (name, values) in enumerate(series.items()):
            color = _COLORS[series_index % len(_COLORS)]
            value = values[group_index]
            x = base + bar_width * series_index
            parts.append(f'<rect x="{x:.1f}" y="{sy(value):.1f}" '
                         f'width="{bar_width:.1f}" '
                         f'height="{bottom - sy(value):.1f}" '
                         f'fill="{color}"/>')
        parts.append(f'<text x="{base + slot * 0.4:.1f}" '
                     f'y="{bottom + 16}" text-anchor="middle" '
                     f'font-size="11">{escape(str(group))}</text>')
    for series_index, name in enumerate(series):
        color = _COLORS[series_index % len(_COLORS)]
        legend_y = top + 16 * series_index
        parts.append(f'<rect x="{right - 150}" y="{legend_y - 9}" '
                     f'width="12" height="12" fill="{color}"/>')
        parts.append(f'<text x="{right - 133}" y="{legend_y + 2}" '
                     f'font-size="12">{escape(name)}</text>')
    parts.append("</svg>")
    return "\n".join(parts)
