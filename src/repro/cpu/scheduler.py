"""The OS-like CPU scheduler.

Models the mechanisms the paper's experiments manipulate:

* **Affinity masks.** A burst only ever runs on CPUs in its group's mask
  (the simulated `taskset`/cpuset).
* **Wakeup placement.** A newly runnable burst prefers, in order: an idle
  CPU whose whole physical core is idle inside the group's last CCX; an
  idle whole core anywhere in the mask; any idle CPU in the last CCX; any
  idle CPU.  Failing all of those it queues on the allowed CPU with the
  shortest run queue.  This mirrors Linux CFS's idle-core search plus
  LLC-affine wakeups at the fidelity the study needs.
* **Work stealing.** A CPU that runs out of local work pulls the oldest
  eligible burst from the most loaded queue it is allowed to serve.
* **SMT interaction.** When a burst starts or finishes, the sibling
  thread's in-flight burst is re-rated (its completion re-scheduled).
* **Frequency boost.** Execution rate includes a boost factor sampled at
  burst start from current physical-core occupancy.
* **Memory effects.** Execution rate is divided by the
  :class:`~repro.cpu.perf.PerfModel` CPI inflation for (burst, cpu).

Bursts are non-preemptive; service handlers issue short bursts (≤ a few
milliseconds), so this matches OS behaviour at the timescales that matter
while keeping event counts tractable (see DESIGN.md).
"""

from __future__ import annotations

import collections
import functools
import typing as t

from repro._errors import SchedulingError
from repro.cpu.burst import CpuBurst
from repro.cpu.frequency import FrequencyModel
from repro.cpu.perf import NullPerfModel, PerfModel
from repro.cpu.smt import SmtModel
from repro.sim.engine import Handle, Simulator
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine

#: Completion guard against zero-rate pathologies.
_MIN_RATE = 1e-9


class _Running:
    """Bookkeeping for the burst currently executing on one CPU."""

    __slots__ = ("burst", "rate", "segment_start", "remaining", "handle")

    def __init__(self, burst: CpuBurst, rate: float, now: float,
                 handle: Handle):
        self.burst = burst
        self.rate = rate
        self.segment_start = now
        self.remaining = burst.demand  # demand not yet executed
        self.handle = handle


class CpuScheduler:
    """Dispatches :class:`CpuBurst` objects onto a machine's logical CPUs."""

    def __init__(self, sim: Simulator, machine: Machine,
                 online: CpuSet | None = None,
                 smt_model: SmtModel | None = None,
                 frequency_model: FrequencyModel | None = None,
                 perf_model: PerfModel | None = None):
        self.sim = sim
        self.machine = machine
        self.online = online if online is not None else machine.all_cpus()
        if not self.online:
            raise SchedulingError("online CPU set is empty")
        if not self.online.issubset(machine.all_cpus()):
            raise SchedulingError(
                f"online set {self.online!r} exceeds machine CPUs")
        self.smt_model = smt_model or SmtModel()
        self.frequency_model = frequency_model or FrequencyModel(
            machine.spec.base_freq_ghz, machine.spec.max_boost_ghz)
        self.perf_model = perf_model or NullPerfModel()

        n = machine.n_logical_cpus
        self._running: list[_Running | None] = [None] * n
        self._queues: list[collections.deque[CpuBurst]] = [
            collections.deque() for __ in range(n)]
        self._idle: set[int] = set(self.online)
        self._nonempty_queues: set[int] = set()
        self._busy_threads_per_core = [0] * len(machine.cores)
        self.active_cores = 0
        #: Boost denominator: ALL physical cores — offlined cores sit idle
        #: and their power/thermal headroom feeds the active ones, exactly
        #: why few-core configurations clock higher on real parts.
        self.total_cores = len(machine.cores)
        self._busy_time = [0.0] * n
        self.bursts_dispatched = 0
        self.bursts_stolen = 0

        # Hot-path caches.  Topology is immutable for the scheduler's
        # lifetime, both rate models are pure functions of their
        # arguments, and a group's affinity never changes after
        # construction — so all of these are plain memoization, not
        # behavioral state.
        self._cpus = list(machine.cpus)
        self._sibling_index: list[int | None] = [
            (sibling.index if (sibling := machine.sibling(i)) is not None
             else None)
            for i in range(n)]
        self._core_index = [machine.cpu(i).core.index for i in range(n)]
        self._ccx_index = [machine.cpu(i).core.ccx.index for i in range(n)]
        self._complete_callbacks = [functools.partial(self._complete, i)
                                    for i in range(n)]
        self._freq_factor = [
            self.frequency_model.factor(active, self.total_cores)
            for active in range(self.total_cores + 1)]
        self._smt_factor = (self.smt_model.factor(False),
                            self.smt_model.factor(True))
        #: group → sorted tuple of online CPUs in its affinity mask.
        self._allowed_cache: dict[object, tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, burst: CpuBurst) -> None:
        """Make a burst runnable; its ``done`` event fires on completion."""
        allowed = self._allowed_for(burst.group)
        burst.submitted_at = self.sim.now
        cpu_index = self._pick_idle_cpu(burst, allowed)
        if cpu_index is not None:
            self._start(cpu_index, burst)
            return
        queues = self._queues
        target = allowed[0]
        shortest = len(queues[target])
        for i in allowed[1:]:
            depth = len(queues[i])
            if depth < shortest:
                shortest = depth
                target = i
        queues[target].append(burst)
        self._nonempty_queues.add(target)

    def _allowed_for(self, group) -> tuple[int, ...]:
        allowed = self._allowed_cache.get(group)
        if allowed is None:
            allowed = tuple((group.affinity & self.online).ids)
            if not allowed:
                raise SchedulingError(
                    f"burst of {group.name!r} has no online CPU in its "
                    f"affinity {group.affinity!r}")
            self._allowed_cache[group] = allowed
        return allowed

    def busy_time(self, cpu_index: int) -> float:
        """Accumulated busy wall-clock time of one logical CPU."""
        total = self._busy_time[cpu_index]
        running = self._running[cpu_index]
        if running is not None:
            total += self.sim.now - running.segment_start
        return total

    def total_busy_time(self) -> float:
        """Busy time summed over all logical CPUs."""
        return sum(self.busy_time(i) for i in self.online)

    def queue_depth(self) -> int:
        """Bursts currently waiting in run queues."""
        return sum(len(q) for q in self._queues)

    def is_idle(self, cpu_index: int) -> bool:
        """True when the logical CPU is online and not executing."""
        return cpu_index in self._idle

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _pick_idle_cpu(self, burst: CpuBurst,
                       allowed: tuple[int, ...]) -> int | None:
        # Lower score is better: prefer whole idle cores, then cache
        # locality, then low ids (deterministic).  ``allowed`` ascends,
        # so the first perfect score is the global minimum.
        idle = self._idle
        running = self._running
        siblings = self._sibling_index
        ccxs = self._ccx_index
        last_ccx = burst.group.last_ccx
        best = None
        best_score = (2, 2)
        for cpu_index in allowed:
            if cpu_index not in idle:
                continue
            sibling = siblings[cpu_index]
            whole = 0 if sibling is None or running[sibling] is None else 1
            local = 0 if last_ccx is not None \
                and ccxs[cpu_index] == last_ccx else 1
            score = (whole, local)
            if score < best_score:
                best = cpu_index
                best_score = score
                if score == (0, 0):
                    break
        return best

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _rate(self, burst: CpuBurst, cpu_index: int) -> float:
        sibling = self._sibling_index[cpu_index]
        sibling_busy = (sibling is not None
                        and self._running[sibling] is not None)
        rate = (self._freq_factor[self.active_cores]
                * self._smt_factor[sibling_busy]
                / max(1.0, self.perf_model.cpi_inflation(
                    burst, self._cpus[cpu_index])))
        return max(rate, _MIN_RATE)

    def _start(self, cpu_index: int, burst: CpuBurst) -> None:
        now = self.sim.now
        burst.started_at = now
        burst.cpu_index = cpu_index
        self._idle.discard(cpu_index)
        core = self._core_index[cpu_index]
        self._busy_threads_per_core[core] += 1
        if self._busy_threads_per_core[core] == 1:
            self.active_cores += 1
        self.perf_model.on_burst_start(burst, self._cpus[cpu_index])
        rate = self._rate(burst, cpu_index)
        delay = burst.demand / rate
        handle = self.sim.call_in(delay, self._complete_callbacks[cpu_index])
        self._running[cpu_index] = _Running(burst, rate, now, handle)
        self.bursts_dispatched += 1
        self._re_rate_sibling(cpu_index)

    def _complete(self, cpu_index: int) -> None:
        running = self._running[cpu_index]
        assert running is not None, "completion fired on idle CPU"
        now = self.sim.now
        burst = running.burst
        self._busy_time[cpu_index] += now - running.segment_start
        self._running[cpu_index] = None
        core = self._core_index[cpu_index]
        self._busy_threads_per_core[core] -= 1
        if self._busy_threads_per_core[core] == 0:
            self.active_cores -= 1

        burst.finished_at = now
        burst.wall_time = now - t.cast(float, burst.started_at)
        group = burst.group
        group.cpu_time += burst.wall_time
        group.last_ccx = self._ccx_index[cpu_index]
        group.bursts_completed += 1
        self.perf_model.on_burst_complete(
            burst, self._cpus[cpu_index], burst.wall_time)

        self._re_rate_sibling(cpu_index)
        self._dispatch_next(cpu_index)
        burst.done.succeed(burst)

    def _dispatch_next(self, cpu_index: int) -> None:
        queue = self._queues[cpu_index]
        if queue:
            next_burst = queue.popleft()
            if not queue:
                self._nonempty_queues.discard(cpu_index)
            self._start(cpu_index, next_burst)
            return
        stolen = self._steal_for(cpu_index)
        if stolen is not None:
            self.bursts_stolen += 1
            self._start(cpu_index, stolen)
            return
        self._idle.add(cpu_index)

    def _steal_for(self, cpu_index: int) -> CpuBurst | None:
        """Pull the oldest eligible burst from the most loaded queue."""
        nonempty = self._nonempty_queues
        if not nonempty:
            return None
        queues = self._queues
        # The deepest queue (lowest id on ties) almost always yields an
        # eligible burst, so pick it with one linear pass and only sort
        # the full victim order if that first choice comes up empty.
        best = -1
        best_depth = 0
        for v in nonempty:
            depth = len(queues[v])
            if depth > best_depth or (depth == best_depth and v < best):
                best = v
                best_depth = depth
        stolen = self._steal_from(best, cpu_index)
        if stolen is not None or len(nonempty) == 1:
            return stolen
        for __, victim in sorted((-len(queues[v]), v) for v in nonempty):
            if victim == best:
                continue
            stolen = self._steal_from(victim, cpu_index)
            if stolen is not None:
                return stolen
        return None

    def _steal_from(self, victim: int, cpu_index: int) -> CpuBurst | None:
        queue = self._queues[victim]
        for position, burst in enumerate(queue):
            if cpu_index in burst.group.affinity:
                del queue[position]
                if not queue:
                    self._nonempty_queues.discard(victim)
                return burst
        return None

    def _re_rate_sibling(self, cpu_index: int) -> None:
        sibling = self._sibling_index[cpu_index]
        if sibling is None:
            return
        running = self._running[sibling]
        if running is None:
            return
        now = self.sim.now
        executed = (now - running.segment_start) * running.rate
        running.remaining = max(0.0, running.remaining - executed)
        self._busy_time[sibling] += now - running.segment_start
        running.segment_start = now
        running.handle.cancel()
        running.rate = self._rate(running.burst, sibling)
        delay = running.remaining / running.rate
        running.handle = self.sim.call_in(
            delay, self._complete_callbacks[sibling])

    def __repr__(self) -> str:
        busy = sum(1 for r in self._running if r is not None)
        return (f"<CpuScheduler {busy} running, {self.queue_depth()} queued, "
                f"{len(self._idle)} idle>")
