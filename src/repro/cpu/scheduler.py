"""The OS-like CPU scheduler.

Models the mechanisms the paper's experiments manipulate:

* **Affinity masks.** A burst only ever runs on CPUs in its group's mask
  (the simulated `taskset`/cpuset).
* **Wakeup placement.** A newly runnable burst prefers, in order: an idle
  CPU whose whole physical core is idle inside the group's last CCX; an
  idle whole core anywhere in the mask; any idle CPU in the last CCX; any
  idle CPU.  Failing all of those it queues on the allowed CPU with the
  shortest run queue.  This mirrors Linux CFS's idle-core search plus
  LLC-affine wakeups at the fidelity the study needs.
* **Work stealing.** A CPU that runs out of local work pulls the oldest
  eligible burst from the most loaded queue it is allowed to serve.
* **SMT interaction.** When a burst starts or finishes, the sibling
  thread's in-flight burst is re-rated (its completion re-scheduled).
* **Frequency boost.** Execution rate includes a boost factor sampled at
  burst start from current physical-core occupancy.
* **Memory effects.** Execution rate is divided by the
  :class:`~repro.cpu.perf.PerfModel` CPI inflation for (burst, cpu).

Bursts are non-preemptive; service handlers issue short bursts (≤ a few
milliseconds), so this matches OS behaviour at the timescales that matter
while keeping event counts tractable (see DESIGN.md).
"""

from __future__ import annotations

import collections
import typing as t

from repro._errors import SchedulingError
from repro.cpu.burst import CpuBurst
from repro.cpu.frequency import FrequencyModel
from repro.cpu.perf import NullPerfModel, PerfModel
from repro.cpu.smt import SmtModel
from repro.sim.engine import Handle, Simulator
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine

#: Completion guard against zero-rate pathologies.
_MIN_RATE = 1e-9


class _Running:
    """Bookkeeping for the burst currently executing on one CPU."""

    __slots__ = ("burst", "rate", "segment_start", "remaining", "handle")

    def __init__(self, burst: CpuBurst, rate: float, now: float,
                 handle: Handle):
        self.burst = burst
        self.rate = rate
        self.segment_start = now
        self.remaining = burst.demand  # demand not yet executed
        self.handle = handle


class CpuScheduler:
    """Dispatches :class:`CpuBurst` objects onto a machine's logical CPUs."""

    def __init__(self, sim: Simulator, machine: Machine,
                 online: CpuSet | None = None,
                 smt_model: SmtModel | None = None,
                 frequency_model: FrequencyModel | None = None,
                 perf_model: PerfModel | None = None):
        self.sim = sim
        self.machine = machine
        self.online = online if online is not None else machine.all_cpus()
        if not self.online:
            raise SchedulingError("online CPU set is empty")
        if not self.online.issubset(machine.all_cpus()):
            raise SchedulingError(
                f"online set {self.online!r} exceeds machine CPUs")
        self.smt_model = smt_model or SmtModel()
        self.frequency_model = frequency_model or FrequencyModel(
            machine.spec.base_freq_ghz, machine.spec.max_boost_ghz)
        self.perf_model = perf_model or NullPerfModel()

        n = machine.n_logical_cpus
        self._running: list[_Running | None] = [None] * n
        self._queues: list[collections.deque[CpuBurst]] = [
            collections.deque() for __ in range(n)]
        self._idle: set[int] = set(self.online)
        self._nonempty_queues: set[int] = set()
        self._busy_threads_per_core = [0] * len(machine.cores)
        self.active_cores = 0
        #: Boost denominator: ALL physical cores — offlined cores sit idle
        #: and their power/thermal headroom feeds the active ones, exactly
        #: why few-core configurations clock higher on real parts.
        self.total_cores = len(machine.cores)
        self._busy_time = [0.0] * n
        self.bursts_dispatched = 0
        self.bursts_stolen = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, burst: CpuBurst) -> None:
        """Make a burst runnable; its ``done`` event fires on completion."""
        allowed = burst.group.affinity & self.online
        if not allowed:
            raise SchedulingError(
                f"burst of {burst.group.name!r} has no online CPU in its "
                f"affinity {burst.group.affinity!r}")
        burst.submitted_at = self.sim.now
        cpu_index = self._pick_idle_cpu(burst, allowed)
        if cpu_index is not None:
            self._start(cpu_index, burst)
            return
        target = min(allowed, key=lambda i: (len(self._queues[i]), i))
        self._queues[target].append(burst)
        self._nonempty_queues.add(target)

    def busy_time(self, cpu_index: int) -> float:
        """Accumulated busy wall-clock time of one logical CPU."""
        total = self._busy_time[cpu_index]
        running = self._running[cpu_index]
        if running is not None:
            total += self.sim.now - running.segment_start
        return total

    def total_busy_time(self) -> float:
        """Busy time summed over all logical CPUs."""
        return sum(self.busy_time(i) for i in self.online)

    def queue_depth(self) -> int:
        """Bursts currently waiting in run queues."""
        return sum(len(q) for q in self._queues)

    def is_idle(self, cpu_index: int) -> bool:
        """True when the logical CPU is online and not executing."""
        return cpu_index in self._idle

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _pick_idle_cpu(self, burst: CpuBurst, allowed: CpuSet) -> int | None:
        candidates = [i for i in allowed if i in self._idle]
        if not candidates:
            return None
        last_ccx = burst.group.last_ccx
        machine = self.machine

        def score(cpu_index: int) -> tuple[int, int, int]:
            cpu = machine.cpu(cpu_index)
            sibling = machine.sibling(cpu_index)
            whole_core_idle = (sibling is None
                               or self._running[sibling.index] is None)
            in_last_ccx = last_ccx is not None and cpu.ccx.index == last_ccx
            # Lower is better: prefer whole idle cores, then cache locality,
            # then low ids (deterministic).
            return (0 if whole_core_idle else 1,
                    0 if in_last_ccx else 1,
                    cpu_index)

        return min(candidates, key=score)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _rate(self, burst: CpuBurst, cpu_index: int) -> float:
        cpu = self.machine.cpu(cpu_index)
        sibling = self.machine.sibling(cpu_index)
        sibling_busy = (sibling is not None
                        and self._running[sibling.index] is not None)
        rate = (self.frequency_model.factor(self.active_cores,
                                            self.total_cores)
                * self.smt_model.factor(sibling_busy)
                / max(1.0, self.perf_model.cpi_inflation(burst, cpu)))
        return max(rate, _MIN_RATE)

    def _start(self, cpu_index: int, burst: CpuBurst) -> None:
        now = self.sim.now
        burst.started_at = now
        burst.cpu_index = cpu_index
        self._idle.discard(cpu_index)
        core = self.machine.cpu(cpu_index).core.index
        self._busy_threads_per_core[core] += 1
        if self._busy_threads_per_core[core] == 1:
            self.active_cores += 1
        self.perf_model.on_burst_start(burst, self.machine.cpu(cpu_index))
        rate = self._rate(burst, cpu_index)
        delay = burst.demand / rate
        handle = self.sim.call_in(delay, lambda: self._complete(cpu_index))
        self._running[cpu_index] = _Running(burst, rate, now, handle)
        self.bursts_dispatched += 1
        self._re_rate_sibling(cpu_index)

    def _complete(self, cpu_index: int) -> None:
        running = self._running[cpu_index]
        assert running is not None, "completion fired on idle CPU"
        now = self.sim.now
        burst = running.burst
        self._busy_time[cpu_index] += now - running.segment_start
        self._running[cpu_index] = None
        core_obj = self.machine.cpu(cpu_index).core
        self._busy_threads_per_core[core_obj.index] -= 1
        if self._busy_threads_per_core[core_obj.index] == 0:
            self.active_cores -= 1

        burst.finished_at = now
        burst.wall_time = now - t.cast(float, burst.started_at)
        group = burst.group
        group.cpu_time += burst.wall_time
        group.last_ccx = core_obj.ccx.index
        group.bursts_completed += 1
        self.perf_model.on_burst_complete(
            burst, self.machine.cpu(cpu_index), burst.wall_time)

        self._re_rate_sibling(cpu_index)
        self._dispatch_next(cpu_index)
        burst.done.succeed(burst)

    def _dispatch_next(self, cpu_index: int) -> None:
        queue = self._queues[cpu_index]
        if queue:
            next_burst = queue.popleft()
            if not queue:
                self._nonempty_queues.discard(cpu_index)
            self._start(cpu_index, next_burst)
            return
        stolen = self._steal_for(cpu_index)
        if stolen is not None:
            self.bursts_stolen += 1
            self._start(cpu_index, stolen)
            return
        self._idle.add(cpu_index)

    def _steal_for(self, cpu_index: int) -> CpuBurst | None:
        """Pull the oldest eligible burst from the most loaded queue."""
        if not self._nonempty_queues:
            return None
        for victim in sorted(self._nonempty_queues,
                             key=lambda v: (-len(self._queues[v]), v)):
            queue = self._queues[victim]
            for position, burst in enumerate(queue):
                if cpu_index in burst.group.affinity:
                    del queue[position]
                    if not queue:
                        self._nonempty_queues.discard(victim)
                    return burst
        return None

    def _re_rate_sibling(self, cpu_index: int) -> None:
        sibling = self.machine.sibling(cpu_index)
        if sibling is None:
            return
        running = self._running[sibling.index]
        if running is None:
            return
        now = self.sim.now
        executed = (now - running.segment_start) * running.rate
        running.remaining = max(0.0, running.remaining - executed)
        self._busy_time[sibling.index] += now - running.segment_start
        running.segment_start = now
        running.handle.cancel()
        running.rate = self._rate(running.burst, sibling.index)
        delay = running.remaining / running.rate
        running.handle = self.sim.call_in(
            delay, lambda: self._complete(sibling.index))

    def __repr__(self) -> str:
        busy = sum(1 for r in self._running if r is not None)
        return (f"<CpuScheduler {busy} running, {self.queue_depth()} queued, "
                f"{len(self._idle)} idle>")
