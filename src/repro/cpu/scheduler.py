"""The OS-like CPU scheduler.

Models the mechanisms the paper's experiments manipulate:

* **Affinity masks.** A burst only ever runs on CPUs in its group's mask
  (the simulated `taskset`/cpuset).
* **Wakeup placement.** A newly runnable burst prefers, in order: an idle
  CPU whose whole physical core is idle inside the group's last CCX; an
  idle whole core anywhere in the mask; any idle CPU in the last CCX; any
  idle CPU.  Failing all of those it queues on the allowed CPU with the
  shortest run queue.  This mirrors Linux CFS's idle-core search plus
  LLC-affine wakeups at the fidelity the study needs.
* **Work stealing.** A CPU that runs out of local work pulls the oldest
  eligible burst from the most loaded queue it is allowed to serve.
* **SMT interaction.** When a burst starts or finishes, the sibling
  thread's in-flight burst is re-rated (its completion re-scheduled).
* **Frequency boost.** Execution rate includes a boost factor sampled at
  burst start from current physical-core occupancy.
* **Memory effects.** Execution rate is divided by the
  :class:`~repro.cpu.perf.PerfModel` CPI inflation for (burst, cpu).

Bursts are non-preemptive; service handlers issue short bursts (≤ a few
milliseconds), so this matches OS behaviour at the timescales that matter
while keeping event counts tractable (see DESIGN.md).
"""

from __future__ import annotations

import collections
import functools
import typing as t

import numpy as np

from repro._errors import SchedulingError
from repro.cpu.burst import CpuBurst
from repro.cpu.frequency import FrequencyModel
from repro.cpu.perf import NullPerfModel, PerfModel
from repro.cpu.smt import SmtModel
from repro.sim.engine import Simulator
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine

#: Completion guard against zero-rate pathologies.
_MIN_RATE = 1e-9


class _Running:
    """Bookkeeping for the burst currently executing on one CPU."""

    __slots__ = ("burst", "rate", "segment_start", "remaining", "handle")

    def __init__(self, burst: CpuBurst, rate: float, now: float, handle):
        self.burst = burst
        self.rate = rate
        self.segment_start = now
        self.remaining = burst.demand  # demand not yet executed
        self.handle = handle


class CpuScheduler:
    """Dispatches :class:`CpuBurst` objects onto a machine's logical CPUs."""

    def __init__(self, sim: Simulator, machine: Machine,
                 online: CpuSet | None = None,
                 smt_model: SmtModel | None = None,
                 frequency_model: FrequencyModel | None = None,
                 perf_model: PerfModel | None = None):
        self.sim = sim
        self.machine = machine
        self.online = online if online is not None else machine.all_cpus()
        if not self.online:
            raise SchedulingError("online CPU set is empty")
        if not self.online.issubset(machine.all_cpus()):
            raise SchedulingError(
                f"online set {self.online!r} exceeds machine CPUs")
        self.smt_model = smt_model or SmtModel()
        self.frequency_model = frequency_model or FrequencyModel(
            machine.spec.base_freq_ghz, machine.spec.max_boost_ghz)
        self.perf_model = perf_model or NullPerfModel()

        n = machine.n_logical_cpus
        self._running: list[_Running | None] = [None] * n
        self._queues: list[collections.deque[CpuBurst]] = [
            collections.deque() for __ in range(n)]
        self._idle: set[int] = set(self.online)
        self._nonempty_queues: set[int] = set()
        #: Incremental mirror of ``len(self._queues[i])`` so the
        #: shortest-queue scan vectorizes over wide affinity masks.
        self._queue_depths = np.zeros(n, dtype=np.int32)
        self._busy_threads_per_core = [0] * len(machine.cores)
        self.active_cores = 0
        #: Boost denominator: ALL physical cores — offlined cores sit idle
        #: and their power/thermal headroom feeds the active ones, exactly
        #: why few-core configurations clock higher on real parts.
        self.total_cores = len(machine.cores)
        self._busy_time = [0.0] * n
        self.bursts_dispatched = 0
        self.bursts_stolen = 0

        # Hot-path caches.  Topology is immutable for the scheduler's
        # lifetime, both rate models are pure functions of their
        # arguments, and a group's affinity never changes after
        # construction — so all of these are plain memoization, not
        # behavioral state.
        self._cpus = list(machine.cpus)
        self._sibling_index: list[int | None] = [
            (sibling.index if (sibling := machine.sibling(i)) is not None
             else None)
            for i in range(n)]
        self._core_index = [machine.cpu(i).core.index for i in range(n)]
        self._ccx_index = [machine.cpu(i).core.ccx.index for i in range(n)]
        self._complete_callbacks = [functools.partial(self._complete, i)
                                    for i in range(n)]
        #: The kernel's schedule entry point, bound once: completions
        #: and sibling re-rates are the scheduler's hottest scheduling
        #: sites, and this strips an attribute hop per event no matter
        #: which kernel backend is active.
        self._kschedule = sim.schedule
        self._freq_factor = [
            self.frequency_model.factor(active, self.total_cores)
            for active in range(self.total_cores + 1)]
        self._smt_factor = (self.smt_model.factor(False),
                            self.smt_model.factor(True))
        #: group → (sorted tuple, frozenset, int32 array) of online CPUs
        #: in its mask.
        self._allowed_cache: dict[
            object,
            tuple[tuple[int, ...], frozenset[int], np.ndarray]] = {}
        #: cpu → CPUs whose queues could ever hold a burst this CPU may
        #: steal.  A queue on ``v`` only holds bursts of groups allowing
        #: ``v``; CPU ``c`` can steal such a burst only when the group
        #: also allows ``c`` — so victims outside every group mask that
        #: contains ``c`` are provably fruitless and the steal scan
        #: skips them.  Grows monotonically as groups first submit; the
        #: boolean matrix mirrors the sets for the vectorized victim scan.
        self._steal_eligible: list[set[int]] = [set() for __ in range(n)]
        self._steal_eligible_mask = np.zeros((n, n), dtype=bool)
        #: reusable output buffer for the masked-depth victim scan.
        self._steal_scratch = np.zeros(n, dtype=self._queue_depths.dtype)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, burst: CpuBurst) -> None:
        """Make a burst runnable; its ``done`` event fires on completion."""
        allowed, allowed_set, allowed_arr = self._allowed_for(burst.group)
        burst.submitted_at = self.sim.now
        # Saturation fast path: with no idle CPU anywhere there is nothing
        # to place on, so skip the placement scan entirely.
        if self._idle:
            cpu_index = self._pick_idle_cpu(burst, allowed, allowed_set)
            if cpu_index is not None:
                self._start(cpu_index, burst)
                return
        queues = self._queues
        if len(allowed) == len(queues):
            # Full mask (unpinned group, every CPU online): the depth
            # mirror already is the allowed view, so argmin it directly
            # without the per-call fancy-index gather.
            target = int(self._queue_depths.argmin())
        elif len(allowed) >= 16:
            # Wide mask: one vectorized argmin over the depth mirror.
            # ``argmin`` keeps the first occurrence of the minimum and
            # ``allowed`` ascends, so the pick matches the scalar scan.
            target = allowed[int(self._queue_depths[allowed_arr].argmin())]
        else:
            target = allowed[0]
            shortest = len(queues[target])
            if shortest:
                for i in allowed[1:]:
                    depth = len(queues[i])
                    if depth < shortest:
                        shortest = depth
                        target = i
                        if not depth:
                            # An empty queue is the global minimum;
                            # ``allowed`` ascends, so the first one found
                            # is the pick.
                            break
        queues[target].append(burst)
        self._queue_depths[target] += 1
        self._nonempty_queues.add(target)

    def _allowed_for(self, group) -> tuple[
            tuple[int, ...], frozenset[int], np.ndarray]:
        allowed = self._allowed_cache.get(group)
        if allowed is None:
            ids = tuple((group.affinity & self.online).ids)
            if not ids:
                raise SchedulingError(
                    f"burst of {group.name!r} has no online CPU in its "
                    f"affinity {group.affinity!r}")
            allowed = (ids, frozenset(ids),
                       np.asarray(ids, dtype=np.int32))
            self._allowed_cache[group] = allowed
            eligible = self._steal_eligible
            for cpu_index in ids:
                eligible[cpu_index].update(ids)
            arr = allowed[2]
            self._steal_eligible_mask[arr[:, None], arr] = True
        return allowed

    def busy_time(self, cpu_index: int) -> float:
        """Accumulated busy wall-clock time of one logical CPU."""
        total = self._busy_time[cpu_index]
        running = self._running[cpu_index]
        if running is not None:
            total += self.sim.now - running.segment_start
        return total

    def total_busy_time(self) -> float:
        """Busy time summed over all logical CPUs."""
        return sum(self.busy_time(i) for i in self.online)

    def queue_depth(self) -> int:
        """Bursts currently waiting in run queues."""
        return sum(len(q) for q in self._queues)

    def is_idle(self, cpu_index: int) -> bool:
        """True when the logical CPU is online and not executing."""
        return cpu_index in self._idle

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------
    def _pick_idle_cpu(self, burst: CpuBurst, allowed: tuple[int, ...],
                       allowed_set: frozenset[int]) -> int | None:
        # Lower score is better: prefer whole idle cores, then cache
        # locality, then low ids (deterministic).  ``allowed`` ascends,
        # so the first perfect score is the global minimum.
        idle = self._idle
        running = self._running
        siblings = self._sibling_index
        ccxs = self._ccx_index
        last_ccx = burst.group.last_ccx
        # Scores are kept as two ints (whole, local) plus the id tiebreak
        # instead of tuples: this scan runs per submission and the tuple
        # allocation/compare dominated it at low load.
        if len(idle) <= 4:
            # Loaded steady state: score just the few idle CPUs.  The
            # explicit id tiebreak picks the same CPU as the ascending
            # mask scan below — the lowest id among the minimal
            # (whole, local) scores.
            best = None
            best_whole = best_local = 2
            for cpu_index in idle:
                if cpu_index not in allowed_set:
                    continue
                sibling = siblings[cpu_index]
                whole = 0 if sibling is None or running[sibling] is None \
                    else 1
                local = 0 if last_ccx is not None \
                    and ccxs[cpu_index] == last_ccx else 1
                if whole != best_whole:
                    if whole > best_whole:
                        continue
                elif local != best_local:
                    if local > best_local:
                        continue
                elif best is not None and cpu_index > best:
                    continue
                best = cpu_index
                best_whole = whole
                best_local = local
            return best
        best = None
        best_whole = best_local = 2
        for cpu_index in allowed:
            if cpu_index not in idle:
                continue
            sibling = siblings[cpu_index]
            whole = 0 if sibling is None or running[sibling] is None else 1
            local = 0 if last_ccx is not None \
                and ccxs[cpu_index] == last_ccx else 1
            if whole != best_whole:
                if whole > best_whole:
                    continue
            elif local >= best_local:
                continue
            best = cpu_index
            best_whole = whole
            best_local = local
            if whole == 0 and local == 0:
                break
        return best

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _rate(self, burst: CpuBurst, cpu_index: int) -> float:
        sibling = self._sibling_index[cpu_index]
        sibling_busy = (sibling is not None
                        and self._running[sibling] is not None)
        inflation = self.perf_model.cpi_inflation(burst, self._cpus[cpu_index])
        if inflation < 1.0:
            inflation = 1.0
        rate = (self._freq_factor[self.active_cores]
                * self._smt_factor[sibling_busy] / inflation)
        return rate if rate > _MIN_RATE else _MIN_RATE

    def _start(self, cpu_index: int, burst: CpuBurst,
               rerate_sibling: bool = True) -> None:
        now = self.sim.now
        burst.started_at = now
        burst.cpu_index = cpu_index
        self._idle.discard(cpu_index)
        core = self._core_index[cpu_index]
        self._busy_threads_per_core[core] += 1
        if self._busy_threads_per_core[core] == 1:
            self.active_cores += 1
        self.perf_model.on_burst_start(burst, self._cpus[cpu_index])
        rate = self._rate(burst, cpu_index)
        # call_in minus the delay validation (demand/rate is never
        # negative): completions are the scheduler's hottest scheduling
        # site, so they go straight to the kernel.
        handle = self._kschedule(now + burst.demand / rate,
                                 self._complete_callbacks[cpu_index])
        self._running[cpu_index] = _Running(burst, rate, now, handle)
        self.bursts_dispatched += 1
        if rerate_sibling:
            self._re_rate_sibling(cpu_index)

    def _complete(self, cpu_index: int) -> None:
        running = self._running[cpu_index]
        assert running is not None, "completion fired on idle CPU"
        now = self.sim.now
        burst = running.burst
        self._busy_time[cpu_index] += now - running.segment_start
        self._running[cpu_index] = None
        core = self._core_index[cpu_index]
        self._busy_threads_per_core[core] -= 1
        if self._busy_threads_per_core[core] == 0:
            self.active_cores -= 1

        burst.finished_at = now
        # started_at is always set by _start here; no cast indirection on
        # the completion hot path.
        wall_time = burst.wall_time = now - burst.started_at  # type: ignore[operator]
        group = burst.group
        group.cpu_time += wall_time
        group.last_ccx = self._ccx_index[cpu_index]
        group.bursts_completed += 1
        self.perf_model.on_burst_complete(
            burst, self._cpus[cpu_index], burst.wall_time)

        # One sibling re-rate after dispatch instead of one before plus
        # one inside _start: the pre-dispatch re-rate would cover zero
        # elapsed time (same timestamp) and its handle is immediately
        # cancelled by the post-dispatch one, so the sibling's
        # remaining/rate/handle end up identical either way, and the
        # sibling's new completion still enqueues after the dispatched
        # burst's (uniform counter shift keeps relative FIFO order).
        self._dispatch_next(cpu_index)
        self._re_rate_sibling(cpu_index)
        burst.done.succeed(burst)

    def _dispatch_next(self, cpu_index: int) -> None:
        queue = self._queues[cpu_index]
        if queue:
            next_burst = queue.popleft()
            self._queue_depths[cpu_index] -= 1
            if not queue:
                self._nonempty_queues.discard(cpu_index)
            self._start(cpu_index, next_burst, rerate_sibling=False)
            return
        stolen = self._steal_for(cpu_index)
        if stolen is not None:
            self.bursts_stolen += 1
            self._start(cpu_index, stolen, rerate_sibling=False)
            return
        self._idle.add(cpu_index)

    def _steal_for(self, cpu_index: int) -> CpuBurst | None:
        """Pull the oldest eligible burst from the most loaded queue."""
        nonempty = self._nonempty_queues
        if not nonempty:
            return None
        queues = self._queues
        # Victims outside this CPU's eligibility set can never yield a
        # steal (see _steal_eligible), so skipping them preserves the
        # traversal's outcome exactly while sparing the queue scans —
        # under pinned placements most cross-CCX victims drop out here.
        # The deepest queue (lowest id on ties) almost always yields an
        # eligible burst, so pick it vectorized — masked argmax over the
        # depth mirror keeps the first (lowest-id) occurrence of the
        # maximum, matching the scalar deepest-then-lowest-id rule —
        # and only sort the full victim order if that choice comes up
        # empty.  Ineligible and empty queues mask to depth 0 and can
        # never win, exactly as the per-victim scan skipped them.
        masked = np.multiply(self._steal_eligible_mask[cpu_index],
                             self._queue_depths, out=self._steal_scratch)
        best = int(masked.argmax())
        if not masked[best]:
            return None
        stolen = self._steal_from(best, cpu_index)
        if stolen is not None:
            return stolen
        eligible = self._steal_eligible[cpu_index]
        for __, victim in sorted((-len(queues[v]), v) for v in nonempty
                                 if v in eligible):
            if victim == best:
                continue
            stolen = self._steal_from(victim, cpu_index)
            if stolen is not None:
                return stolen
        return None

    def _steal_from(self, victim: int, cpu_index: int) -> CpuBurst | None:
        queue = self._queues[victim]
        for position, burst in enumerate(queue):
            if cpu_index in burst.group.affinity:
                del queue[position]
                self._queue_depths[victim] -= 1
                if not queue:
                    self._nonempty_queues.discard(victim)
                return burst
        return None

    def _re_rate_sibling(self, cpu_index: int) -> None:
        sibling = self._sibling_index[cpu_index]
        if sibling is None:
            return
        running = self._running[sibling]
        if running is None:
            return
        sim = self.sim
        now = sim.now
        elapsed = now - running.segment_start
        remaining = running.remaining - elapsed * running.rate
        running.remaining = remaining if remaining > 0.0 else 0.0
        self._busy_time[sibling] += elapsed
        running.segment_start = now
        running.handle.cancel()
        rate = running.rate = self._rate(running.burst, sibling)
        # call_in minus the delay validation (remaining is clamped
        # non-negative above).
        running.handle = self._kschedule(
            now + running.remaining / rate,
            self._complete_callbacks[sibling])

    def __repr__(self) -> str:
        busy = sum(1 for r in self._running if r is not None)
        return (f"<CpuScheduler {busy} running, {self.queue_depth()} queued, "
                f"{len(self._idle)} idle>")


class CompiledCpuScheduler(CpuScheduler):
    """The scheduler with its burst lifecycle run by the C core.

    ``repro.sim._cmodel.SchedCore`` keeps the run queues, idle set,
    depth mirrors, running-burst records, and busy-time accumulators in
    C arrays and executes submit/placement/steal/re-rate/complete
    entirely in C, calling back into Python only where the reference
    does (the perf model's ``on_burst_start`` / ``cpi_inflation`` /
    ``on_burst_complete`` hooks, kernel scheduling, handle cancellation
    and ``done`` completion) — in exactly the reference's order, so
    behavior is byte-identical.  :class:`CpuScheduler` remains the
    line-for-line reference semantics and keeps running under the
    ``python`` backend.

    The base class still precomputes every topology/rate cache; the C
    core reads those caches once at construction, so the two layers can
    never disagree about the machine.
    """

    def __init__(self, sim: Simulator, machine: Machine,
                 online: CpuSet | None = None,
                 smt_model: SmtModel | None = None,
                 frequency_model: FrequencyModel | None = None,
                 perf_model: PerfModel | None = None):
        super().__init__(sim, machine, online=online, smt_model=smt_model,
                         frequency_model=frequency_model,
                         perf_model=perf_model)
        from repro.sim.kernel import model_module
        module = model_module()
        if module is None:  # pragma: no cover - guarded by make_scheduler
            raise SchedulingError(
                "CompiledCpuScheduler requires repro.sim._cmodel; run "
                "'python setup.py build_ext --inplace'")
        #: Online ids in ascending order, read by the C core.
        self._online_ids = sorted(self.online.ids)
        self._core = module.SchedCore(self)

    # The C core registers groups through this callback on first
    # submission; reusing _allowed_for keeps the exact error message
    # (and the base caches coherent, should anything inspect them).
    def _core_register(self, group) -> tuple[int, ...]:
        return self._allowed_for(group)[0]

    # ------------------------------------------------------------------
    # Public API, delegated to the core
    # ------------------------------------------------------------------
    def submit(self, burst: CpuBurst) -> None:
        self._core.submit(burst)

    def busy_time(self, cpu_index: int) -> float:
        return self._core.busy_time(cpu_index)

    def total_busy_time(self) -> float:
        core = self._core
        return sum(core.busy_time(i) for i in self._online_ids)

    def queue_depth(self) -> int:
        return self._core.queue_depth()

    def is_idle(self, cpu_index: int) -> bool:
        return self._core.is_idle(cpu_index)

    # The base initializer writes these counters before the core exists;
    # afterwards the core's counts are authoritative.
    @property
    def bursts_dispatched(self) -> int:
        core = self.__dict__.get("_core")
        if core is None:
            return self.__dict__.get("_shadow_dispatched", 0)
        return core.bursts_dispatched()

    @bursts_dispatched.setter
    def bursts_dispatched(self, value: int) -> None:
        self.__dict__["_shadow_dispatched"] = value

    @property
    def bursts_stolen(self) -> int:
        core = self.__dict__.get("_core")
        if core is None:
            return self.__dict__.get("_shadow_stolen", 0)
        return core.bursts_stolen()

    @bursts_stolen.setter
    def bursts_stolen(self, value: int) -> None:
        self.__dict__["_shadow_stolen"] = value

    def __repr__(self) -> str:
        running, queued, idle = self._core.stats()
        return (f"<CompiledCpuScheduler {running} running, "
                f"{queued} queued, {idle} idle>")


def make_scheduler(sim: Simulator, machine: Machine,
                   online: CpuSet | None = None,
                   smt_model: SmtModel | None = None,
                   frequency_model: FrequencyModel | None = None,
                   perf_model: PerfModel | None = None, *,
                   compiled: bool | None = None) -> CpuScheduler:
    """A scheduler for ``sim``: the C core when the model layer is built
    and the simulator runs the compiled kernel, else the reference.

    ``compiled`` forces the choice (the deployment resolves it once so
    all of its machinery agrees); ``None`` re-derives it from the
    simulator's kernel backend.
    """
    if compiled is None:
        from repro.sim.kernel import model_available
        compiled = (sim.kernel_backend == "compiled" and model_available())
    cls = CompiledCpuScheduler if compiled else CpuScheduler
    return cls(sim, machine, online=online, smt_model=smt_model,
               frequency_model=frequency_model, perf_model=perf_model)
