"""Simultaneous multithreading (SMT) co-run model.

When both hardware threads of a physical core are busy, each runs slower
than it would alone, but the pair's combined throughput exceeds a single
thread's.  The model captures this with a single *yield* parameter: with
``smt_yield = y``, two co-running threads each execute at ``y / 2`` of
single-thread speed, for an aggregate speedup of ``y``.

Server-side Java workloads such as TeaStore typically see SMT yields of
~1.2–1.4 on EPYC-class cores; compute-dense kernels see less.  The paper's
SMT experiment (E4) measures exactly this aggregate effect.
"""

from __future__ import annotations

from repro._errors import SchedulingError


class SmtModel:
    """Per-thread speed factor as a function of sibling occupancy."""

    def __init__(self, smt_yield: float = 1.3):
        if not 1.0 <= smt_yield <= 2.0:
            raise SchedulingError(
                f"smt_yield must be in [1.0, 2.0]: {smt_yield}")
        self.smt_yield = smt_yield

    def factor(self, sibling_busy: bool) -> float:
        """Execution-rate multiplier for one thread (1.0 when alone)."""
        if not sibling_busy:
            return 1.0
        return self.smt_yield / 2.0

    def __repr__(self) -> str:
        return f"SmtModel(smt_yield={self.smt_yield})"
