"""Schedulable CPU work units and their grouping.

A :class:`TaskGroup` stands for one OS-level entity that owns threads — in
this simulator, one microservice instance (or one batch kernel).  All bursts
of a group share an affinity mask, a memory home node, and accounting.

A :class:`CpuBurst` is one non-preemptive slice of CPU demand, expressed in
seconds of execution *at nominal speed* (base clock, warm caches, no SMT
sharing).  The scheduler divides demand by the effective execution rate to
get wall-clock time.
"""

from __future__ import annotations

import itertools
import typing as t

from repro._errors import SchedulingError
from repro.topology.cpuset import CpuSet

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.memory.profile import WorkloadProfile
    from repro.sim.events import Event

_group_ids = itertools.count()


class TaskGroup:
    """A scheduling/accounting group (one service instance, typically)."""

    __slots__ = ("group_id", "name", "affinity", "profile", "home_node",
                 "cpu_time", "last_ccx", "bursts_completed")

    def __init__(self, name: str, affinity: CpuSet,
                 profile: "WorkloadProfile | None" = None,
                 home_node: int = 0):
        if not affinity:
            raise SchedulingError(f"task group {name!r}: empty affinity")
        self.group_id = next(_group_ids)
        self.name = name
        self.affinity = affinity
        #: Memory/cache behaviour descriptor (see repro.memory); optional.
        self.profile = profile
        #: NUMA node holding this group's memory (first-touch placement).
        self.home_node = home_node
        #: Accumulated wall-clock CPU time consumed by this group's bursts.
        self.cpu_time = 0.0
        #: CCX index where this group's bursts last ran (placement hint).
        self.last_ccx: int | None = None
        self.bursts_completed = 0

    def __repr__(self) -> str:
        return f"<TaskGroup {self.name!r} id={self.group_id}>"


class CpuBurst:
    """One non-preemptive unit of CPU demand awaiting execution.

    ``done`` is an event that succeeds with the burst once it finishes;
    service worker processes yield it.
    """

    __slots__ = ("demand", "group", "done", "submitted_at", "started_at",
                 "finished_at", "cpu_index", "wall_time")

    def __init__(self, demand: float, group: TaskGroup, done: "Event"):
        if demand < 0:
            raise SchedulingError(f"negative CPU demand: {demand}")
        self.demand = demand
        self.group = group
        self.done = done
        self.submitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        #: Logical CPU the burst executed on (set at dispatch).
        self.cpu_index: int | None = None
        #: Wall-clock execution time (≥ demand when slowed down).
        self.wall_time: float = 0.0

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting in a run queue before first dispatch."""
        if self.submitted_at is None or self.started_at is None:
            raise SchedulingError("burst has not been dispatched yet")
        return self.started_at - self.submitted_at

    def __repr__(self) -> str:
        return (f"<CpuBurst {self.demand * 1e3:.3f}ms of "
                f"{self.group.name!r}>")
