"""CPU execution model.

A discrete-event model of how an OS schedules short CPU bursts onto the
logical CPUs of a :class:`~repro.topology.Machine`:

* :class:`~repro.cpu.burst.CpuBurst` — one non-preemptive slice of CPU
  demand belonging to a :class:`~repro.cpu.burst.TaskGroup` (e.g. a service
  instance).
* :class:`~repro.cpu.scheduler.CpuScheduler` — per-CPU run queues with
  idle-first, SMT-aware, cache-aware wakeup placement and work stealing.
* :class:`~repro.cpu.smt.SmtModel` — slowdown when both hardware threads of
  a core are busy.
* :class:`~repro.cpu.frequency.FrequencyModel` — boost clocks under partial
  core occupancy.
* :class:`~repro.cpu.perf.PerfModel` — hook through which the memory-system
  model (cache/NUMA) inflates a burst's CPI; the default
  :class:`~repro.cpu.perf.NullPerfModel` is a no-op.
"""

from repro.cpu.burst import CpuBurst, TaskGroup
from repro.cpu.frequency import FlatFrequencyModel, FrequencyModel
from repro.cpu.perf import NullPerfModel, PerfModel
from repro.cpu.scheduler import CpuScheduler
from repro.cpu.smt import SmtModel

__all__ = [
    "CpuBurst",
    "CpuScheduler",
    "FlatFrequencyModel",
    "FrequencyModel",
    "NullPerfModel",
    "PerfModel",
    "SmtModel",
    "TaskGroup",
]
