"""Core-count-dependent frequency (boost) model.

High-core-count server parts run well above base clock when few cores are
active and settle to base clock when all cores are loaded.  The model maps
the fraction of active physical cores to a speed multiplier relative to
base clock:

* at or below ``full_boost_fraction`` active cores → ``max_boost/base``;
* at 100% active cores → 1.0;
* linear in between.

CPU demands throughout the simulator are calibrated at base clock, so the
factor only ever speeds execution up.  The factor is sampled when a burst
starts (a documented approximation: mid-burst occupancy changes do not
re-clock it; SMT changes do, via :mod:`repro.cpu.smt`).
"""

from __future__ import annotations

from repro._errors import SchedulingError


class FrequencyModel:
    """Linear boost-residency model."""

    def __init__(self, base_ghz: float, boost_ghz: float,
                 full_boost_fraction: float = 0.25):
        if base_ghz <= 0 or boost_ghz < base_ghz:
            raise SchedulingError(
                f"need 0 < base ({base_ghz}) <= boost ({boost_ghz})")
        if not 0.0 < full_boost_fraction < 1.0:
            raise SchedulingError(
                f"full_boost_fraction must be in (0, 1): "
                f"{full_boost_fraction}")
        self.base_ghz = base_ghz
        self.boost_ghz = boost_ghz
        self.full_boost_fraction = full_boost_fraction

    def factor(self, active_cores: int, total_cores: int) -> float:
        """Speed multiplier (≥ 1.0) given current physical-core occupancy."""
        if total_cores <= 0:
            raise SchedulingError(f"total_cores must be positive: {total_cores}")
        max_factor = self.boost_ghz / self.base_ghz
        occupancy = min(1.0, active_cores / total_cores)
        if occupancy <= self.full_boost_fraction:
            return max_factor
        # Linear decay from max_factor down to 1.0 at full occupancy.
        span = 1.0 - self.full_boost_fraction
        position = (occupancy - self.full_boost_fraction) / span
        return max_factor - (max_factor - 1.0) * position

    def __repr__(self) -> str:
        return (f"FrequencyModel(base={self.base_ghz}, "
                f"boost={self.boost_ghz}, "
                f"full_boost_fraction={self.full_boost_fraction})")


class FlatFrequencyModel(FrequencyModel):
    """A no-boost model (factor 1.0 always), for ablations and tests."""

    def __init__(self, base_ghz: float = 1.0):
        super().__init__(base_ghz, base_ghz, 0.5)

    def factor(self, active_cores: int, total_cores: int) -> float:
        return 1.0
