"""Performance-model hook between the CPU scheduler and the memory system.

The scheduler asks the performance model two things:

* :meth:`PerfModel.cpi_inflation` — by what factor is this burst's CPI
  inflated when running on this logical CPU *right now* (cache pressure,
  NUMA distance)?  The burst's execution rate is divided by this factor.
* :meth:`PerfModel.on_burst_complete` — accounting callback so counter
  models can attribute instructions/cycles/misses.

The memory package provides the real implementation
(:class:`repro.memory.MemorySystemModel`); :class:`NullPerfModel` keeps the
scheduler usable standalone.
"""

from __future__ import annotations

import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.burst import CpuBurst
    from repro.topology.model import LogicalCpu


class PerfModel(t.Protocol):
    """What the scheduler needs from a memory-system model."""

    def cpi_inflation(self, burst: "CpuBurst", cpu: "LogicalCpu") -> float:
        """CPI multiplier (≥ 1.0) for this burst on this CPU."""
        ...  # pragma: no cover

    def on_burst_start(self, burst: "CpuBurst", cpu: "LogicalCpu") -> None:
        """Hook invoked when a burst is dispatched onto a CPU."""
        ...  # pragma: no cover

    def on_burst_complete(self, burst: "CpuBurst", cpu: "LogicalCpu",
                          wall_time: float) -> None:
        """Accounting hook invoked when a burst finishes."""
        ...  # pragma: no cover


class NullPerfModel:
    """No memory effects: CPI inflation is always 1.0."""

    def cpi_inflation(self, burst: "CpuBurst", cpu: "LogicalCpu") -> float:
        return 1.0

    def on_burst_start(self, burst: "CpuBurst", cpu: "LogicalCpu") -> None:
        return None

    def on_burst_complete(self, burst: "CpuBurst", cpu: "LogicalCpu",
                          wall_time: float) -> None:
        return None
