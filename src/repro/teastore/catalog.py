"""Footprints, microarchitectural profiles, and CPU-demand calibration.

The absolute numbers are calibrated stand-ins (the paper's testbed is not
reproducible), chosen to preserve the *relationships* its analysis rests
on:

* WebUI is the heaviest CPU consumer (template rendering), Recommender the
  lightest online service, the database the least scalable;
* service code footprints are several MiB of flat JIT-compiled Java —
  large relative to L1i/L2 and to the code share of an L3 slice, making
  the services front-end hungry (low IPC, high L1i MPKI) in contrast to
  SPEC-class loop kernels;
* the ImageProvider and database carry data working sets that overwhelm a
  16 MiB L3 slice when several services share it.

All demand constants are milliseconds of CPU at base clock.
"""

from __future__ import annotations

from repro._units import mib, ms
from repro.memory.profile import WorkloadProfile

#: The six modelled CPU-consuming TeaStore components.
SERVICE_NAMES = ("webui", "auth", "persistence", "image",
                 "recommender", "db")


def service_profiles() -> dict[str, WorkloadProfile]:
    """Per-service memory/microarchitecture descriptors."""
    return {
        "webui": WorkloadProfile(
            name="webui", code_bytes=mib(3.5), data_bytes=mib(6.0),
            mem_intensity=0.45, frontend_intensity=0.70,
            base_ipc=0.80, l1i_mpki=35.0, l1d_mpki=28.0, l2_mpki=10.0,
            l3_mpki=1.2, branch_mpki=9.0),
        "auth": WorkloadProfile(
            name="auth", code_bytes=mib(1.2), data_bytes=mib(1.5),
            mem_intensity=0.25, frontend_intensity=0.55,
            base_ipc=1.05, l1i_mpki=22.0, l1d_mpki=15.0, l2_mpki=6.0,
            l3_mpki=0.6, branch_mpki=6.0),
        "persistence": WorkloadProfile(
            name="persistence", code_bytes=mib(3.0), data_bytes=mib(8.0),
            mem_intensity=0.50, frontend_intensity=0.60,
            base_ipc=0.85, l1i_mpki=28.0, l1d_mpki=24.0, l2_mpki=9.0,
            l3_mpki=1.5, branch_mpki=7.5),
        "image": WorkloadProfile(
            name="image", code_bytes=mib(1.8), data_bytes=mib(24.0),
            mem_intensity=0.70, frontend_intensity=0.40,
            base_ipc=0.75, l1i_mpki=15.0, l1d_mpki=35.0, l2_mpki=14.0,
            l3_mpki=3.0, branch_mpki=4.0),
        "recommender": WorkloadProfile(
            name="recommender", code_bytes=mib(2.2), data_bytes=mib(10.0),
            mem_intensity=0.55, frontend_intensity=0.45,
            base_ipc=0.90, l1i_mpki=18.0, l1d_mpki=22.0, l2_mpki=8.0,
            l3_mpki=1.8, branch_mpki=5.0),
        "db": WorkloadProfile(
            name="db", code_bytes=mib(3.8), data_bytes=mib(40.0),
            mem_intensity=0.75, frontend_intensity=0.50,
            base_ipc=0.70, l1i_mpki=20.0, l1d_mpki=40.0, l2_mpki=16.0,
            l3_mpki=4.0, branch_mpki=6.5),
    }


# ---------------------------------------------------------------------------
# CPU demand constants (seconds at base clock)
# ---------------------------------------------------------------------------

#: WebUI: request parsing/session handling per endpoint.
WEBUI_PARSE = {
    "home": ms(1.6), "login": ms(1.2), "category": ms(1.6),
    "product": ms(1.6), "add_to_cart": ms(1.2), "logout": ms(0.8),
    "cart_view": ms(1.2), "checkout": ms(1.6),
}

#: WebUI: template rendering per endpoint (the dominant cost).
WEBUI_RENDER = {
    "home": ms(4.0), "login": ms(2.4), "category": ms(4.8),
    "product": ms(4.0), "add_to_cart": ms(2.0), "logout": ms(1.2),
    "cart_view": ms(2.8), "checkout": ms(3.2),
}

#: Auth demands.
AUTH_VALIDATE = ms(1.0)
AUTH_LOGIN = ms(3.6)
AUTH_LOGOUT = ms(0.8)

#: Persistence demands (ORM/serialization work, excluding the DB call).
PERSISTENCE = {
    "get_categories": ms(1.6),
    "get_products": ms(3.2),
    "get_product": ms(1.6),
    "get_user": ms(1.2),
    "cart_update": ms(2.0),
    "get_cart": ms(1.2),
    "place_order": ms(2.8),
}

#: Database query execution costs, passed as the call payload.
DB_COST = {
    "get_categories": ms(2.0),
    "get_products": ms(3.6),
    "get_product": ms(2.0),
    "get_user": ms(1.6),
    "cart_update": ms(2.8),
    "get_cart": ms(1.6),
    "place_order": ms(5.6),  # multi-row transactional insert
}

#: ImageProvider: cache-hit serving vs miss (scale + re-encode) for
#: full-size images (home banner, product page).
IMAGE_HIT = ms(1.0)
IMAGE_MISS = ms(7.2)

#: Category-page preview thumbnails: tiny, overwhelmingly cached.
IMAGE_PREVIEW_HIT = ms(0.25)
IMAGE_PREVIEW_MISS = ms(2.4)

#: Recommender online lookup.
RECOMMEND = ms(3.6)
