"""Assembly: build and place a whole TeaStore on a deployment."""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.services.deployment import Deployment
from repro.services.instance import ServiceInstance
from repro.teastore.catalog import SERVICE_NAMES
from repro.teastore.config import TeaStoreConfig
from repro.teastore.profiles import browse_profile, buy_profile
from repro.teastore.services import build_specs
from repro.topology.cpuset import CpuSet

#: service → one (affinity, home_node) pair per replica.  ``home_node``
#: of ``None`` means first-touch (node of the mask's lowest CPU).
Placement = t.Mapping[str, t.Sequence[tuple[CpuSet, int | None]]]


class TeaStore:
    """A deployed store: handles to its replicas and session factories."""

    def __init__(self, deployment: Deployment, config: TeaStoreConfig,
                 instances: dict[str, list[ServiceInstance]]):
        self.deployment = deployment
        self.config = config
        self.instances = instances

    def replicas(self, service: str) -> list[ServiceInstance]:
        """All replicas of one service."""
        try:
            return self.instances[service]
        except KeyError:
            raise ConfigurationError(
                f"unknown service {service!r}; known: {SERVICE_NAMES}"
            ) from None

    def replica_counts(self) -> dict[str, int]:
        """Replica count per service."""
        return {name: len(instances)
                for name, instances in self.instances.items()}

    def browse_session_factory(self):
        """Session factory for the standard browse profile."""
        return browse_profile().session_factory(self.deployment)

    def buy_session_factory(self):
        """Session factory for the checkout-heavy buy profile."""
        return buy_profile().session_factory(self.deployment)

    def total_completed(self) -> int:
        """Requests completed across all replicas (including internal)."""
        return sum(instance.completed
                   for instances in self.instances.values()
                   for instance in instances)

    def __repr__(self) -> str:
        counts = ", ".join(f"{name}×{len(instances)}"
                           for name, instances in sorted(self.instances.items()))
        return f"<TeaStore {counts}>"


def build_teastore(deployment: Deployment,
                   config: TeaStoreConfig | None = None,
                   placement: Placement | None = None) -> TeaStore:
    """Instantiate every TeaStore service on ``deployment``.

    Without ``placement``, ``config.replicas`` replicas of each service are
    created unpinned (machine-wide affinity) — the untuned deployment an
    operator gets out of the box.  With ``placement``, the replica count
    and affinity of each service come from the placement (which is how the
    :mod:`repro.placement` policies apply their decisions).
    """
    config = config or TeaStoreConfig()
    specs = build_specs(config)
    instances: dict[str, list[ServiceInstance]] = {}
    for name in SERVICE_NAMES:
        spec = specs[name]
        replicas: list[ServiceInstance] = []
        if placement is not None:
            if name not in placement:
                raise ConfigurationError(
                    f"placement is missing service {name!r}")
            for affinity, home_node in placement[name]:
                replicas.append(deployment.add_instance(
                    spec, affinity=affinity, home_node=home_node))
        else:
            for __ in range(config.replica_count(name)):
                replicas.append(deployment.add_instance(spec))
        instances[name] = replicas
    return TeaStore(deployment, config, instances)
