"""Assembly: build and place a whole TeaStore on a deployment."""

from __future__ import annotations

import typing as t

from repro.apps.runtime import Application, Placement, deploy_application
from repro.apps.teastore_app import teastore_app
from repro.services.deployment import Deployment
from repro.services.instance import ServiceInstance
from repro.teastore.config import TeaStoreConfig

__all__ = ["Placement", "TeaStore", "build_teastore"]


class TeaStore(Application):
    """A deployed store: handles to its replicas and session factories."""

    def __init__(self, deployment: Deployment, config: TeaStoreConfig,
                 instances: dict[str, list[ServiceInstance]],
                 spec: t.Any | None = None):
        super().__init__(deployment, spec or teastore_app(config),
                         instances)
        self.config = config

    def browse_session_factory(self):
        """Session factory for the standard browse profile."""
        return self.session_factory("browse")

    def buy_session_factory(self):
        """Session factory for the checkout-heavy buy profile."""
        return self.session_factory("buy")

    def __repr__(self) -> str:
        counts = ", ".join(f"{name}×{len(instances)}"
                           for name, instances in sorted(self.instances.items()))
        return f"<TeaStore {counts}>"


def build_teastore(deployment: Deployment,
                   config: TeaStoreConfig | None = None,
                   placement: Placement | None = None) -> TeaStore:
    """Instantiate every TeaStore service on ``deployment``.

    Without ``placement``, ``config.replicas`` replicas of each service are
    created unpinned (machine-wide affinity) — the untuned deployment an
    operator gets out of the box.  With ``placement``, the replica count
    and affinity of each service come from the placement (which is how the
    :mod:`repro.placement` policies apply their decisions).
    """
    config = config or TeaStoreConfig()
    app = teastore_app(config)
    deployed = deploy_application(deployment, app, placement=placement)
    return TeaStore(deployment, config, deployed.instances, spec=app)
