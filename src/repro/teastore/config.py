"""TeaStore deployment configuration."""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError

#: The six modelled CPU-consuming components.
_KNOWN_SERVICES = ("webui", "auth", "persistence", "image",
                   "recommender", "db")

#: Performance-tuned baseline replica counts for the 128-logical-CPU
#: platform: sized by the services' relative CPU appetites (WebUI heaviest,
#: Recommender light, one database), which is how the paper's baseline was
#: tuned before topology awareness was applied.
DEFAULT_REPLICAS: dict[str, int] = {
    "webui": 4,
    "auth": 2,
    "persistence": 3,
    "image": 2,
    "recommender": 1,
    "db": 1,
}

#: Worker-pool widths (Tomcat threads / DB connections) per replica —
#: generous, as in the tuned testbed, so CPU rather than thread count is
#: the binding resource.
DEFAULT_WORKERS: dict[str, int] = {
    "webui": 200,
    "auth": 32,
    "persistence": 64,
    "image": 64,
    "recommender": 32,
    "db": 64,
}


@dataclasses.dataclass(frozen=True)
class TeaStoreConfig:
    """Knobs of the TeaStore application model.

    ``demand_scale`` multiplies every CPU demand — useful for shrinking
    tests or stress-scaling.  The DB serial fractions model lock/log
    serialization inside the database, which is what caps Persistence+DB
    scaling (the per-service scaling differences the paper exploits).
    """

    replicas: t.Mapping[str, int] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_REPLICAS))
    workers: t.Mapping[str, int] = dataclasses.field(
        default_factory=lambda: dict(DEFAULT_WORKERS))
    demand_scale: float = 1.0
    demand_cv: float = 0.25
    image_cache_hit_rate: float = 0.75
    image_preview_hit_rate: float = 0.95
    db_read_serial_fraction: float = 0.05
    db_write_serial_fraction: float = 0.12

    def __post_init__(self) -> None:
        for mapping_name in ("replicas", "workers"):
            mapping = getattr(self, mapping_name)
            for service, count in mapping.items():
                if service not in _KNOWN_SERVICES:
                    raise ConfigurationError(
                        f"{mapping_name}: unknown service {service!r}; "
                        f"known: {_KNOWN_SERVICES}")
                if count < 1:
                    raise ConfigurationError(
                        f"{mapping_name}[{service!r}] must be >= 1: {count}")
        if self.demand_scale <= 0:
            raise ConfigurationError(
                f"demand_scale must be positive: {self.demand_scale}")
        if self.demand_cv < 0:
            raise ConfigurationError(
                f"demand_cv must be >= 0: {self.demand_cv}")
        for field in ("image_cache_hit_rate", "image_preview_hit_rate"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{field} must be in [0, 1]: {value}")
        for field in ("db_read_serial_fraction", "db_write_serial_fraction"):
            value = getattr(self, field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{field} must be in [0, 1]: {value}")

    def replica_count(self, service: str) -> int:
        """Replica count for ``service`` (defaults applied)."""
        return self.replicas.get(service, DEFAULT_REPLICAS[service])

    def worker_count(self, service: str) -> int:
        """Worker-pool width for ``service`` (defaults applied)."""
        return self.workers.get(service, DEFAULT_WORKERS[service])

    def with_replicas(self, **overrides: int) -> "TeaStoreConfig":
        """A copy with some replica counts replaced."""
        replicas = dict(self.replicas)
        replicas.update(overrides)
        return dataclasses.replace(self, replicas=replicas)
