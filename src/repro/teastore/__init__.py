"""The TeaStore application model.

TeaStore (von Kistowski et al., ICPE 2018) is the publicly available
microservice reference application the paper studies: a web store composed
of six services — WebUI, Auth, Persistence, ImageProvider, Recommender and
Registry — backed by a relational database, driven over HTTP by a
closed-loop load generator walking a "browse" user profile.

This package models that application on the :mod:`repro.services`
substrate:

* :mod:`~repro.teastore.config` — replica counts, worker pools, CPU-demand
  calibration knobs.
* :mod:`~repro.teastore.catalog` — the per-service
  :class:`~repro.memory.WorkloadProfile` footprints and demand constants.
* :mod:`~repro.teastore.services` — endpoint handlers for every service.
* :mod:`~repro.teastore.profiles` — the browse-profile Markov session.
* :mod:`~repro.teastore.store` — assembly: build and place a whole store
  on a deployment.

The Registry service is represented by the substrate's
:class:`~repro.services.ServiceRegistry` (discovery) rather than a CPU
consumer: the paper's own utilization breakdown shows Registry consuming
negligible CPU, and its discovery function is what matters here.
"""

from repro.teastore.catalog import SERVICE_NAMES, service_profiles
from repro.teastore.config import TeaStoreConfig
from repro.teastore.profiles import (
    BROWSE_TRANSITIONS,
    BUY_TRANSITIONS,
    MarkovSessionProfile,
    browse_profile,
    buy_profile,
)
from repro.teastore.store import TeaStore, build_teastore

__all__ = [
    "BROWSE_TRANSITIONS",
    "BUY_TRANSITIONS",
    "MarkovSessionProfile",
    "SERVICE_NAMES",
    "TeaStore",
    "TeaStoreConfig",
    "browse_profile",
    "build_teastore",
    "buy_profile",
    "service_profiles",
]
