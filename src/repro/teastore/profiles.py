"""User session profiles as Markov chains.

TeaStore's load driver walks stochastic user profiles; the study uses the
"browse" profile: users arrive at the home page, typically log in, browse
categories and product pages, occasionally add items to their cart, and
eventually log out.  The transition matrix below reconstructs that profile
(the suite's LIMBO/Markov definition) — the exact probabilities shape the
request mix, not the paper's conclusions.
"""

from __future__ import annotations

import typing as t

from repro._errors import WorkloadError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.deployment import Deployment

#: state → list of (next_state, probability).
Transitions = t.Mapping[str, t.Sequence[tuple[str, float]]]

#: The reconstructed TeaStore "browse" profile.
BROWSE_TRANSITIONS: dict[str, list[tuple[str, float]]] = {
    "home": [("login", 0.5), ("category", 0.5)],
    "login": [("category", 1.0)],
    "category": [("product", 0.55), ("category", 0.25), ("home", 0.20)],
    "product": [("add_to_cart", 0.35), ("category", 0.45),
                ("product", 0.10), ("home", 0.10)],
    "add_to_cart": [("category", 0.55), ("product", 0.25),
                    ("logout", 0.20)],
    "logout": [("home", 1.0)],
}

#: The reconstructed TeaStore "buy" profile: users who fill a cart and
#: complete the order — heavier on cart updates and the write-intensive
#: checkout path, stressing the database's serialized fraction.
BUY_TRANSITIONS: dict[str, list[tuple[str, float]]] = {
    "home": [("login", 0.8), ("category", 0.2)],
    "login": [("category", 1.0)],
    "category": [("product", 0.70), ("category", 0.20), ("home", 0.10)],
    "product": [("add_to_cart", 0.60), ("category", 0.30),
                ("product", 0.10)],
    "add_to_cart": [("cart_view", 0.35), ("category", 0.40),
                    ("product", 0.25)],
    "cart_view": [("checkout", 0.60), ("category", 0.30),
                  ("add_to_cart", 0.10)],
    "checkout": [("logout", 0.55), ("home", 0.45)],
    "logout": [("home", 1.0)],
}


class MarkovSessionProfile:
    """A user-session generator driven by a Markov chain over endpoints.

    Each state is an endpoint of ``service`` (WebUI for TeaStore).  Users
    walk independent chains on their own random streams, so traces are
    reproducible per (seed, user).
    """

    def __init__(self, transitions: Transitions, start: str = "home",
                 service: str = "webui"):
        self.service = service
        self.start = start
        self.transitions = {state: list(nexts)
                            for state, nexts in transitions.items()}
        self._validate()
        self._targets = {state: [target for target, __ in nexts]
                         for state, nexts in self.transitions.items()}
        self._weights = {state: [weight for __, weight in nexts]
                         for state, nexts in self.transitions.items()}

    def _validate(self) -> None:
        if self.start not in self.transitions:
            raise WorkloadError(
                f"start state {self.start!r} has no transitions")
        for state, nexts in self.transitions.items():
            if not nexts:
                raise WorkloadError(f"state {state!r} has no successors")
            total = sum(weight for __, weight in nexts)
            if abs(total - 1.0) > 1e-9:
                raise WorkloadError(
                    f"state {state!r}: probabilities sum to {total}, not 1")
            for target, weight in nexts:
                if weight < 0:
                    raise WorkloadError(
                        f"state {state!r}: negative probability for "
                        f"{target!r}")
                if target not in self.transitions:
                    raise WorkloadError(
                        f"state {state!r} references unknown state "
                        f"{target!r}")

    @property
    def states(self) -> list[str]:
        """All endpoint states, sorted."""
        return sorted(self.transitions)

    def session_factory(self, deployment: "Deployment"):
        """Bind to a deployment; returns a workload session factory."""
        def factory(user_id: int) -> t.Iterator[tuple[str, str, object]]:
            return self._walk(deployment, user_id)
        return factory

    def _walk(self, deployment: "Deployment",
              user_id: int) -> t.Iterator[tuple[str, str, object]]:
        stream = f"session.{user_id}"
        state = self.start
        while True:
            yield (self.service, state, None)
            index = deployment.streams.choice_index(stream,
                                                    self._weights[state])
            state = self._targets[state][index]

    def stationary_mix(self, n_steps: int = 100_000, seed: int = 0,
                       deployment: "Deployment | None" = None) -> dict[str, float]:
        """Empirical endpoint mix over a long walk (for tests/analysis)."""
        import numpy as np
        rng = np.random.default_rng(seed)
        counts = {state: 0 for state in self.transitions}
        state = self.start
        for __ in range(n_steps):
            counts[state] += 1
            weights = np.asarray(self._weights[state])
            state = self._targets[state][
                int(rng.choice(len(weights), p=weights / weights.sum()))]
        return {state: count / n_steps for state, count in counts.items()}


def browse_profile() -> MarkovSessionProfile:
    """The standard browse profile used throughout the experiments."""
    return MarkovSessionProfile(BROWSE_TRANSITIONS)


def buy_profile() -> MarkovSessionProfile:
    """The order-completing profile (checkout-heavy, DB-write-intensive)."""
    return MarkovSessionProfile(BUY_TRANSITIONS)
