"""User session profiles as Markov chains.

TeaStore's load driver walks stochastic user profiles; the study uses the
"browse" profile: users arrive at the home page, typically log in, browse
categories and product pages, occasionally add items to their cart, and
eventually log out.  The transition matrix below reconstructs that profile
(the suite's LIMBO/Markov definition) — the exact probabilities shape the
request mix, not the paper's conclusions.
"""

from __future__ import annotations

from repro.workload.sessions import MarkovSessionProfile, Transitions

__all__ = [
    "BROWSE_TRANSITIONS",
    "BUY_TRANSITIONS",
    "MarkovSessionProfile",
    "Transitions",
    "browse_profile",
    "buy_profile",
]

#: The reconstructed TeaStore "browse" profile.
BROWSE_TRANSITIONS: dict[str, list[tuple[str, float]]] = {
    "home": [("login", 0.5), ("category", 0.5)],
    "login": [("category", 1.0)],
    "category": [("product", 0.55), ("category", 0.25), ("home", 0.20)],
    "product": [("add_to_cart", 0.35), ("category", 0.45),
                ("product", 0.10), ("home", 0.10)],
    "add_to_cart": [("category", 0.55), ("product", 0.25),
                    ("logout", 0.20)],
    "logout": [("home", 1.0)],
}

#: The reconstructed TeaStore "buy" profile: users who fill a cart and
#: complete the order — heavier on cart updates and the write-intensive
#: checkout path, stressing the database's serialized fraction.
BUY_TRANSITIONS: dict[str, list[tuple[str, float]]] = {
    "home": [("login", 0.8), ("category", 0.2)],
    "login": [("category", 1.0)],
    "category": [("product", 0.70), ("category", 0.20), ("home", 0.10)],
    "product": [("add_to_cart", 0.60), ("category", 0.30),
                ("product", 0.10)],
    "add_to_cart": [("cart_view", 0.35), ("category", 0.40),
                    ("product", 0.25)],
    "cart_view": [("checkout", 0.60), ("category", 0.30),
                  ("add_to_cart", 0.10)],
    "checkout": [("logout", 0.55), ("home", 0.45)],
    "logout": [("home", 1.0)],
}


def browse_profile() -> MarkovSessionProfile:
    """The standard browse profile used throughout the experiments."""
    return MarkovSessionProfile(BROWSE_TRANSITIONS)


def buy_profile() -> MarkovSessionProfile:
    """The order-completing profile (checkout-heavy, DB-write-intensive)."""
    return MarkovSessionProfile(BUY_TRANSITIONS)
