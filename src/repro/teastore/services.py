"""Endpoint handlers for every TeaStore service.

The call graph mirrors TeaStore's:

* every WebUI endpoint validates the session against **Auth**;
* catalog pages fetch entities from **Persistence**, which queries the
  **database** (reads and writes pay a serialized fraction under an
  internal lock — the mechanism that caps DB scaling);
* pages with imagery fetch from the **ImageProvider**, whose in-memory
  cache hits cheaply and misses expensively (scale + re-encode);
* the product page additionally consults the **Recommender**;
* fan-out calls a real WebUI would issue concurrently run concurrently
  (``ctx.gather``).
"""

from __future__ import annotations

import typing as t

from repro.services.spec import ServiceSpec
from repro.sim.resources import Resource
from repro.teastore import catalog
from repro.teastore.config import TeaStoreConfig

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.instance import ServiceContext, ServiceInstance

#: Preview images fetched per category page.
CATEGORY_PREVIEW_IMAGES = 8


def build_specs(config: TeaStoreConfig | None = None) -> dict[str, ServiceSpec]:
    """All six service specs with handlers bound to ``config``."""
    config = config or TeaStoreConfig()
    profiles = catalog.service_profiles()
    scale = config.demand_scale
    cv = config.demand_cv

    def spec_for(name: str, **kwargs) -> ServiceSpec:
        return ServiceSpec(name, profiles[name],
                           workers=config.worker_count(name), **kwargs)

    # ------------------------------------------------------------------
    # Database
    # ------------------------------------------------------------------
    db = spec_for("db", shared_factory=lambda instance: {
        "lock": Resource(instance.deployment.sim, 1)})

    def db_handler(endpoint_name: str, serial_fraction: float):
        stream = f"demand.db.{endpoint_name}"

        def handler(ctx: "ServiceContext"):
            cost = ctx.payload * scale  # type: ignore[operator]
            demand = ctx.instance.deployment.streams.lognormal_mean_cv(
                stream, cost, cv)
            parallel_part = demand * (1.0 - serial_fraction)
            serial_part = demand * serial_fraction
            yield ctx.submit_demand(parallel_part)
            lock = ctx.shared["lock"]  # type: ignore[index]
            yield lock.acquire()
            try:
                yield ctx.submit_demand(serial_part)
            finally:
                lock.release()
            return "rows"
        return handler

    db.add_endpoint("read",
                    db_handler("read", config.db_read_serial_fraction))
    db.add_endpoint("write",
                    db_handler("write", config.db_write_serial_fraction))

    # ------------------------------------------------------------------
    # Persistence (ORM layer in front of the database)
    # ------------------------------------------------------------------
    persistence = spec_for("persistence")

    def persistence_handler(operation: str, db_endpoint: str):
        own_cost = catalog.PERSISTENCE[operation] * scale
        db_cost = catalog.DB_COST[operation]

        def handler(ctx: "ServiceContext"):
            yield ctx.compute(own_cost, cv)
            yield ctx.call("db", db_endpoint, payload=db_cost)
            return {"entity": operation}
        return handler

    for operation in ("get_categories", "get_products", "get_product",
                      "get_user", "get_cart"):
        persistence.add_endpoint(operation,
                                 persistence_handler(operation, "read"))
    for operation in ("cart_update", "place_order"):
        persistence.add_endpoint(operation,
                                 persistence_handler(operation, "write"))

    # ------------------------------------------------------------------
    # Auth
    # ------------------------------------------------------------------
    auth = spec_for("auth")

    def auth_handler(cost: float):
        def handler(ctx: "ServiceContext"):
            yield ctx.compute(cost * scale, cv)
            return "ok"
        return handler

    auth.add_endpoint("validate", auth_handler(catalog.AUTH_VALIDATE))
    auth.add_endpoint("login", auth_handler(catalog.AUTH_LOGIN))
    auth.add_endpoint("logout", auth_handler(catalog.AUTH_LOGOUT))

    # ------------------------------------------------------------------
    # ImageProvider
    # ------------------------------------------------------------------
    image = spec_for("image")
    hit_rate = config.image_cache_hit_rate

    @image.endpoint("get")
    def image_get(ctx: "ServiceContext"):
        if ctx.uniform("cache") < hit_rate:
            yield ctx.compute(catalog.IMAGE_HIT * scale, cv)
        else:
            yield ctx.compute(catalog.IMAGE_MISS * scale, cv)
        return "png"

    preview_hit_rate = config.image_preview_hit_rate

    @image.endpoint("get_batch")
    def image_get_batch(ctx: "ServiceContext"):
        count = ctx.payload or CATEGORY_PREVIEW_IMAGES  # type: ignore[assignment]
        streams = ctx.instance.deployment.streams
        misses = streams.binomial(
            f"svc.image.batch.{ctx.instance.local_id}", count,
            1.0 - preview_hit_rate)
        hits = count - misses
        demand = (hits * catalog.IMAGE_PREVIEW_HIT
                  + misses * catalog.IMAGE_PREVIEW_MISS)
        yield ctx.compute(demand * scale, cv)
        return "pngs"

    # ------------------------------------------------------------------
    # Recommender
    # ------------------------------------------------------------------
    recommender = spec_for("recommender")

    @recommender.endpoint("recommend")
    def recommend(ctx: "ServiceContext"):
        yield ctx.compute(catalog.RECOMMEND * scale, cv)
        return ["item"] * 3

    # Real TeaStore degrades recommendations to a static default when the
    # Recommender is unreachable; product pages render without it.
    recommender.add_fallback("recommend", ["default"] * 3)

    # ------------------------------------------------------------------
    # WebUI
    # ------------------------------------------------------------------
    webui = spec_for("webui")

    def page(endpoint_name: str, body):
        parse = catalog.WEBUI_PARSE[endpoint_name] * scale
        render = catalog.WEBUI_RENDER[endpoint_name] * scale

        def handler(ctx: "ServiceContext"):
            yield ctx.compute(parse, cv)
            yield from body(ctx)
            yield ctx.compute(render, cv)
            return f"<{endpoint_name}>"
        webui.add_endpoint(endpoint_name, handler)

    def home_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "validate")
        yield ctx.gather(ctx.call("persistence", "get_categories"),
                         ctx.call("image", "get"))

    def login_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "login")
        yield ctx.call("persistence", "get_user")

    def category_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "validate")
        yield ctx.gather(
            ctx.call("persistence", "get_products"),
            ctx.call("image", "get_batch", payload=CATEGORY_PREVIEW_IMAGES))

    def product_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "validate")
        yield ctx.gather(ctx.call("persistence", "get_product"),
                         ctx.call("image", "get"),
                         ctx.call("recommender", "recommend"))

    def add_to_cart_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "validate")
        yield ctx.call("persistence", "cart_update")

    def logout_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "logout")

    def cart_view_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "validate")
        yield ctx.gather(ctx.call("persistence", "get_cart"),
                         ctx.call("image", "get_batch", payload=3))

    def checkout_body(ctx: "ServiceContext"):
        yield ctx.call("auth", "validate")
        yield ctx.call("persistence", "place_order")

    page("home", home_body)
    page("login", login_body)
    page("category", category_body)
    page("product", product_body)
    page("add_to_cart", add_to_cart_body)
    page("logout", logout_body)
    page("cart_view", cart_view_body)
    page("checkout", checkout_body)

    return {"webui": webui, "auth": auth, "persistence": persistence,
            "image": image, "recommender": recommender, "db": db}
