"""Service specs for TeaStore, compiled from the declarative app spec.

The call graph mirrors TeaStore's:

* every WebUI endpoint validates the session against **Auth**;
* catalog pages fetch entities from **Persistence**, which queries the
  **database** (reads and writes pay a serialized fraction under an
  internal lock — the mechanism that caps DB scaling);
* pages with imagery fetch from the **ImageProvider**, whose in-memory
  cache hits cheaply and misses expensively (scale + re-encode);
* the product page additionally consults the **Recommender**;
* fan-out calls a real WebUI would issue concurrently run concurrently
  (``gather`` steps).

Since the declarative-spec refactor the endpoint behaviors live as data
in :func:`repro.apps.teastore_app.teastore_app`; this module keeps the
historical entry point that compiles them into
:class:`~repro.services.spec.ServiceSpec` objects.
"""

from __future__ import annotations

from repro.apps.runtime import build_service_specs
from repro.apps.teastore_app import CATEGORY_PREVIEW_IMAGES, teastore_app
from repro.services.spec import ServiceSpec
from repro.teastore.config import TeaStoreConfig

__all__ = ["CATEGORY_PREVIEW_IMAGES", "build_specs"]


def build_specs(config: TeaStoreConfig | None = None) -> dict[str, ServiceSpec]:
    """All six service specs with handlers bound to ``config``."""
    return build_service_specs(teastore_app(config or TeaStoreConfig()))
