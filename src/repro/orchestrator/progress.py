"""Sweep progress telemetry: human lines and a JSONL run log.

One :class:`ProgressReporter` instance covers one experiment's sweep.
It prints compact human-readable progress lines (done/total, cache
hits, per-point wall time, ETA) and mirrors every event — start, one
per point, finish — as machine-readable JSON lines, so dashboards and
future PRs can consume the run history without screen-scraping.
"""

from __future__ import annotations

import json
import sys
import time
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.plan import SweepPoint


def format_seconds(seconds: float) -> str:
    """Compact wall-time rendering: ``4.2s``, ``3m12s``, ``1h02m``."""
    if seconds < 60:
        return f"{seconds:.1f}s"
    minutes, secs = divmod(int(round(seconds)), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Per-experiment progress sink used by the executor.

    ``stream=None`` silences the human lines; ``log`` may be a path or
    an open file object (shared across experiments by the CLI).
    """

    def __init__(self, experiment: str, *,
                 stream: t.TextIO | None = None,
                 log: "str | t.TextIO | None" = None,
                 quiet: bool = False) -> None:
        self.experiment = experiment
        self._stream = (None if quiet
                        else stream if stream is not None
                        else sys.stderr)
        self._log_handle: t.TextIO | None = None
        self._owns_log = False
        if isinstance(log, str):
            self._log_handle = open(log, "a", encoding="utf-8")
            self._owns_log = True
        elif log is not None:
            self._log_handle = log
        self.total = 0
        self.done = 0
        self.cache_hits = 0
        self._executed_walls: list[float] = []
        self._started = 0.0

    def begin(self, total: int) -> None:
        """Called by the executor once the plan size is known."""
        self.total = total
        self.done = 0
        self.cache_hits = 0
        self._executed_walls = []
        self._started = time.monotonic()
        self._event({"event": "sweep_start", "total": total})

    def point_done(self, point: "SweepPoint", *, cached: bool,
                   wall_seconds: float) -> None:
        """Record one completed point (cache hit or fresh execution)."""
        self.done += 1
        if cached:
            self.cache_hits += 1
        else:
            self._executed_walls.append(wall_seconds)
        self._event({
            "event": "point_done",
            "index": point.index,
            "kind": point.kind,
            "label": point.label,
            "cached": cached,
            "wall_seconds": round(wall_seconds, 6),
            "done": self.done,
            "total": self.total,
        })
        self._line(self._progress_line(point, cached, wall_seconds))

    def finish(self, *, wall_seconds: float, executed: int) -> None:
        """Close out the sweep with a summary line and event."""
        self._event({
            "event": "sweep_end",
            "points": self.total,
            "cache_hits": self.cache_hits,
            "executed": executed,
            "wall_seconds": round(wall_seconds, 6),
        })
        self._line(
            f"[{self.experiment}] sweep complete: {self.total} points, "
            f"{self.cache_hits} cached, {executed} executed in "
            f"{format_seconds(wall_seconds)}")
        if self._owns_log and self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    def eta_seconds(self) -> float | None:
        """Projected remaining wall time, from executed-point averages."""
        remaining = self.total - self.done
        if remaining <= 0 or not self._executed_walls:
            return 0.0 if remaining <= 0 else None
        average = sum(self._executed_walls) / len(self._executed_walls)
        return average * remaining

    def _progress_line(self, point: "SweepPoint", cached: bool,
                       wall_seconds: float) -> str:
        source = "cached" if cached else f"{format_seconds(wall_seconds)}"
        eta = self.eta_seconds()
        eta_text = ("" if eta is None
                    else f"  eta {format_seconds(eta)}" if eta > 0 else "")
        return (f"[{self.experiment}] {self.done}/{self.total} "
                f"({self.cache_hits} cached){eta_text}  "
                f"{point.label}: {source}")

    def _line(self, text: str) -> None:
        if self._stream is not None:
            print(text, file=self._stream, flush=True)

    def _event(self, event: dict[str, t.Any]) -> None:
        if self._log_handle is None:
            return
        record = {"experiment": self.experiment, "time": time.time()}
        record.update(event)
        self._log_handle.write(json.dumps(record) + "\n")
        self._log_handle.flush()
