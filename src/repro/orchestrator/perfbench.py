"""The ``BENCH_perf.json`` artifact: a wall-clock perf trajectory.

``repro perfbench`` times canonical E2/E8/E13 slices — each slice is a
fixed list of sweep points executed sequentially through the same
:func:`~repro.orchestrator.executor.execute_point` path the sweeps use —
and appends one trajectory entry per invocation, so the repository keeps
a wall-clock history of the simulator's speed alongside the sweep
telemetry in ``BENCH_sweep.json``.

Two modes:

* ``full`` — fast-profile experiment scale; the numbers the ≥1.8×
  optimization target is stated against.
* ``smoke`` — golden-digest scale (seconds total); what CI runs on
  every push, gated by :func:`check_against_baseline`.

Each slice is repeated and the **minimum** wall time is reported: the
minimum is the least noisy location statistic for wall-clock timing
(anything above it is scheduler/cache interference, never the code
being faster than it is).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import time
import typing as t

from repro._errors import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.orchestrator import plan as plan_mod
from repro.orchestrator.executor import execute_point

#: Artifact schema version; bump on layout changes.
PERF_BENCH_VERSION = 1

#: Default regression gate: fail when a slice is >25% slower than the
#: committed baseline.
DEFAULT_THRESHOLD = 0.25

#: Slice name → (experiment id, point labels to time, settings factory).
#: Labels select from the experiment's sweep plan; timing goes through
#: ``execute_point`` so the measured path is exactly the sweep path.
SliceSpec = tuple[str, tuple[str, ...], t.Callable[[], ExperimentSettings]]

_SLICES: dict[str, dict[str, SliceSpec]] = {
    "full": {
        "e2": ("e2", ("users=200", "users=400"),
               lambda: ExperimentSettings.fast(seed=1)),
        "e8": ("e8", ("tuned-baseline", "optimized"),
               lambda: ExperimentSettings.fast(seed=1)),
        "e13": ("e13", ("slow/full",),
                lambda: ExperimentSettings.fast(seed=1)),
    },
    "smoke": {
        "e2": ("e2", ("users=50",),
               lambda: ExperimentSettings.fast(
                   preset="tiny", users=48, warmup=0.1, duration=0.3,
                   seed=1)),
        "e8": ("e8", ("tuned-baseline",),
               lambda: ExperimentSettings.fast(
                   preset="medium", users=64, warmup=0.1, duration=0.3,
                   seed=1)),
        "e13": ("e13", ("slow/full",),
                lambda: ExperimentSettings.fast(
                    preset="tiny", users=32, warmup=0.1, duration=0.25,
                    seed=1)),
    },
}

#: Repeats per slice, by mode.
_REPEATS = {"full": 3, "smoke": 2}


@dataclasses.dataclass(frozen=True)
class SliceResult:
    """Wall-clock timing of one slice."""

    name: str
    wall_seconds: float          # min over repeats
    repeats: tuple[float, ...]   # every repeat, in order
    points: int

    def to_dict(self) -> dict[str, t.Any]:
        return {
            "wall_seconds": self.wall_seconds,
            "repeats": list(self.repeats),
            "points": self.points,
        }


def slice_points(mode: str, name: str) -> list[plan_mod.SweepPoint]:
    """Resolve one slice's sweep points from its experiment's plan."""
    try:
        experiment, labels, settings_factory = _SLICES[mode][name]
    except KeyError:
        raise ConfigurationError(
            f"unknown perf slice {mode}/{name}; known: "
            f"{ {m: sorted(s) for m, s in _SLICES.items()} }") from None
    settings = settings_factory()
    by_label = {point.label: point
                for point in plan_mod.plan_sweep(experiment, settings)}
    missing = [label for label in labels if label not in by_label]
    if missing:
        raise ConfigurationError(
            f"perf slice {name!r}: labels {missing} not in the "
            f"{experiment} plan ({sorted(by_label)})")
    return [by_label[label] for label in labels]


def time_slice(mode: str, name: str,
               repeat: int | None = None) -> SliceResult:
    """Execute one slice ``repeat`` times and keep every wall time."""
    points = slice_points(mode, name)
    repeat = repeat if repeat is not None else _REPEATS[mode]
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1: {repeat}")
    walls = []
    for __ in range(repeat):
        started = time.perf_counter()
        for point in points:
            execute_point(point)
        walls.append(time.perf_counter() - started)
    return SliceResult(name, min(walls), tuple(walls), len(points))


def run_perfbench(mode: str = "smoke",
                  slices: t.Sequence[str] | None = None,
                  repeat: int | None = None,
                  progress: t.Callable[[str], None] | None = None
                  ) -> list[SliceResult]:
    """Time every requested slice (default: all three)."""
    if mode not in _SLICES:
        raise ConfigurationError(
            f"unknown perfbench mode {mode!r}; choose from "
            f"{sorted(_SLICES)}")
    names = list(slices) if slices is not None else sorted(_SLICES[mode])
    results = []
    for name in names:
        result = time_slice(mode, name, repeat=repeat)
        results.append(result)
        if progress is not None:
            progress(f"slice {name}: {result.wall_seconds:.2f}s "
                     f"(min of {len(result.repeats)})")
    return results


def trajectory_entry(results: t.Sequence[SliceResult], mode: str,
                     label: str | None = None) -> dict[str, t.Any]:
    """One trajectory entry as a JSON-native dict."""
    return {
        "label": label or "",
        "mode": mode,
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "slices": {result.name: result.to_dict() for result in results},
    }


def append_trajectory(path: str | pathlib.Path,
                      entry: dict[str, t.Any]) -> dict[str, t.Any]:
    """Append ``entry`` to the artifact at ``path`` (created if absent)."""
    target = pathlib.Path(path)
    if target.exists():
        payload = json.loads(target.read_text(encoding="utf-8"))
        if payload.get("artifact") != "repro-perf-bench":
            raise ConfigurationError(
                f"{target} exists but is not a repro-perf-bench artifact")
    else:
        payload = {"artifact": "repro-perf-bench",
                   "version": PERF_BENCH_VERSION,
                   "trajectory": []}
    payload["trajectory"].append(entry)
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    return payload


def baseline_entry(path: str | pathlib.Path,
                   mode: str) -> dict[str, t.Any]:
    """The newest trajectory entry of ``mode`` in a committed artifact."""
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    entries = [entry for entry in payload.get("trajectory", [])
               if entry.get("mode") == mode]
    if not entries:
        raise ConfigurationError(
            f"{path} has no trajectory entry for mode {mode!r}")
    return entries[-1]


def check_against_baseline(results: t.Sequence[SliceResult],
                           baseline: dict[str, t.Any],
                           threshold: float = DEFAULT_THRESHOLD
                           ) -> list[str]:
    """Regression report: one line per slice, raising strings for fails.

    Returns the list of failure messages (empty = gate passes).  A slice
    missing from the baseline is skipped — new slices must not fail the
    gate on their first appearance.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive: {threshold}")
    failures = []
    baseline_slices = baseline.get("slices", {})
    for result in results:
        reference = baseline_slices.get(result.name)
        if reference is None:
            continue
        allowed = reference["wall_seconds"] * (1.0 + threshold)
        if result.wall_seconds > allowed:
            failures.append(
                f"slice {result.name}: {result.wall_seconds:.2f}s exceeds "
                f"baseline {reference['wall_seconds']:.2f}s by more than "
                f"{threshold:.0%}")
    return failures
