"""The ``BENCH_perf.json`` artifact: a wall-clock perf trajectory.

``repro perfbench`` times canonical E2/E8/E13 slices — each slice is a
fixed list of sweep points executed sequentially through the same
:func:`~repro.orchestrator.executor.execute_point` path the sweeps use —
and appends one trajectory entry per invocation, so the repository keeps
a wall-clock history of the simulator's speed alongside the sweep
telemetry in ``BENCH_sweep.json``.

Two modes:

* ``full`` — fast-profile experiment scale; the numbers the ≥1.8×
  optimization target is stated against.
* ``smoke`` — golden-digest scale (seconds total); what CI runs on
  every push, gated by :func:`check_against_baseline`.

Each slice is repeated and the **minimum** wall time is reported: the
minimum is the least noisy location statistic for wall-clock timing
(anything above it is scheduler/cache interference, never the code
being faster than it is).

``--mem`` switches the harness to memory profiling: each slice runs once
under :mod:`tracemalloc` and records its peak traced allocation (plus the
process's RUSAGE high-water RSS for context) as a ``metric: "mem"``
trajectory entry, gated by :func:`check_memory_against_baseline`.

Schema v2 additionally rotates the trajectory — the newest
:data:`_KEEP_PER_GROUP` entries per (mode, metric) group plus the
artifact's first-ever entry survive — so the committed file stays
bounded no matter how often the harness runs.  v1 artifacts are read
transparently and upgraded on the next append.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import resource
import time
import tracemalloc
import typing as t

from repro._errors import ConfigurationError
from repro.experiments.common import ExperimentSettings
from repro.orchestrator import plan as plan_mod
from repro.orchestrator.executor import execute_point
from repro.sim import kernel as kernel_mod

#: Artifact schema version; bump on layout changes.
PERF_BENCH_VERSION = 2

#: Default regression gate: fail when a slice is >25% slower than the
#: committed baseline.
DEFAULT_THRESHOLD = 0.25

#: Default memory gate: fail when a slice's peak traced allocation is
#: >50% above the committed baseline.  Allocation peaks are much less
#: noisy than wall time, but tracemalloc accounting shifts with Python
#: versions, so the margin stays generous.
DEFAULT_MEM_THRESHOLD = 0.5

#: Trajectory entries kept per (mode, metric) group after an append.
_KEEP_PER_GROUP = 50

#: Slice name → (experiment id, point labels to time, settings factory).
#: Labels select from the experiment's sweep plan; timing goes through
#: ``execute_point`` so the measured path is exactly the sweep path.
SliceSpec = tuple[str, tuple[str, ...], t.Callable[[], ExperimentSettings]]

_SLICES: dict[str, dict[str, SliceSpec]] = {
    "full": {
        "e2": ("e2", ("users=200", "users=400"),
               lambda: ExperimentSettings.fast(seed=1)),
        "e8": ("e8", ("tuned-baseline", "optimized"),
               lambda: ExperimentSettings.fast(seed=1)),
        "e13": ("e13", ("slow/full",),
                lambda: ExperimentSettings.fast(seed=1)),
    },
    "smoke": {
        "e2": ("e2", ("users=50",),
               lambda: ExperimentSettings.fast(
                   preset="tiny", users=48, warmup=0.1, duration=0.3,
                   seed=1)),
        "e8": ("e8", ("tuned-baseline",),
               lambda: ExperimentSettings.fast(
                   preset="medium", users=64, warmup=0.1, duration=0.3,
                   seed=1)),
        "e13": ("e13", ("slow/full",),
                lambda: ExperimentSettings.fast(
                    preset="tiny", users=32, warmup=0.1, duration=0.25,
                    seed=1)),
    },
}

@dataclasses.dataclass(frozen=True)
class ExtendedSlice:
    """One opt-in expensive slice of the perf harness.

    Extended slices build their sweep points directly because the stock
    experiment plans do not carry them; they run only under
    ``--extended`` or when named explicitly via ``--slice``.  ``scale``
    tags sharded/cohort-compressed points with their execution-tier
    config — it travels into every recorded result so the baseline gate
    never compares a sharded run against a single-process one.
    """

    name: str
    mode: str
    description: str
    build: t.Callable[[], "list[plan_mod.SweepPoint]"]
    #: ``{"shards": N, "cohort_factor": M}`` for scale-tier slices,
    #: ``None`` for single-process ones.
    scale: dict[str, int] | None = None
    #: Per-slice repeat override (e.g. 1 for the million-user point);
    #: ``None`` uses the mode default.
    repeat: int | None = None


#: mode → name → extended slice (populated by register_extended_slice).
_EXTENDED_SLICES: dict[str, dict[str, ExtendedSlice]] = {}


def register_extended_slice(slice_spec: ExtendedSlice) -> None:
    """Add one extended slice to the registry (data-driven, no lambdas
    buried in module constants — tests and plugins register the same
    way the built-ins below do)."""
    by_name = _EXTENDED_SLICES.setdefault(slice_spec.mode, {})
    if slice_spec.name in by_name:
        raise ConfigurationError(
            f"extended slice {slice_spec.mode}/{slice_spec.name} is "
            f"already registered")
    by_name[slice_spec.name] = slice_spec


def _e2_extended_points(users: int, settings: ExperimentSettings
                        ) -> list[plan_mod.SweepPoint]:
    """One out-of-plan E2 load point at ``users``."""
    return [plan_mod.SweepPoint("e2", 0, "load", f"users={users}",
                                settings, params=(("users", users),))]


# The memory-scaling point: 10k closed-loop users exercises the
# columnar measurement plane and the adaptive RNG prefetch far beyond
# the regular load curve — still a single process, no cohorts.
register_extended_slice(ExtendedSlice(
    name="e2-10k", mode="full",
    description="10k users, single process (columnar-plane memory point)",
    build=lambda: _e2_extended_points(
        10_000, ExperimentSettings.fast(seed=1))))

# The scale tier (repro.scale): cohort-compressed users on sharded
# deployments with conservative window sync.
register_extended_slice(ExtendedSlice(
    name="e2-100k", mode="full",
    description="100k users as 4 shards x cohort factor 100",
    build=lambda: _e2_extended_points(
        100_000, ExperimentSettings.fast(seed=1, shards=4,
                                         cohort_factor=100)),
    scale={"shards": 4, "cohort_factor": 100}))

register_extended_slice(ExtendedSlice(
    name="e2-1m", mode="full",
    description="1M users as 8 shards x cohort factor 250 (local only)",
    build=lambda: _e2_extended_points(
        1_000_000, ExperimentSettings.fast(seed=1, shards=8,
                                           cohort_factor=250)),
    scale={"shards": 8, "cohort_factor": 250},
    repeat=1))

register_extended_slice(ExtendedSlice(
    name="e2-100k", mode="smoke",
    description="CI-sized 100k-user sharded point (short windows)",
    build=lambda: _e2_extended_points(
        100_000, ExperimentSettings.fast(seed=1, warmup=0.2, duration=0.4,
                                         shards=4, cohort_factor=100)),
    scale={"shards": 4, "cohort_factor": 100},
    repeat=1))

#: Repeats per slice, by mode.
_REPEATS = {"full": 3, "smoke": 2}


def list_slices() -> list[dict[str, t.Any]]:
    """Every known mode×slice, standard and extended, as sorted rows.

    Each row carries ``mode``, ``name``, ``extended``, ``description``,
    and the ``scale`` tag (``None`` for single-process slices) — what
    ``repro perfbench --list-slices`` prints.
    """
    rows: list[dict[str, t.Any]] = []
    for mode in sorted(_SLICES):
        for name in sorted(_SLICES[mode]):
            experiment, labels, __ = _SLICES[mode][name]
            rows.append({
                "mode": mode, "name": name, "extended": False,
                "description": (f"{experiment} plan labels: "
                                + ", ".join(labels)),
                "scale": None,
            })
    for mode in sorted(_EXTENDED_SLICES):
        for name in sorted(_EXTENDED_SLICES[mode]):
            slice_spec = _EXTENDED_SLICES[mode][name]
            rows.append({
                "mode": mode, "name": name, "extended": True,
                "description": slice_spec.description,
                "scale": (dict(slice_spec.scale)
                          if slice_spec.scale is not None else None),
            })
    return rows


def _slice_scale(mode: str, name: str) -> dict[str, int] | None:
    """The scale tag of one slice (``None`` for single-process)."""
    slice_spec = _EXTENDED_SLICES.get(mode, {}).get(name)
    if slice_spec is None or slice_spec.scale is None:
        return None
    return dict(slice_spec.scale)


@dataclasses.dataclass(frozen=True)
class SliceResult:
    """Wall-clock timing of one slice."""

    name: str
    wall_seconds: float          # min over repeats
    repeats: tuple[float, ...]   # every repeat, in order
    points: int
    #: Execution-tier tag for sharded/cohort slices (``None`` =
    #: single-process); recorded so gates only compare like with like.
    scale: dict[str, int] | None = None

    def to_dict(self) -> dict[str, t.Any]:
        payload: dict[str, t.Any] = {
            "wall_seconds": self.wall_seconds,
            "repeats": list(self.repeats),
            "points": self.points,
        }
        if self.scale is not None:
            payload["scale"] = dict(self.scale)
        return payload


def slice_points(mode: str, name: str,
                 app: str = "teastore") -> list[plan_mod.SweepPoint]:
    """Resolve one slice's sweep points from its experiment's plan.

    ``app`` retargets the slice's settings at another bundled
    application; the default is the TeaStore numbers every committed
    baseline was recorded on.
    """
    extended = _EXTENDED_SLICES.get(mode, {}).get(name)
    if extended is not None:
        return _retarget(extended.build(), app)
    try:
        experiment, labels, settings_factory = _SLICES[mode][name]
    except KeyError:
        known = {m: sorted(s) for m, s in _SLICES.items()}
        extra = {m: sorted(s) for m, s in _EXTENDED_SLICES.items()}
        raise ConfigurationError(
            f"unknown perf slice {mode}/{name}; known: {known}, "
            f"extended: {extra}") from None
    settings = settings_factory()
    by_label = {point.label: point
                for point in plan_mod.plan_sweep(experiment, settings)}
    missing = [label for label in labels if label not in by_label]
    if missing:
        raise ConfigurationError(
            f"perf slice {name!r}: labels {missing} not in the "
            f"{experiment} plan ({sorted(by_label)})")
    return _retarget([by_label[label] for label in labels], app)


def _retarget(points: "list[plan_mod.SweepPoint]",
              app: str) -> "list[plan_mod.SweepPoint]":
    """Re-point a slice's settings at ``app`` (no-op for TeaStore)."""
    if app == "teastore":
        return points
    return [dataclasses.replace(
                point,
                settings=dataclasses.replace(point.settings, app=app))
            for point in points]


def time_slice(mode: str, name: str,
               repeat: int | None = None,
               app: str = "teastore") -> SliceResult:
    """Execute one slice ``repeat`` times and keep every wall time."""
    points = slice_points(mode, name, app)
    if repeat is None:
        slice_spec = _EXTENDED_SLICES.get(mode, {}).get(name)
        repeat = (slice_spec.repeat
                  if slice_spec is not None and slice_spec.repeat is not None
                  else _REPEATS[mode])
    if repeat < 1:
        raise ConfigurationError(f"repeat must be >= 1: {repeat}")
    walls = []
    for __ in range(repeat):
        started = time.perf_counter()
        for point in points:
            execute_point(point)
        walls.append(time.perf_counter() - started)
    return SliceResult(name, min(walls), tuple(walls), len(points),
                       scale=_slice_scale(mode, name))


def _resolve_names(mode: str, slices: t.Sequence[str] | None,
                   extended: bool, app: str = "teastore") -> list[str]:
    if mode not in _SLICES:
        raise ConfigurationError(
            f"unknown perfbench mode {mode!r}; choose from "
            f"{sorted(_SLICES)}")
    if slices is not None:
        return list(slices)
    if app != "teastore":
        # Only the plain load slice transfers across applications: E8's
        # optimized allocation and E13's fault schedule are
        # TeaStore-specific.
        return ["e2"]
    names = sorted(_SLICES[mode])
    if extended:
        names += sorted(_EXTENDED_SLICES.get(mode, {}))
    return names


def run_perfbench(mode: str = "smoke",
                  slices: t.Sequence[str] | None = None,
                  repeat: int | None = None,
                  extended: bool = False,
                  progress: t.Callable[[str], None] | None = None,
                  app: str = "teastore") -> list[SliceResult]:
    """Time every requested slice (default: all three; ``e2`` only
    for non-TeaStore applications)."""
    backend = kernel_mod.active_backend()
    results = []
    for name in _resolve_names(mode, slices, extended, app):
        result = time_slice(mode, name, repeat=repeat, app=app)
        results.append(result)
        if progress is not None:
            progress(f"slice {name} [{backend}]: "
                     f"{result.wall_seconds:.2f}s "
                     f"(min of {len(result.repeats)})")
    return results


def _profiled_stats(points: "list[plan_mod.SweepPoint]"):
    """One warmup pass, then one pass under :mod:`cProfile`.

    The untimed warmup runs first so imports, plan construction, and
    prefetch-buffer growth do not pollute the profile.  Profiled runs
    are never recorded in the trajectory — the tracer costs more than
    the differences the trajectory exists to catch.
    """
    import cProfile
    import pstats

    for point in points:
        execute_point(point)
    profiler = cProfile.Profile()
    profiler.enable()
    for point in points:
        execute_point(point)
    profiler.disable()
    return pstats.Stats(profiler)


def profile_slice(mode: str, name: str, top: int = 20,
                  app: str = "teastore") -> str:
    """Run one slice once under :mod:`cProfile`; return the top-``top``
    functions by cumulative time as a printable report.
    """
    import io

    if top < 1:
        raise ConfigurationError(f"top must be >= 1: {top}")
    stats = _profiled_stats(slice_points(mode, name, app))
    buffer = io.StringIO()
    stats.stream = buffer
    stats.sort_stats("cumulative").print_stats(top)
    backend = kernel_mod.active_backend()
    header = (f"profile {mode}/{name} [kernel={backend}] — top {top} "
              f"by cumulative time")
    return f"{header}\n{buffer.getvalue()}"


def profile_slice_stats(mode: str, name: str, top: int = 20,
                        app: str = "teastore") -> dict[str, t.Any]:
    """The machine-readable sibling of :func:`profile_slice`.

    Runs one slice under :mod:`cProfile` (same warmup discipline) and
    returns the top-``top`` functions by cumulative time as a
    JSON-native hotspot table, so CI can archive profiles as artifacts
    and tooling can diff them across commits.
    """
    if top < 1:
        raise ConfigurationError(f"top must be >= 1: {top}")
    points = slice_points(mode, name, app)
    stats = _profiled_stats(points)
    ranked = sorted(stats.stats.items(),
                    key=lambda item: item[1][3], reverse=True)
    hotspots = []
    for (filename, lineno, function), row in ranked[:top]:
        primitive_calls, ncalls, tottime, cumtime, __ = row
        hotspots.append({
            "function": function,
            "location": f"{filename}:{lineno}",
            "ncalls": ncalls,
            "primitive_calls": primitive_calls,
            "tottime": round(tottime, 6),
            "cumtime": round(cumtime, 6),
        })
    return {
        "slice": name,
        "points": len(points),
        "total_calls": stats.total_calls,
        "total_seconds": round(stats.total_tt, 6),
        "hotspots": hotspots,
    }


def profile_artifact(mode: str,
                     slices: t.Sequence[str] | None = None,
                     extended: bool = False,
                     top: int = 20,
                     app: str = "teastore",
                     label: str | None = None) -> dict[str, t.Any]:
    """A ``repro-perf-profile`` artifact: hotspot tables for every
    requested slice, headed like a trajectory entry so a profile can be
    traced back to the commit/kernel/app that produced it.
    """
    payload = _entry_header(mode, "profile", label, app)
    payload["artifact"] = "repro-perf-profile"
    payload["version"] = 1
    payload["top"] = top
    payload["profiles"] = [
        profile_slice_stats(mode, name, top=top, app=app)
        for name in _resolve_names(mode, slices, extended, app)]
    return payload


@dataclasses.dataclass(frozen=True)
class MemSliceResult:
    """Peak memory profile of one slice (single profiled pass)."""

    name: str
    traced_peak_bytes: int   # tracemalloc high-water during the slice
    ru_maxrss_kb: int        # process RSS high-water after the slice
    points: int
    #: Execution-tier tag (see :class:`SliceResult`).
    scale: dict[str, int] | None = None

    def to_dict(self) -> dict[str, t.Any]:
        payload: dict[str, t.Any] = {
            "traced_peak_bytes": self.traced_peak_bytes,
            "ru_maxrss_kb": self.ru_maxrss_kb,
            "points": self.points,
        }
        if self.scale is not None:
            payload["scale"] = dict(self.scale)
        return payload


def profile_slice_memory(mode: str, name: str,
                         app: str = "teastore") -> MemSliceResult:
    """Run one slice under tracemalloc and report its allocation peak.

    ``ru_maxrss`` is the whole process's monotone high-water mark — it
    contextualizes the traced peak but only the traced number is gated,
    because it resets per slice.
    """
    points = slice_points(mode, name, app)
    tracemalloc.start()
    try:
        for point in points:
            execute_point(point)
        __, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return MemSliceResult(name, int(peak), int(ru_maxrss), len(points),
                          scale=_slice_scale(mode, name))


def run_membench(mode: str = "smoke",
                 slices: t.Sequence[str] | None = None,
                 extended: bool = False,
                 progress: t.Callable[[str], None] | None = None,
                 app: str = "teastore") -> list[MemSliceResult]:
    """Memory-profile every requested slice (default: all three;
    ``e2`` only for non-TeaStore applications)."""
    results = []
    for name in _resolve_names(mode, slices, extended, app):
        result = profile_slice_memory(mode, name, app)
        results.append(result)
        if progress is not None:
            progress(f"slice {name}: peak "
                     f"{result.traced_peak_bytes / 1e6:.1f} MB traced, "
                     f"RSS high-water {result.ru_maxrss_kb / 1024:.0f} MB")
    return results


def default_label() -> str:
    """The short git SHA of ``HEAD``, or ``"manual"`` when unavailable.

    Labels exist so a trajectory entry can be traced back to the code
    that produced it; the commit hash is that trace whenever the harness
    runs inside a work tree.  Outside one (tarball checkout, no git
    binary) the label degrades to ``"manual"`` rather than failing.
    """
    import subprocess
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return "manual"
    return sha or "manual"


def _entry_header(mode: str, metric: str,
                  label: str | None,
                  app: str = "teastore") -> dict[str, t.Any]:
    return {
        "label": default_label() if label is None else label,
        "mode": mode,
        "metric": metric,
        # The application the slices ran against: trajectories from
        # different service graphs are never comparable, so the gate
        # (baseline_entry) only matches same-app entries.  Entries
        # recorded before application specs existed were all TeaStore.
        "app": app,
        # Which event-loop backend produced the numbers: trajectories
        # from different kernels are never comparable, so the gate
        # (baseline_entry) only matches same-kernel entries.
        "kernel": kernel_mod.active_backend(),
        "python": platform.python_version(),
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def trajectory_entry(results: t.Sequence[SliceResult], mode: str,
                     label: str | None = None,
                     app: str = "teastore") -> dict[str, t.Any]:
    """One wall-clock trajectory entry as a JSON-native dict."""
    entry = _entry_header(mode, "wall", label, app)
    entry["slices"] = {result.name: result.to_dict() for result in results}
    return entry


def memory_entry(results: t.Sequence[MemSliceResult], mode: str,
                 label: str | None = None,
                 app: str = "teastore") -> dict[str, t.Any]:
    """One memory trajectory entry as a JSON-native dict."""
    entry = _entry_header(mode, "mem", label, app)
    entry["slices"] = {result.name: result.to_dict() for result in results}
    return entry


def _rotate(entries: list[dict[str, t.Any]]) -> list[dict[str, t.Any]]:
    """Newest :data:`_KEEP_PER_GROUP` per (mode, metric) + the first ever.

    The first-ever entry is the fixed "where this repo started" reference
    point; everything else ages out group by group.
    """
    if not entries:
        return entries
    keep = {0}
    groups: dict[tuple[str, str], list[int]] = {}
    for index, entry in enumerate(entries):
        key = (entry.get("mode", ""), entry.get("metric", "wall"))
        groups.setdefault(key, []).append(index)
    for indices in groups.values():
        keep.update(indices[-_KEEP_PER_GROUP:])
    return [entries[index] for index in sorted(keep)]


def append_trajectory(path: str | pathlib.Path,
                      entry: dict[str, t.Any]) -> dict[str, t.Any]:
    """Append ``entry`` to the artifact at ``path`` (created if absent).

    Reads schema v1 or v2; always writes v2 (rotated trajectory).
    """
    target = pathlib.Path(path)
    if target.exists():
        payload = json.loads(target.read_text(encoding="utf-8"))
        if payload.get("artifact") != "repro-perf-bench":
            raise ConfigurationError(
                f"{target} exists but is not a repro-perf-bench artifact")
        version = payload.get("version", 1)
        if version not in (1, PERF_BENCH_VERSION):
            raise ConfigurationError(
                f"{target} has unsupported schema version {version}")
        payload["version"] = PERF_BENCH_VERSION
    else:
        payload = {"artifact": "repro-perf-bench",
                   "version": PERF_BENCH_VERSION,
                   "trajectory": []}
    payload["trajectory"].append(entry)
    payload["trajectory"] = _rotate(payload["trajectory"])
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    return payload


def baseline_entry(path: str | pathlib.Path, mode: str,
                   metric: str = "wall",
                   kernel: str | None = None,
                   app: str = "teastore") -> dict[str, t.Any]:
    """The newest ``(mode, metric, kernel)`` entry in a committed artifact.

    ``kernel`` defaults to the *active* backend: a compiled-kernel run is
    only ever gated against a compiled-kernel baseline (and python
    against python) — cross-backend comparison would either mask real
    regressions or fail every pure-Python fallback run.  Entries
    recorded before backends existed carry no ``kernel`` field and were
    all pure-Python; they match ``kernel="python"``.  v1 entries carry
    no ``metric`` field and are treated as wall-clock.  ``app``
    likewise only matches same-application entries; entries recorded
    before application specs existed were all TeaStore.
    """
    if kernel is None:
        kernel = kernel_mod.active_backend()
    payload = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    entries = [entry for entry in payload.get("trajectory", [])
               if entry.get("mode") == mode
               and entry.get("metric", "wall") == metric
               and entry.get("kernel", "python") == kernel
               and entry.get("app", "teastore") == app]
    if not entries:
        raise ConfigurationError(
            f"{path} has no {metric} trajectory entry for mode {mode!r} "
            f"on kernel backend {kernel!r} and application {app!r}")
    return entries[-1]


def check_against_baseline(results: t.Sequence[SliceResult],
                           baseline: dict[str, t.Any],
                           threshold: float = DEFAULT_THRESHOLD
                           ) -> list[str]:
    """Regression report: one line per slice, raising strings for fails.

    Returns the list of failure messages (empty = gate passes).  A slice
    missing from the baseline is skipped — new slices must not fail the
    gate on their first appearance — and so is a slice whose ``scale``
    tag differs from the baseline's: a sharded/cohort run is never
    comparable to a single-process point of the same name (mirrors the
    kernel tagging on whole entries).
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive: {threshold}")
    failures = []
    baseline_slices = baseline.get("slices", {})
    for result in results:
        reference = baseline_slices.get(result.name)
        if reference is None:
            continue
        if reference.get("scale") != result.scale:
            continue
        allowed = reference["wall_seconds"] * (1.0 + threshold)
        if result.wall_seconds > allowed:
            failures.append(
                f"slice {result.name}: {result.wall_seconds:.2f}s exceeds "
                f"baseline {reference['wall_seconds']:.2f}s by more than "
                f"{threshold:.0%}")
    return failures


def check_memory_against_baseline(results: t.Sequence[MemSliceResult],
                                  baseline: dict[str, t.Any],
                                  threshold: float = DEFAULT_MEM_THRESHOLD
                                  ) -> list[str]:
    """Memory-regression report over peak traced allocation.

    Same contract as :func:`check_against_baseline`: returns failure
    messages (empty = gate passes); slices absent from the baseline —
    or carrying a different ``scale`` tag — are skipped.
    """
    if threshold <= 0:
        raise ConfigurationError(f"threshold must be positive: {threshold}")
    failures = []
    baseline_slices = baseline.get("slices", {})
    for result in results:
        reference = baseline_slices.get(result.name)
        if reference is None:
            continue
        if reference.get("scale") != result.scale:
            continue
        allowed = reference["traced_peak_bytes"] * (1.0 + threshold)
        if result.traced_peak_bytes > allowed:
            failures.append(
                f"slice {result.name}: peak "
                f"{result.traced_peak_bytes / 1e6:.1f} MB exceeds baseline "
                f"{reference['traced_peak_bytes'] / 1e6:.1f} MB by more "
                f"than {threshold:.0%}")
    return failures
