"""The ``BENCH_sweep.json`` artifact: a sweep-performance trajectory.

Every ``repro sweep`` invocation records wall time, worker count, cache
hits, and throughput (points/second) per experiment plus totals, so
future PRs have a perf baseline to compare orchestrator changes
against.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.executor import SweepStats

#: Artifact schema version; bump on layout changes.
BENCH_VERSION = 1


def bench_payload(stats: "t.Sequence[SweepStats]",
                  jobs: int) -> dict[str, t.Any]:
    """The artifact as a JSON-native dict."""
    per_experiment = [s.to_dict() for s in stats]
    total_points = sum(s.points for s in stats)
    total_wall = sum(s.wall_seconds for s in stats)
    return {
        "artifact": "repro-sweep-bench",
        "version": BENCH_VERSION,
        "jobs": jobs,
        "experiments": per_experiment,
        "totals": {
            "experiments": len(per_experiment),
            "points": total_points,
            "cache_hits": sum(s.cache_hits for s in stats),
            "executed": sum(s.executed for s in stats),
            "wall_seconds": total_wall,
            "points_per_second": (total_points / total_wall
                                  if total_wall > 0 else 0.0),
        },
    }


def write_bench_artifact(path: str | pathlib.Path,
                         stats: "t.Sequence[SweepStats]",
                         jobs: int) -> dict[str, t.Any]:
    """Write the artifact to ``path`` and return its payload."""
    payload = bench_payload(stats, jobs)
    target = pathlib.Path(path)
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    return payload
