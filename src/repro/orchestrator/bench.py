"""The ``BENCH_sweep.json`` artifact: a sweep-performance trajectory.

Every ``repro sweep`` invocation records wall time, worker count, cache
hits, and throughput (points/second) per experiment plus totals, so
future PRs have a perf baseline to compare orchestrator changes
against.

Schema v2 keeps a *trajectory* — one entry per invocation — with the
same rotation discipline as ``BENCH_perf.json``: the newest
:data:`_KEEP_PER_GROUP` entries per ``(experiments, jobs)`` group plus
the artifact's first-ever entry survive, so the committed file stays
bounded no matter how often sweeps run.  v1 artifacts (a single
overwritten snapshot) are migrated transparently: the old snapshot
becomes the trajectory's first entry, preserving the oldest recorded
numbers as the fixed reference point.
"""

from __future__ import annotations

import json
import pathlib
import time
import typing as t

from repro._errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.executor import SweepStats

#: Artifact schema version; bump on layout changes.
BENCH_VERSION = 2

#: Trajectory entries kept per (experiments, jobs) group after an
#: append (plus the first-ever entry).
_KEEP_PER_GROUP = 20


def bench_entry(stats: "t.Sequence[SweepStats]",
                jobs: int) -> dict[str, t.Any]:
    """One trajectory entry as a JSON-native dict."""
    per_experiment = [s.to_dict() for s in stats]
    total_points = sum(s.points for s in stats)
    total_wall = sum(s.wall_seconds for s in stats)
    return {
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "jobs": jobs,
        "experiments": per_experiment,
        "totals": {
            "experiments": len(per_experiment),
            "points": total_points,
            "cache_hits": sum(s.cache_hits for s in stats),
            "executed": sum(s.executed for s in stats),
            "wall_seconds": total_wall,
            "points_per_second": (total_points / total_wall
                                  if total_wall > 0 else 0.0),
        },
    }


#: Backwards-compatible alias (the v1 name; same entry shape minus the
#: artifact envelope, which now lives on the trajectory file).
bench_payload = bench_entry


def _entry_key(entry: dict[str, t.Any]) -> tuple[tuple[str, ...], int]:
    """The rotation group of one entry: which experiments, how many jobs.

    Sweeps of different experiment sets (or parallelism) are different
    measurements; each group ages out independently so a burst of e2
    sweeps cannot evict the only e8 history.
    """
    experiments = tuple(sorted(
        str(record.get("experiment", "")) for record in
        entry.get("experiments", [])))
    return experiments, int(entry.get("jobs", 0))


def _rotate(entries: list[dict[str, t.Any]]) -> list[dict[str, t.Any]]:
    """Newest :data:`_KEEP_PER_GROUP` per group + the first-ever entry."""
    if not entries:
        return entries
    keep = {0}
    groups: dict[tuple[tuple[str, ...], int], list[int]] = {}
    for index, entry in enumerate(entries):
        groups.setdefault(_entry_key(entry), []).append(index)
    for indices in groups.values():
        keep.update(indices[-_KEEP_PER_GROUP:])
    return [entries[index] for index in sorted(keep)]


def _load_trajectory(target: pathlib.Path) -> list[dict[str, t.Any]]:
    """The existing trajectory, migrating a v1 snapshot in place."""
    payload = json.loads(target.read_text(encoding="utf-8"))
    if payload.get("artifact") != "repro-sweep-bench":
        raise ConfigurationError(
            f"{target} exists but is not a repro-sweep-bench artifact")
    version = payload.get("version", 1)
    if version == BENCH_VERSION:
        return list(payload.get("trajectory", []))
    if version != 1:
        raise ConfigurationError(
            f"{target} has unsupported schema version {version}")
    # v1 was one snapshot, overwritten per run: carry it over as the
    # trajectory's first (and oldest) entry.
    snapshot = {key: value for key, value in payload.items()
                if key not in ("artifact", "version")}
    return [snapshot] if snapshot else []


def append_bench_entry(path: str | pathlib.Path,
                       entry: dict[str, t.Any]) -> dict[str, t.Any]:
    """Append ``entry`` to the artifact at ``path`` (created if absent).

    Reads schema v1 or v2; always writes v2 (rotated trajectory).
    """
    target = pathlib.Path(path)
    trajectory = _load_trajectory(target) if target.exists() else []
    trajectory.append(entry)
    payload = {
        "artifact": "repro-sweep-bench",
        "version": BENCH_VERSION,
        "trajectory": _rotate(trajectory),
    }
    if target.parent != pathlib.Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(payload, indent=2) + "\n",
                      encoding="utf-8")
    return payload


def write_bench_artifact(path: str | pathlib.Path,
                         stats: "t.Sequence[SweepStats]",
                         jobs: int) -> dict[str, t.Any]:
    """Record one sweep invocation in the artifact at ``path``."""
    return append_bench_entry(path, bench_entry(stats, jobs))
