"""Parallel sweep execution: fan out, cache, reassemble in order.

``run_sweep`` plans an experiment's points, satisfies what it can from
the result cache, fans the misses out over a
``concurrent.futures.ProcessPoolExecutor``, and reassembles the ordered
payloads into the exact :class:`ExperimentResult` the sequential path
produces.  Determinism holds because each point carries its own settings
and seed, workers share no state, and every payload — fresh or cached —
is canonicalized through JSON before assembly.

Interruption and failure semantics:

* Ctrl-C cancels outstanding points and raises
  :class:`SweepInterrupted`; completed points are already in the cache,
  so the next invocation resumes where this one stopped.
* ``point_timeout`` bounds how long the executor waits for the *next*
  point to complete; expiry cancels the remainder and raises
  :class:`SweepTimeout`.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import time
import typing as t

from repro.experiments.common import ExperimentResult, ExperimentSettings
from repro.orchestrator import plan as plan_mod
from repro.orchestrator.cache import ResultCache, canonical_payload
from repro.orchestrator.plan import Payload, SweepPoint
from repro.orchestrator.progress import ProgressReporter


class SweepTimeout(RuntimeError):
    """No sweep point completed within the configured timeout."""


class SweepInterrupted(RuntimeError):
    """The sweep was interrupted; completed points are cached."""

    def __init__(self, experiment: str, done: int, total: int) -> None:
        super().__init__(f"sweep {experiment} interrupted after "
                         f"{done}/{total} points (completed points are "
                         f"cached; rerun to resume)")
        self.experiment = experiment
        self.done = done
        self.total = total


@dataclasses.dataclass(frozen=True)
class PointOutcome:
    """One point's provenance within a sweep."""

    point: SweepPoint
    cached: bool
    wall_seconds: float


@dataclasses.dataclass(frozen=True)
class SweepStats:
    """Telemetry for one experiment's sweep."""

    experiment: str
    jobs: int
    points: int
    cache_hits: int
    executed: int
    wall_seconds: float
    point_wall_seconds: tuple[float, ...]

    def points_per_second(self) -> float:
        """Overall sweep rate (cache hits included)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.points / self.wall_seconds

    def to_dict(self) -> dict[str, t.Any]:
        """JSON-native view for reports and the bench artifact."""
        return {
            "experiment": self.experiment,
            "jobs": self.jobs,
            "points": self.points,
            "cache_hits": self.cache_hits,
            "executed": self.executed,
            "wall_seconds": self.wall_seconds,
            "points_per_second": self.points_per_second(),
        }


@dataclasses.dataclass(frozen=True)
class SweepOutcome:
    """What ``run_sweep`` returns: the table plus its telemetry."""

    result: ExperimentResult
    stats: SweepStats
    outcomes: tuple[PointOutcome, ...]
    #: The ordered canonical point payloads the result was assembled
    #: from — consumers needing per-point structure (the chaos grader,
    #: digest tooling) read these instead of re-parsing the table.
    payloads: tuple[Payload, ...] = ()


def execute_point(point: SweepPoint) -> Payload:
    """Run one sweep point and canonicalize its payload.

    Module-level so worker processes can import and unpickle it; the
    provider registry is (re)loaded lazily inside each worker.
    """
    provider = plan_mod.provider_for(point.experiment)
    return canonical_payload(provider.run_point(point))


def _execute_point_timed(point: SweepPoint) -> tuple[Payload, float]:
    started = time.perf_counter()
    payload = execute_point(point)
    return payload, time.perf_counter() - started


def run_sweep(experiment_id: str, settings: ExperimentSettings, *,
              jobs: int = 1,
              cache: ResultCache | None = None,
              rerun: bool = False,
              point_timeout: float | None = None,
              progress: ProgressReporter | None = None,
              points: t.Sequence[SweepPoint] | None = None) -> SweepOutcome:
    """Execute one experiment as a parallel, cached sweep.

    ``jobs`` bounds the worker processes; ``jobs=1`` runs in-process.
    ``rerun`` executes every point even on a cache hit (and refreshes
    the entries); ``cache=None`` disables caching entirely.  ``points``
    overrides the provider's default decomposition — the chaos CLI uses
    this to run catalog subsets; each point still caches on its own
    identity, so subsets and full campaigns share cache entries.
    """
    provider = plan_mod.provider_for(experiment_id)
    points = list(provider.points(settings) if points is None else points)
    started = time.monotonic()
    if progress is not None:
        progress.begin(len(points))

    payloads: list[Payload | None] = [None] * len(points)
    outcomes: list[PointOutcome | None] = [None] * len(points)
    pending: list[int] = []
    for i, point in enumerate(points):
        hit = cache.get(point) if cache is not None and not rerun else None
        if hit is not None:
            payloads[i] = hit
            outcomes[i] = PointOutcome(point, cached=True, wall_seconds=0.0)
            if progress is not None:
                progress.point_done(point, cached=True, wall_seconds=0.0)
        else:
            pending.append(i)

    def record(index: int, payload: Payload, wall: float) -> None:
        point = points[index]
        payloads[index] = payload
        outcomes[index] = PointOutcome(point, cached=False,
                                       wall_seconds=wall)
        if cache is not None:
            cache.put(point, payload)
        if progress is not None:
            progress.point_done(point, cached=False, wall_seconds=wall)

    if len(pending) > 1 and jobs > 1:
        _run_pool(points, pending, record,
                  jobs=min(jobs, len(pending)),
                  point_timeout=point_timeout,
                  experiment=provider.experiment)
    else:
        for index in pending:
            payload, wall = _execute_point_timed(points[index])
            record(index, payload, wall)
            if point_timeout is not None and wall > point_timeout:
                raise SweepTimeout(
                    f"point {points[index].label!r} took {wall:.1f}s "
                    f"(timeout {point_timeout:.1f}s)")

    wall_seconds = time.monotonic() - started
    done = [o for o in outcomes if o is not None]
    stats = SweepStats(
        experiment=provider.experiment,
        jobs=jobs,
        points=len(points),
        cache_hits=sum(1 for o in done if o.cached),
        executed=sum(1 for o in done if not o.cached),
        wall_seconds=wall_seconds,
        point_wall_seconds=tuple(o.wall_seconds for o in done),
    )
    if progress is not None:
        progress.finish(wall_seconds=wall_seconds, executed=stats.executed)
    ordered = tuple(t.cast(Payload, payload) for payload in payloads)
    result = provider.assemble(settings, list(ordered))
    return SweepOutcome(result=result, stats=stats, outcomes=tuple(done),
                        payloads=ordered)


def _run_pool(points: list[SweepPoint], pending: list[int],
              record: t.Callable[[int, Payload, float], None], *,
              jobs: int, point_timeout: float | None,
              experiment: str) -> None:
    """Fan pending points over a process pool; results land in order
    via their indices, so completion order never matters."""
    with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = {pool.submit(_execute_point_timed, points[index]): index
                   for index in pending}
        remaining = dict(futures)
        try:
            while remaining:
                finished, __ = concurrent.futures.wait(
                    remaining, timeout=point_timeout,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                if not finished:
                    _cancel(pool, remaining)
                    labels = sorted(points[i].label
                                    for i in remaining.values())
                    raise SweepTimeout(
                        f"no point completed within "
                        f"{point_timeout:.1f}s; outstanding: {labels}")
                for future in finished:
                    index = remaining.pop(future)
                    payload, wall = future.result()
                    record(index, payload, wall)
        except KeyboardInterrupt:
            _cancel(pool, remaining)
            raise SweepInterrupted(
                experiment,
                done=len(points) - len(remaining),
                total=len(points)) from None


def _cancel(pool: concurrent.futures.ProcessPoolExecutor,
            remaining: t.Mapping[t.Any, int]) -> None:
    for future in remaining:
        future.cancel()
    pool.shutdown(wait=False, cancel_futures=True)
