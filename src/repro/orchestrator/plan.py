"""Sweep planning: points, providers, and the experiment registry.

A sweep decomposes an experiment into independent
:class:`SweepPoint` units — one simulator run each.  Each experiment
module registers a :class:`SweepProvider` (via :func:`register_sweep`)
with three callables:

* ``points(settings)`` — the ordered decomposition;
* ``run_point(point)`` — execute one point, returning a JSON-native
  payload dict (this is what worker processes run);
* ``assemble(settings, payloads)`` — fold the ordered payloads back into
  the :class:`~repro.experiments.common.ExperimentResult` the sequential
  ``run()`` path produces, byte for byte.

Points are picklable value objects: a frozen settings snapshot plus a
small canonical parameter list.  Everything a worker needs travels
inside the point; nothing is shared across process boundaries, which is
what makes parallel execution deterministic.
"""

from __future__ import annotations

import dataclasses
import importlib
import typing as t

from repro._errors import ConfigurationError
from repro.experiments.common import ExperimentResult, ExperimentSettings

#: JSON-native result of executing one sweep point.
Payload = dict[str, t.Any]

_MISSING = object()


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One independent unit of sweep work (a single simulator run).

    ``params`` is an ordered tuple of ``(name, value)`` pairs with
    JSON-native values; together with the settings snapshot it fully
    determines the point's outcome, so it doubles as the cache-key
    material (see :meth:`identity`).
    """

    experiment: str
    index: int
    kind: str
    label: str
    settings: ExperimentSettings
    params: tuple[tuple[str, t.Any], ...] = ()

    def params_dict(self) -> dict[str, t.Any]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def param(self, name: str, default: t.Any = _MISSING) -> t.Any:
        """One parameter by name; raises ``KeyError`` without a default."""
        for key, value in self.params:
            if key == name:
                return value
        if default is _MISSING:
            raise KeyError(f"sweep point {self.label!r} has no "
                           f"parameter {name!r}")
        return default

    def identity(self) -> dict[str, t.Any]:
        """Canonical JSON-native identity (excludes index/label).

        Two points with equal identity produce equal payloads, so the
        cache keys on exactly this — plus the code version — and nothing
        else.
        """
        return {
            "experiment": self.experiment.lower(),
            "kind": self.kind,
            "params": [[name, value]
                       for name, value in sorted(self.params)],
            "settings": self.settings.to_dict(),
        }


@dataclasses.dataclass(frozen=True)
class SweepProvider:
    """An experiment's sweep decomposition, as registered."""

    experiment: str
    title: str
    points: t.Callable[[ExperimentSettings], t.Sequence[SweepPoint]]
    run_point: t.Callable[[SweepPoint], Payload]
    assemble: t.Callable[[ExperimentSettings, t.Sequence[Payload]],
                         ExperimentResult]


_REGISTRY: dict[str, SweepProvider] = {}

#: Modules that register sweep providers when imported.
PROVIDER_MODULES: tuple[str, ...] = (
    "repro.experiments.e1_platform",
    "repro.experiments.e2_load_scaling",
    "repro.experiments.e3_core_scaling",
    "repro.experiments.e4_smt",
    "repro.experiments.e5_utilization",
    "repro.experiments.e6_service_scaling",
    "repro.experiments.e7_placement",
    "repro.experiments.e8_headline",
    "repro.experiments.e9_characterization",
    "repro.experiments.e10_numa",
    "repro.experiments.e11_latency_breakdown",
    "repro.experiments.e12_colocation",
    "repro.experiments.e13_fault_tolerance",
    "repro.experiments.ablations",
    "repro.chaos.campaign",
)


def register_sweep(experiment: str, title: str, *,
                   points: t.Callable,
                   run_point: t.Callable,
                   assemble: t.Callable) -> SweepProvider:
    """Register an experiment's sweep provider (idempotent)."""
    provider = SweepProvider(experiment.lower(), title,
                             points, run_point, assemble)
    _REGISTRY[provider.experiment] = provider
    return provider


def load_providers() -> None:
    """Import every provider module (safe to call repeatedly)."""
    for module in PROVIDER_MODULES:
        importlib.import_module(module)


def provider_for(experiment_id: str) -> SweepProvider:
    """The registered provider for ``experiment_id`` (e.g. ``"e2"``)."""
    load_providers()
    try:
        return _REGISTRY[experiment_id.lower()]
    except KeyError:
        raise ConfigurationError(
            f"no sweep provider registered for {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}") from None


def sweep_experiments() -> list[str]:
    """All experiment ids with a registered sweep provider."""
    load_providers()
    return sorted(_REGISTRY)


def plan_sweep(experiment_id: str,
               settings: ExperimentSettings) -> list[SweepPoint]:
    """The ordered sweep decomposition of one experiment."""
    return list(provider_for(experiment_id).points(settings))
