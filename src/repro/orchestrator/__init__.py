"""Parallel experiment orchestration with a content-addressed cache.

The experiment suite is a *sweep*: every experiment decomposes into
independent :class:`~repro.orchestrator.plan.SweepPoint` units (one
simulator run each), which the executor fans out over a process pool,
memoizes in a content-addressed on-disk cache, and reassembles — in
order — into the exact tables the sequential ``run()`` path produces.

* :mod:`~repro.orchestrator.plan` — sweep points and the provider
  registry the experiment modules register themselves with;
* :mod:`~repro.orchestrator.executor` — parallel execution, ordered
  reassembly, timeouts, graceful interruption;
* :mod:`~repro.orchestrator.cache` — SHA-256 content-addressed JSONL
  result store under ``.repro-cache/``;
* :mod:`~repro.orchestrator.progress` — human progress lines plus a
  machine-readable JSONL run log;
* :mod:`~repro.orchestrator.bench` — the ``BENCH_sweep.json`` artifact;
* :mod:`~repro.orchestrator.perfbench` — the ``BENCH_perf.json``
  wall-clock trajectory (``repro perfbench``) and its CI regression
  gate.

Determinism is the correctness bar: each point carries its own settings
and seed, no state crosses process boundaries, and every payload is
canonicalized through JSON, so a parallel sweep is byte-identical to the
sequential path and to a cache replay.
"""

from repro.orchestrator.bench import write_bench_artifact
from repro.orchestrator.cache import ResultCache, code_version
from repro.orchestrator.executor import (
    SweepInterrupted,
    SweepOutcome,
    SweepStats,
    SweepTimeout,
    run_sweep,
)
from repro.orchestrator.plan import (
    SweepPoint,
    SweepProvider,
    plan_sweep,
    provider_for,
    register_sweep,
    sweep_experiments,
)
from repro.orchestrator.progress import ProgressReporter

__all__ = [
    "ProgressReporter",
    "ResultCache",
    "SweepInterrupted",
    "SweepOutcome",
    "SweepPoint",
    "SweepProvider",
    "SweepStats",
    "SweepTimeout",
    "code_version",
    "plan_sweep",
    "provider_for",
    "register_sweep",
    "run_sweep",
    "sweep_experiments",
    "write_bench_artifact",
]
