"""Content-addressed on-disk cache for sweep-point payloads.

Each entry is addressed by the SHA-256 of the canonically serialized
point identity (experiment, kind, sorted params, full settings dict)
plus a fingerprint of the package's source code, so editing any model
file invalidates every dependent result without bookkeeping.

Storage is one JSONL file per experiment under the cache root
(``.repro-cache/e2.jsonl`` …), one ``{"key": …, "payload": …}`` object
per line.  Lines that fail to parse — a truncated write, a corrupted
disk block — are skipped on load and the point is simply recomputed;
corruption can cost time, never correctness.
"""

from __future__ import annotations

import functools
import hashlib
import json
import pathlib
import typing as t

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.orchestrator.plan import Payload, SweepPoint

#: Bump when the entry format or key recipe changes.
CACHE_VERSION = 1

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def canonical_json(obj: t.Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, ASCII only."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def canonical_payload(payload: "Payload") -> "Payload":
    """Normalize a payload through a JSON round trip.

    Freshly computed and cache-replayed payloads then compare — and
    assemble — identically: tuples become lists, dict order is
    preserved, floats survive exactly (``json`` uses shortest
    round-trip ``repr``).
    """
    return json.loads(json.dumps(payload))


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """SHA-256 fingerprint of every ``repro`` source file.

    Computed once per process; any change to the package's code yields
    a new fingerprint and therefore fresh cache keys.
    """
    root = pathlib.Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


class ResultCache:
    """Append-only JSONL store addressed by sweep-point content.

    All writes happen in the orchestrating process (workers only
    compute), so a plain append needs no locking.
    """

    def __init__(self, root: str | pathlib.Path = DEFAULT_CACHE_DIR,
                 fingerprint: str | None = None) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or code_version()
        self._entries: dict[str, dict[str, "Payload"]] = {}

    def key_for(self, point: "SweepPoint") -> str:
        """The content address of one sweep point."""
        material = {"cache_version": CACHE_VERSION,
                    "code": self.fingerprint}
        material.update(point.identity())
        return hashlib.sha256(canonical_json(material).encode()).hexdigest()

    def get(self, point: "SweepPoint") -> "Payload | None":
        """The cached payload for ``point``, or ``None`` on a miss."""
        return self._experiment_entries(point.experiment).get(
            self.key_for(point))

    def put(self, point: "SweepPoint", payload: "Payload") -> str:
        """Store ``payload`` under the point's content address."""
        key = self.key_for(point)
        entries = self._experiment_entries(point.experiment)
        if entries.get(key) != payload:
            entries[key] = canonical_payload(payload)
            self.root.mkdir(parents=True, exist_ok=True)
            line = json.dumps({"key": key, "payload": payload})
            with self._file(point.experiment).open(
                    "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        return key

    def entry_count(self, experiment: str) -> int:
        """How many valid entries one experiment's file holds."""
        return len(self._experiment_entries(experiment))

    def _file(self, experiment: str) -> pathlib.Path:
        return self.root / f"{experiment.lower()}.jsonl"

    def _experiment_entries(self, experiment: str) -> dict[str, "Payload"]:
        experiment = experiment.lower()
        if experiment not in self._entries:
            self._entries[experiment] = self._load(self._file(experiment))
        return self._entries[experiment]

    @staticmethod
    def _load(path: pathlib.Path) -> dict[str, "Payload"]:
        entries: dict[str, "Payload"] = {}
        if not path.exists():
            return entries
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # corrupted line: recompute, don't crash
                if (not isinstance(record, dict)
                        or not isinstance(record.get("key"), str)
                        or not isinstance(record.get("payload"), dict)):
                    continue
                entries[record["key"]] = record["payload"]
        return entries
