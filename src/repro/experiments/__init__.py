"""Experiment harness: one module per paper experiment.

Each module exposes ``run(settings) -> ExperimentResult`` producing the
rows/series the paper's corresponding table or figure reports.  The
benchmark suite (``benchmarks/``) and the CLI (``python -m repro``) are
thin wrappers over these functions; EXPERIMENTS.md records representative
output next to the paper's claims.

| Id  | Module | Reconstructed figure/table |
|-----|--------|-----------------------------|
| E1  | :mod:`~repro.experiments.e1_platform` | platform configuration table |
| E2  | :mod:`~repro.experiments.e2_load_scaling` | throughput/latency vs concurrent users |
| E3  | :mod:`~repro.experiments.e3_core_scaling` | throughput vs logical CPUs enabled |
| E4  | :mod:`~repro.experiments.e4_smt` | SMT on/off sensitivity |
| E5  | :mod:`~repro.experiments.e5_utilization` | per-service CPU breakdown |
| E6  | :mod:`~repro.experiments.e6_service_scaling` | per-service scaling curves + USL fits |
| E7  | :mod:`~repro.experiments.e7_placement` | placement-policy comparison |
| E8  | :mod:`~repro.experiments.e8_headline` | optimized vs tuned baseline (+22%/−18% claim) |
| E9  | :mod:`~repro.experiments.e9_characterization` | microarchitectural contrast vs SPEC-class |
| E10 | :mod:`~repro.experiments.e10_numa` | NUMA locality effects |
| E11 | :mod:`~repro.experiments.e11_latency_breakdown` | traced latency decomposition (extension) |
| E12 | :mod:`~repro.experiments.e12_colocation` | batch-neighbor co-location (extension) |
| E13 | :mod:`~repro.experiments.e13_fault_tolerance` | fault-tolerance matrix (extension) |
| E14 | :mod:`~repro.experiments.e14_cross_app` | cross-application scale-up comparison (extension) |
| A1..A4 | :mod:`~repro.experiments.ablations` | design-choice ablations |

Each module also registers a *sweep provider* with
:mod:`repro.orchestrator.plan` — a ``sweep_points(settings)`` /
``run_point(point)`` / ``assemble(settings, payloads)`` triple that
decomposes the experiment into independent points.  ``run()`` is a thin
sequential composition of the same triple, so ``repro sweep`` (parallel,
cached) reproduces ``repro run`` byte-for-byte.
"""

from repro.experiments.common import ExperimentResult, ExperimentSettings

__all__ = ["ExperimentResult", "ExperimentSettings"]
