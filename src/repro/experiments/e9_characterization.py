"""E9 — Microarchitectural characterization vs SPEC-class workloads.

Runs the TeaStore services under load and the SPEC-class batch kernels
through the same synthetic-counter pipeline, producing the paper's
contrast table: microservices show low IPC, heavy L1i pressure, and a
large front-end-bound fraction — nothing like the loop kernels
general-purpose server CPUs are tuned against.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.metrics.hwcounters import CounterBank
from repro.orchestrator import plan
from repro.spec.kernels import KERNEL_NAMES, run_batch_kernels
from repro.teastore.catalog import SERVICE_NAMES

TITLE = "Microarchitectural characterization: TeaStore vs SPEC-class"


def run(settings: ExperimentSettings | None = None,
        kernel_bursts: int = 150) -> ExperimentResult:
    """One row per workload (six services + three kernels)."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, kernel_bursts)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 kernel_bursts: int = 150) -> list[plan.SweepPoint]:
    """Two points: the traced store run and the batch-kernel bursts.

    The counter bank keys totals by workload name, so the two halves
    are independent and can run in separate processes.
    """
    return [
        plan.SweepPoint("e9", 0, "services", "teastore-services", settings),
        plan.SweepPoint("e9", 1, "kernels", "spec-kernels", settings,
                        params=(("kernel_bursts", int(kernel_bursts)),)),
    ]


def _counter_row(bank: CounterBank, name: str, klass: str) -> Row:
    totals = bank.totals(name)
    return {
        "workload": name,
        "class": klass,
        "ipc": totals.ipc,
        "l1i_mpki": totals.l1i_mpki,
        "l2_mpki": totals.l2_mpki,
        "l3_mpki": totals.l3_mpki,
        "branch_mpki": totals.branch_mpki,
        "frontend_bound": totals.frontend_bound_fraction,
        "memory_bound": totals.memory_bound_fraction,
    }


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Run one half of the contrast table through the counter model."""
    settings = point.settings
    machine = settings.machine()
    bank = CounterBank()
    if point.kind == "services":
        run_store(settings, machine=machine, counter_sink=bank)
        rows = [_counter_row(bank, name, "microservice")
                for name in SERVICE_NAMES]
    else:
        run_batch_kernels(machine, bank,
                          bursts_per_kernel=point.param("kernel_bursts"),
                          seed=settings.seed)
        rows = [_counter_row(bank, name, "spec-class")
                for name in KERNEL_NAMES]
    return {"rows": rows}


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Concatenate both halves and compute the contrast notes."""
    rows: list[Row] = [dict(row) for payload in payloads
                       for row in payload["rows"]]
    services = [r for r in rows if r["class"] == "microservice"]
    kernels = [r for r in rows if r["class"] == "spec-class"]

    def avg(rows_subset: list[Row], key: str) -> float:
        return sum(t.cast(float, r[key]) for r in rows_subset) / len(rows_subset)

    notes = [
        f"mean IPC: microservices {avg(services, 'ipc'):.2f} vs "
        f"SPEC-class {avg(kernels, 'ipc'):.2f}",
        f"mean L1i MPKI: microservices {avg(services, 'l1i_mpki'):.1f} vs "
        f"SPEC-class {avg(kernels, 'l1i_mpki'):.1f}",
        "microservices are front-end hungry; SPEC-class kernels live "
        "in L1i",
    ]
    return ExperimentResult("E9", TITLE, rows, notes=notes)


plan.register_sweep("e9", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
