"""E9 — Microarchitectural characterization vs SPEC-class workloads.

Runs the TeaStore services under load and the SPEC-class batch kernels
through the same synthetic-counter pipeline, producing the paper's
contrast table: microservices show low IPC, heavy L1i pressure, and a
large front-end-bound fraction — nothing like the loop kernels
general-purpose server CPUs are tuned against.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.metrics.hwcounters import CounterBank
from repro.spec.kernels import KERNEL_NAMES, run_batch_kernels
from repro.teastore.catalog import SERVICE_NAMES

TITLE = "Microarchitectural characterization: TeaStore vs SPEC-class"


def run(settings: ExperimentSettings | None = None,
        kernel_bursts: int = 150) -> ExperimentResult:
    """One row per workload (six services + three kernels)."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    bank = CounterBank()
    run_store(settings, machine=machine, counter_sink=bank)
    run_batch_kernels(machine, bank, bursts_per_kernel=kernel_bursts,
                      seed=settings.seed)

    rows: list[Row] = []
    for name in list(SERVICE_NAMES) + list(KERNEL_NAMES):
        totals = bank.totals(name)
        rows.append({
            "workload": name,
            "class": ("microservice" if name in SERVICE_NAMES
                      else "spec-class"),
            "ipc": totals.ipc,
            "l1i_mpki": totals.l1i_mpki,
            "l2_mpki": totals.l2_mpki,
            "l3_mpki": totals.l3_mpki,
            "branch_mpki": totals.branch_mpki,
            "frontend_bound": totals.frontend_bound_fraction,
            "memory_bound": totals.memory_bound_fraction,
        })
    services = [r for r in rows if r["class"] == "microservice"]
    kernels = [r for r in rows if r["class"] == "spec-class"]

    def avg(rows_subset: list[Row], key: str) -> float:
        return sum(t.cast(float, r[key]) for r in rows_subset) / len(rows_subset)

    notes = [
        f"mean IPC: microservices {avg(services, 'ipc'):.2f} vs "
        f"SPEC-class {avg(kernels, 'ipc'):.2f}",
        f"mean L1i MPKI: microservices {avg(services, 'l1i_mpki'):.1f} vs "
        f"SPEC-class {avg(kernels, 'l1i_mpki'):.1f}",
        "microservices are front-end hungry; SPEC-class kernels live "
        "in L1i",
    ]
    return ExperimentResult("E9", TITLE, rows, notes=notes)
