"""E7 — Placement-policy comparison.

Runs identical replica counts under every placement policy.  Pinning at
NUMA-node granularity helps little on a single-node socket; confining each
replica to its own L3 domain (CCX-aware) is where the paper's gains come
from.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
from repro.orchestrator import plan
from repro.placement.policies import ccx_aware, node_spread, unpinned
from repro.placement.scaling import weights_from_utilization

TITLE = "Placement policies at fixed replica counts"

#: Policies in table order; the first is the comparison baseline.
POLICY_ORDER = ("unpinned", "node_spread", "ccx_aware")


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """One row per policy; uplift is relative to the unpinned baseline."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    counts = default_counts(settings)

    # Profile the unpinned baseline first: it is both the comparison
    # point and the source of the CPU weights ccx_aware budgets with.
    baseline_result, __, __ = run_store(
        settings, machine=machine,
        allocation=unpinned(machine, counts))
    weights = weights_from_utilization(baseline_result.service_utilization)

    policies: list[tuple[str, t.Any]] = [
        ("node_spread", node_spread(machine, counts)),
        ("ccx_aware", ccx_aware(machine, counts, weights)),
    ]
    rows: list[Row] = [_row("unpinned", baseline_result, baseline_result)]
    for name, allocation in policies:
        result, __, __ = run_store(settings, machine=machine,
                                   allocation=allocation)
        rows.append(_row(name, result, baseline_result))
    best = max(rows, key=lambda r: t.cast(float, r["throughput_rps"]))
    return ExperimentResult(
        "E7", TITLE, rows,
        notes=[f"best policy: {best['policy']} "
               f"(+{t.cast(float, best['uplift_pct']):.1f}% vs unpinned)"])


def _row(policy: str, result, baseline) -> Row:
    return {
        "policy": policy,
        "throughput_rps": result.throughput,
        "latency_mean_ms": result.latency_mean * 1e3,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
        "uplift_pct": 100.0 * (result.throughput
                               / baseline.throughput - 1.0),
    }


def sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """One independent point per placement policy.

    The ``ccx_aware`` point re-profiles the unpinned baseline inside its
    own process to derive the CPU weights — redundant work, but it keeps
    every point self-contained, and determinism makes the re-measured
    baseline identical to the baseline point's own run.
    """
    return [plan.SweepPoint("e7", index, "policy", policy, settings,
                            params=(("policy", policy),))
            for index, policy in enumerate(POLICY_ORDER)]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one placement policy."""
    settings = point.settings
    machine = settings.machine()
    counts = default_counts(settings)
    policy = point.param("policy")
    if policy == "unpinned":
        allocation = unpinned(machine, counts)
    elif policy == "node_spread":
        allocation = node_spread(machine, counts)
    elif policy == "ccx_aware":
        baseline, __, __ = run_store(settings, machine=machine,
                                     allocation=unpinned(machine, counts))
        weights = weights_from_utilization(baseline.service_utilization)
        allocation = ccx_aware(machine, counts, weights)
    else:
        raise ValueError(f"unknown placement policy {policy!r}")
    result, __, __ = run_store(settings, machine=machine,
                               allocation=allocation)
    return {
        "policy": policy,
        "throughput_rps": result.throughput,
        "latency_mean_ms": result.latency_mean * 1e3,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Compute uplifts against the leading unpinned baseline."""
    baseline_rps = t.cast(float, payloads[0]["throughput_rps"])
    rows: list[Row] = []
    for payload in payloads:
        row = dict(payload)
        row["uplift_pct"] = 100.0 * (t.cast(float, row["throughput_rps"])
                                     / baseline_rps - 1.0)
        rows.append(row)
    best = max(rows, key=lambda r: t.cast(float, r["throughput_rps"]))
    return ExperimentResult(
        "E7", TITLE, rows,
        notes=[f"best policy: {best['policy']} "
               f"(+{t.cast(float, best['uplift_pct']):.1f}% vs unpinned)"])


plan.register_sweep("e7", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
