"""E7 — Placement-policy comparison.

Runs identical replica counts under every placement policy.  Pinning at
NUMA-node granularity helps little on a single-node socket; confining each
replica to its own L3 domain (CCX-aware) is where the paper's gains come
from.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
from repro.placement.policies import ccx_aware, node_spread, unpinned
from repro.placement.scaling import weights_from_utilization

TITLE = "Placement policies at fixed replica counts"


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """One row per policy; uplift is relative to the unpinned baseline."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    counts = default_counts(settings)

    # Profile the unpinned baseline first: it is both the comparison
    # point and the source of the CPU weights ccx_aware budgets with.
    baseline_result, __, __ = run_store(
        settings, machine=machine,
        allocation=unpinned(machine, counts))
    weights = weights_from_utilization(baseline_result.service_utilization)

    policies: list[tuple[str, t.Any]] = [
        ("node_spread", node_spread(machine, counts)),
        ("ccx_aware", ccx_aware(machine, counts, weights)),
    ]
    rows: list[Row] = [_row("unpinned", baseline_result, baseline_result)]
    for name, allocation in policies:
        result, __, __ = run_store(settings, machine=machine,
                                   allocation=allocation)
        rows.append(_row(name, result, baseline_result))
    best = max(rows, key=lambda r: t.cast(float, r["throughput_rps"]))
    return ExperimentResult(
        "E7", TITLE, rows,
        notes=[f"best policy: {best['policy']} "
               f"(+{t.cast(float, best['uplift_pct']):.1f}% vs unpinned)"])


def _row(policy: str, result, baseline) -> Row:
    return {
        "policy": policy,
        "throughput_rps": result.throughput,
        "latency_mean_ms": result.latency_mean * 1e3,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
        "uplift_pct": 100.0 * (result.throughput
                               / baseline.throughput - 1.0),
    }
