"""E2 — Throughput and latency versus offered load.

Sweeps the closed-loop user population on the tuned-baseline deployment:
throughput climbs until the server saturates, after which added users only
add latency — the load-curve every server characterization opens with.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)

TITLE = "Throughput & latency vs concurrent users (tuned baseline)"

#: Default sweep for the paper-scale machine.
DEFAULT_USER_COUNTS = (125, 250, 500, 1000, 2000, 3000)


def run(settings: ExperimentSettings | None = None,
        user_counts: t.Sequence[int] | None = None) -> ExperimentResult:
    """One row per user-population point."""
    settings = settings or ExperimentSettings()
    if user_counts is None:
        user_counts = (DEFAULT_USER_COUNTS
                       if settings.preset.startswith("rome")
                       else (25, 50, 100, 200, 400))
    machine = settings.machine()
    rows: list[Row] = []
    peak = 0.0
    for users in user_counts:
        result, __, __ = run_store(settings, machine=machine, users=users)
        peak = max(peak, result.throughput)
        rows.append({
            "users": users,
            "throughput_rps": result.throughput,
            "latency_mean_ms": result.latency_mean * 1e3,
            "latency_p95_ms": result.latency_p95 * 1e3,
            "latency_p99_ms": result.latency_p99 * 1e3,
            "machine_util": result.machine_utilization,
        })
    saturation = next((row["users"] for row in rows
                       if t.cast(float, row["throughput_rps"]) > 0.95 * peak),
                      rows[-1]["users"])
    return ExperimentResult(
        "E2", TITLE, rows,
        notes=[f"throughput saturates near {saturation} users "
               f"at ~{peak:.0f} req/s"])
