"""E2 — Throughput and latency versus offered load.

Sweeps the closed-loop user population on the tuned-baseline deployment:
throughput climbs until the server saturates, after which added users only
add latency — the load-curve every server characterization opens with.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.orchestrator import plan

TITLE = "Throughput & latency vs concurrent users (tuned baseline)"

#: Default sweep for the paper-scale machine.
DEFAULT_USER_COUNTS = (125, 250, 500, 1000, 2000, 3000)


def run(settings: ExperimentSettings | None = None,
        user_counts: t.Sequence[int] | None = None) -> ExperimentResult:
    """One row per user-population point."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, user_counts)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 user_counts: t.Sequence[int] | None = None
                 ) -> list[plan.SweepPoint]:
    """One independent point per user-population level."""
    if user_counts is None:
        user_counts = (DEFAULT_USER_COUNTS
                       if settings.preset.startswith("rome")
                       else (25, 50, 100, 200, 400))
        # An explicit population above the grid (repro run e2 --users
        # 1000000 --shards 8 --cohort-factor 250) extends the curve
        # with that point instead of being silently ignored.
        if settings.users > user_counts[-1]:
            user_counts = (*user_counts, settings.users)
    return [plan.SweepPoint("e2", index, "load", f"users={users}",
                            settings, params=(("users", int(users)),))
            for index, users in enumerate(user_counts)]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one population level; the payload is the finished row."""
    users = point.param("users")
    result, __, __ = run_store(point.settings, users=users)
    return {
        "users": users,
        "throughput_rps": result.throughput,
        "latency_mean_ms": result.latency_mean * 1e3,
        "latency_p95_ms": result.latency_p95 * 1e3,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Fold the ordered rows back into the load curve and its note."""
    rows: list[Row] = [dict(payload) for payload in payloads]
    peak = max((t.cast(float, row["throughput_rps"]) for row in rows),
               default=0.0)
    saturation = next((row["users"] for row in rows
                       if t.cast(float, row["throughput_rps"]) > 0.95 * peak),
                      rows[-1]["users"])
    return ExperimentResult(
        "E2", TITLE, rows,
        notes=[f"throughput saturates near {saturation} users "
               f"at ~{peak:.0f} req/s"])


plan.register_sweep("e2", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
