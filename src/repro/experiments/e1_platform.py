"""E1 — Platform configuration table (the paper's testbed description).

The paper's platform: a state-of-the-art x86 server with 128 logical CPUs
per socket.  This experiment prints the modelled machine's full topology
so every other experiment's geometry is auditable.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import ExperimentResult, ExperimentSettings, Row
from repro.orchestrator import plan

TITLE = "Platform configuration"


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """One row per topology level of the configured machine."""
    settings = settings or ExperimentSettings()
    return assemble_sweep(settings, [run_sweep_point(point)
                                     for point in sweep_points(settings)])


def sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """A single (cheap) point: the topology table needs no simulation."""
    return [plan.SweepPoint("e1", 0, "platform", "topology", settings)]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Describe the machine; rows travel verbatim in the payload."""
    machine = point.settings.machine()
    spec = machine.spec
    rows: list[Row] = [
        {"attribute": "machine", "value": spec.name},
        {"attribute": "sockets", "value": spec.sockets},
        {"attribute": "numa_nodes", "value": len(machine.nodes)},
        {"attribute": "ccds", "value": len(machine.ccds)},
        {"attribute": "ccxs_l3_domains", "value": len(machine.ccxs)},
        {"attribute": "physical_cores", "value": len(machine.cores)},
        {"attribute": "logical_cpus", "value": machine.n_logical_cpus},
        {"attribute": "logical_cpus_per_socket",
         "value": spec.logical_cpus_per_socket},
        {"attribute": "smt_ways", "value": spec.threads_per_core},
        {"attribute": "base_ghz", "value": spec.base_freq_ghz},
        {"attribute": "boost_ghz", "value": spec.max_boost_ghz},
    ]
    rows.extend({"attribute": f"cache_{c.name.lower()}", "value": str(c)}
                for c in machine.cache_specs())
    return {"rows": rows, "note": machine.describe().splitlines()[0]}


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Reconstruct the table from the single payload."""
    [payload] = payloads
    return ExperimentResult("E1", TITLE, list(payload["rows"]),
                            notes=[payload["note"]])


plan.register_sweep("e1", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
