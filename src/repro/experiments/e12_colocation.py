"""E12 — Co-location with a batch "noisy neighbor" (extension).

The paper's last observation — microservices look nothing like the
workloads CPUs are designed against — has an operational corollary: the
two classes get co-located in practice.  This experiment runs TeaStore
next to a continuously running memory-streaming batch kernel, three ways:

* **store alone** — no neighbor (reference);
* **shared, both unpinned** — the neighbor competes everywhere: it steals
  cycles and drags its streaming working set across every L3 slice;
* **partitioned** — the store owns 12 of 16 CCXs (CCX-aware placement),
  the neighbor is confined to the remaining 4.

Topology partitioning contains the interference at a small, *predictable*
capacity cost — the same discipline that produced the headline gain.
"""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
)
from repro.placement.policies import ccx_aware, unpinned
from repro.services.deployment import Deployment
from repro.spec.kernels import batch_kernel_profiles
from repro.teastore.store import build_teastore
from repro.topology.cpuset import CpuSet
from repro.workload.batch import BatchKernelWorkload
from repro.workload.closed import ClosedLoopWorkload
from repro.workload.runner import run_experiment

TITLE = "Co-location with a streaming batch neighbor"

#: Demand weights for partitioning the store's CCX share (from E5).
STORE_WEIGHTS = {"webui": 0.37, "auth": 0.08, "persistence": 0.14,
                 "image": 0.15, "recommender": 0.07, "db": 0.19}


def run(settings: ExperimentSettings | None = None,
        neighbor_concurrency: int | None = None) -> ExperimentResult:
    """Three rows: alone, shared-unpinned, partitioned."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    n_ccxs = len(machine.ccxs)
    if n_ccxs < 8:
        raise ConfigurationError(
            f"E12 needs >= 8 CCXs to partition (got {n_ccxs})")
    if neighbor_concurrency is None:
        # Enough batch threads to keep its partition (or more) busy.
        neighbor_concurrency = machine.n_logical_cpus // 4
    neighbor_share = n_ccxs // 4
    store_ccxs = CpuSet()
    for ccx in range(n_ccxs - neighbor_share):
        store_ccxs = store_ccxs | machine.cpus_in_ccx(ccx)
    neighbor_ccxs = machine.all_cpus() - store_ccxs

    counts = default_counts(settings)
    configurations: list[tuple[str, t.Any, CpuSet | None]] = [
        ("store alone", unpinned(machine, counts), None),
        ("shared, both unpinned", unpinned(machine, counts),
         machine.all_cpus()),
        ("partitioned (CCX-aware)",
         ccx_aware(machine, counts, STORE_WEIGHTS, online=store_ccxs),
         neighbor_ccxs),
    ]

    rows: list[Row] = []
    reference: float | None = None
    for name, allocation, neighbor_affinity in configurations:
        deployment = Deployment(machine, seed=settings.seed,
                                memory_config=settings.memory_config)
        store = build_teastore(deployment, settings.store_config(),
                               placement=allocation.as_placement())
        neighbor = None
        if neighbor_affinity is not None:
            neighbor = BatchKernelWorkload(
                deployment, batch_kernel_profiles()["stream-like"],
                affinity=neighbor_affinity,
                concurrency=neighbor_concurrency)
            neighbor.start()
        workload = ClosedLoopWorkload(
            deployment, store.browse_session_factory(),
            n_users=settings.users, think_time=settings.think_time)
        workload.start()
        deployment.run(until=deployment.sim.now + settings.warmup)
        if neighbor is not None:
            neighbor.start_window()
        result = run_experiment(deployment, workload,
                                warmup=0.0, duration=settings.duration)
        if reference is None:
            reference = result.throughput
        rows.append({
            "config": name,
            "store_rps": result.throughput,
            "store_p99_ms": result.latency_p99 * 1e3,
            "store_vs_alone": result.throughput / reference,
            "neighbor_bursts_per_s": (neighbor.bursts_per_second()
                                      if neighbor is not None else 0.0),
        })
    shared = t.cast(float, rows[1]["store_vs_alone"])
    partitioned = t.cast(float, rows[2]["store_vs_alone"])
    return ExperimentResult(
        "E12", TITLE, rows,
        notes=[
            f"unconstrained neighbor costs the store "
            f"{100 * (1 - shared):.1f}%; partitioning holds the loss to "
            f"{100 * (1 - partitioned):.1f}% while the neighbor keeps "
            f"running",
        ])
