"""E12 — Co-location with a batch "noisy neighbor" (extension).

The paper's last observation — microservices look nothing like the
workloads CPUs are designed against — has an operational corollary: the
two classes get co-located in practice.  This experiment runs TeaStore
next to a continuously running memory-streaming batch kernel, three ways:

* **store alone** — no neighbor (reference);
* **shared, both unpinned** — the neighbor competes everywhere: it steals
  cycles and drags its streaming working set across every L3 slice;
* **partitioned** — the store owns 12 of 16 CCXs (CCX-aware placement),
  the neighbor is confined to the remaining 4.

Topology partitioning contains the interference at a small, *predictable*
capacity cost — the same discipline that produced the headline gain.
"""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
)
from repro.orchestrator import plan
from repro.placement.policies import ccx_aware, unpinned
from repro.services.deployment import Deployment
from repro.spec.kernels import batch_kernel_profiles
from repro.teastore.store import build_teastore
from repro.topology.cpuset import CpuSet
from repro.workload.batch import BatchKernelWorkload
from repro.workload.cohorts import closed_workload
from repro.workload.runner import run_experiment

TITLE = "Co-location with a streaming batch neighbor"

#: Demand weights for partitioning the store's CCX share (from E5).
STORE_WEIGHTS = {"webui": 0.37, "auth": 0.08, "persistence": 0.14,
                 "image": 0.15, "recommender": 0.07, "db": 0.19}


#: Configurations in table order: (display name, neighbor mode).
CONFIGS = (("store alone", "none"),
           ("shared, both unpinned", "shared"),
           ("partitioned (CCX-aware)", "partitioned"))


def run(settings: ExperimentSettings | None = None,
        neighbor_concurrency: int | None = None) -> ExperimentResult:
    """Three rows: alone, shared-unpinned, partitioned."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, neighbor_concurrency)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 neighbor_concurrency: int | None = None
                 ) -> list[plan.SweepPoint]:
    """One independent point per co-location configuration."""
    machine = settings.machine()
    n_ccxs = len(machine.ccxs)
    if n_ccxs < 8:
        raise ConfigurationError(
            f"E12 needs >= 8 CCXs to partition (got {n_ccxs})")
    if neighbor_concurrency is None:
        # Enough batch threads to keep its partition (or more) busy.
        neighbor_concurrency = machine.n_logical_cpus // 4
    return [plan.SweepPoint(
        "e12", index, mode, name, settings,
        params=(("config", name), ("mode", mode),
                ("concurrency", int(neighbor_concurrency))))
            for index, (name, mode) in enumerate(CONFIGS)]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure the store next to one neighbor configuration."""
    settings = point.settings
    machine = settings.machine()
    n_ccxs = len(machine.ccxs)
    neighbor_share = n_ccxs // 4
    store_ccxs = CpuSet()
    for ccx in range(n_ccxs - neighbor_share):
        store_ccxs = store_ccxs | machine.cpus_in_ccx(ccx)
    neighbor_ccxs = machine.all_cpus() - store_ccxs

    counts = default_counts(settings)
    mode = point.param("mode")
    neighbor_affinity: CpuSet | None
    if mode == "none":
        allocation = unpinned(machine, counts)
        neighbor_affinity = None
    elif mode == "shared":
        allocation = unpinned(machine, counts)
        neighbor_affinity = machine.all_cpus()
    else:
        allocation = ccx_aware(machine, counts, STORE_WEIGHTS,
                               online=store_ccxs)
        neighbor_affinity = neighbor_ccxs

    deployment = Deployment(machine, seed=settings.seed,
                            memory_config=settings.memory_config)
    store = build_teastore(deployment, settings.store_config(),
                           placement=allocation.as_placement())
    neighbor = None
    if neighbor_affinity is not None:
        neighbor = BatchKernelWorkload(
            deployment, batch_kernel_profiles()["stream-like"],
            affinity=neighbor_affinity,
            concurrency=point.param("concurrency"))
        neighbor.start()
    workload = closed_workload(
        deployment, store.browse_session_factory(),
        n_users=settings.users, think_time=settings.think_time,
        cohort_factor=settings.cohort_factor)
    workload.start()
    deployment.run(until=deployment.sim.now + settings.warmup)
    if neighbor is not None:
        neighbor.start_window()
    result = run_experiment(deployment, workload,
                            warmup=0.0, duration=settings.duration)
    return {
        "config": point.param("config"),
        "store_rps": result.throughput,
        "store_p99_ms": result.latency_p99 * 1e3,
        "neighbor_bursts_per_s": (neighbor.bursts_per_second()
                                  if neighbor is not None else 0.0),
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Compute the vs-alone ratios against the leading reference row."""
    reference = t.cast(float, payloads[0]["store_rps"])
    rows: list[Row] = []
    for payload in payloads:
        rows.append({
            "config": payload["config"],
            "store_rps": payload["store_rps"],
            "store_p99_ms": payload["store_p99_ms"],
            "store_vs_alone": (t.cast(float, payload["store_rps"])
                               / reference),
            "neighbor_bursts_per_s": payload["neighbor_bursts_per_s"],
        })
    shared = t.cast(float, rows[1]["store_vs_alone"])
    partitioned = t.cast(float, rows[2]["store_vs_alone"])
    return ExperimentResult(
        "E12", TITLE, rows,
        notes=[
            f"unconstrained neighbor costs the store "
            f"{100 * (1 - shared):.1f}%; partitioning holds the loss to "
            f"{100 * (1 - partitioned):.1f}% while the neighbor keeps "
            f"running",
        ])


plan.register_sweep("e12", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
