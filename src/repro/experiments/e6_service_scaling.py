"""E6 — Per-service scale-up curves.

For each service, sweeps the CPU allocation given to *that service alone*
— k CCXs, one replica per CCX — while every other service keeps a generous
fixed share of the remaining CCXs, under load that saturates the target's
smallest allocation.  System throughput then traces the target service's
own scale-up curve:

* WebUI keeps converting CCXs into throughput;
* Persistence stops paying off once the database's serialized fraction is
  the real constraint behind it;
* Auth and Recommender saturate the offered load with very little CPU.

The differences are the paper's case for sizing services individually.
Each curve gets a Universal Scalability Law fit.
"""

from __future__ import annotations

import typing as t

from repro.analysis.usl import fit_usl
from repro._errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
from repro.orchestrator import plan
from repro.placement.allocation import Allocation, ReplicaPlacement
from repro.placement.policies import ccx_aware
from repro.placement.scaling import ScalingCurve
from repro.teastore.catalog import SERVICE_NAMES
from repro.topology.model import Machine

TITLE = "Per-service scale-up curves (CCX sweeps + USL fits)"

#: Per-service CPU demand weights measured by E5 on the tuned baseline;
#: used to budget the non-target services generously.
DEMAND_WEIGHTS: dict[str, float] = {
    "webui": 0.37, "auth": 0.08, "persistence": 0.14,
    "image": 0.15, "recommender": 0.07, "db": 0.19,
}

#: Services swept by default, with their CCX ladders.
DEFAULT_SWEEPS: dict[str, tuple[int, ...]] = {
    "webui": (1, 2, 4, 8),
    "persistence": (1, 2, 4),
    "image": (1, 2, 4),
    "auth": (1, 2, 4),
}


def run(settings: ExperimentSettings | None = None,
        sweeps: t.Mapping[str, t.Sequence[int]] | None = None
        ) -> ExperimentResult:
    """One row per (service, CCX-count) point, USL fits in the notes."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, sweeps)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 sweeps: t.Mapping[str, t.Sequence[int]] | None = None
                 ) -> list[plan.SweepPoint]:
    """One independent point per (service, CCX-count) pair.

    Validation (fit of the ladders next to the fixed others-budget,
    known service names) happens here, before any simulation work is
    scheduled.
    """
    sweeps = sweeps or DEFAULT_SWEEPS
    machine = settings.machine()
    # The non-target services keep one fixed CCX budget for the whole
    # experiment: as much as possible while still fitting the largest
    # sweep point, and never fewer than one CCX per service.
    total_ccxs = len(machine.ccxs)
    max_point = max(max(ladder) for ladder in sweeps.values())
    others_budget = max(len(SERVICE_NAMES) - 1, total_ccxs - max_point)
    if others_budget + max_point > total_ccxs:
        raise ConfigurationError(
            f"sweep up to {max_point} CCXs does not fit next to "
            f"{others_budget} CCXs for the other services "
            f"({total_ccxs} total)")
    points: list[plan.SweepPoint] = []
    for service, ladder in sweeps.items():
        if service not in SERVICE_NAMES:
            raise ConfigurationError(f"unknown service {service!r}")
        for n_ccxs in ladder:
            points.append(plan.SweepPoint(
                "e6", len(points), "ccx-sweep",
                f"{service}@{n_ccxs}ccx", settings,
                params=(("service", service), ("ccxs", int(n_ccxs)),
                        ("others_budget", others_budget))))
    return points


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one (service, CCX-count) allocation."""
    settings = point.settings
    machine = settings.machine()
    counts = default_counts(settings)
    allocation = _target_allocation(machine, point.param("service"),
                                    point.param("ccxs"), counts,
                                    point.param("others_budget"))
    result, __, __ = run_store(settings, machine=machine,
                               allocation=allocation)
    return {
        "service": point.param("service"),
        "ccxs": point.param("ccxs"),
        "throughput_rps": result.throughput,
        "latency_p99_ms": result.latency_p99 * 1e3,
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Regroup rows per service and refit the scaling curves."""
    rows: list[Row] = [dict(payload) for payload in payloads]
    ladders: dict[str, list[Row]] = {}
    for row in rows:
        ladders.setdefault(t.cast(str, row["service"]), []).append(row)
    notes: list[str] = []
    for service, service_rows in ladders.items():
        ladder = [t.cast(int, row["ccxs"]) for row in service_rows]
        throughputs = [t.cast(float, row["throughput_rps"])
                       for row in service_rows]
        curve = ScalingCurve(service, tuple(ladder), tuple(throughputs))
        notes.append(f"{service}: gains stop at "
                     f"{curve.saturation_point()} CCXs "
                     f"(x{curve.speedups()[-1]:.2f} total)")
        if len(ladder) >= 3:
            fit = fit_usl(list(ladder), throughputs)
            notes.append(f"{service}: {fit}")
    return ExperimentResult("E6", TITLE, rows, notes=notes)


plan.register_sweep("e6", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)


def _target_allocation(machine: Machine, target: str, n_ccxs: int,
                       counts: t.Mapping[str, int],
                       others_budget: int) -> Allocation:
    """Target on the first ``n_ccxs`` CCXs (one replica per CCX); every
    other service keeps a *fixed* budget — the machine's top
    ``others_budget`` CCXs — regardless of ``n_ccxs``, so the sweep
    varies exactly one thing.  CCXs the target does not use stay idle."""
    total_ccxs = len(machine.ccxs)
    target_budget = total_ccxs - others_budget
    if not 1 <= n_ccxs <= target_budget:
        raise ConfigurationError(
            f"{target!r} sweep point {n_ccxs} outside 1..{target_budget} "
            f"(the other services own the top {others_budget} CCXs)")
    target_replicas = [
        ReplicaPlacement(machine.cpus_in_ccx(ccx),
                         home_node=machine.ccxs[ccx].node.index)
        for ccx in range(n_ccxs)
    ]
    others = sorted(set(counts) - {target})
    rest_online = _cpus_of_ccxs(machine,
                                range(total_ccxs - others_budget,
                                      total_ccxs))
    rest_counts = {service: counts[service] for service in others}
    rest_weights = {service: DEMAND_WEIGHTS[service] for service in others}
    rest = ccx_aware(machine, rest_counts, rest_weights,
                     online=rest_online)
    placements = {service: list(rest.replicas(service))
                  for service in others}
    placements[target] = target_replicas
    return Allocation(machine, placements)


def _cpus_of_ccxs(machine: Machine, ccx_indices: t.Iterable[int]):
    from repro.topology.cpuset import CpuSet
    mask = CpuSet()
    for ccx_index in ccx_indices:
        mask = mask | machine.cpus_in_ccx(ccx_index)
    return mask
