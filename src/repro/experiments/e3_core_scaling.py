"""E3 — Scale-up: throughput versus logical CPUs enabled.

Grows the online CPU set the way `chcpu`/`maxcpus=` would on the real
machine: distinct physical cores first (Linux enumerates first threads
0..63), then their SMT siblings.  The application's scale-up efficiency
falls with size — the headroom the paper's techniques then recover.
"""

from __future__ import annotations

import typing as t

from repro.analysis.usl import fit_usl
from repro._errors import ConfigurationError
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.orchestrator import plan
from repro.topology.cpuset import CpuSet

TITLE = "Throughput vs logical CPUs enabled (tuned baseline)"

#: Default sweep on the 128-lcpu machine.
DEFAULT_CPU_COUNTS = (16, 32, 64, 96, 128)


def run(settings: ExperimentSettings | None = None,
        cpu_counts: t.Sequence[int] | None = None) -> ExperimentResult:
    """One row per online-CPU count, plus a USL fit over the sweep."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, cpu_counts)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 cpu_counts: t.Sequence[int] | None = None
                 ) -> list[plan.SweepPoint]:
    """One independent point per online-CPU count (load pre-scaled)."""
    machine = settings.machine()
    if cpu_counts is None:
        if machine.n_logical_cpus >= 128:
            cpu_counts = DEFAULT_CPU_COUNTS
        else:
            quarter = machine.n_logical_cpus // 4
            cpu_counts = tuple(quarter * i for i in range(1, 5))
    for count in cpu_counts:
        if not 1 <= count <= machine.n_logical_cpus:
            raise ConfigurationError(
                f"cpu count {count} outside 1..{machine.n_logical_cpus}")
    points = []
    for index, count in enumerate(cpu_counts):
        # Scale offered load with machine size so every point saturates.
        users = max(64, int(settings.users * count
                            / machine.n_logical_cpus))
        points.append(plan.SweepPoint(
            "e3", index, "cores", f"cpus={count}", settings,
            params=(("cpus", int(count)), ("users", users))))
    return points


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one online-CPU count."""
    count = point.param("cpus")
    users = point.param("users")
    online = CpuSet.range(0, count)
    result, __, __ = run_store(point.settings, online=online, users=users)
    return {
        "logical_cpus": count,
        "users": users,
        "throughput_rps": result.throughput,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Derive speedup/efficiency columns and the USL fit in order."""
    rows: list[Row] = [dict(payload) for payload in payloads]
    base = rows[0]
    for row in rows:
        row["speedup"] = (t.cast(float, row["throughput_rps"])
                          / t.cast(float, base["throughput_rps"]))
        row["efficiency"] = (t.cast(float, row["speedup"])
                             / (t.cast(int, row["logical_cpus"])
                                / t.cast(int, base["logical_cpus"])))
    notes = []
    if len(rows) >= 3:
        fit = fit_usl([t.cast(int, r["logical_cpus"]) for r in rows],
                      [t.cast(float, r["throughput_rps"]) for r in rows])
        notes.append(f"USL fit: {fit}")
    return ExperimentResult("E3", TITLE, rows, notes=notes)


plan.register_sweep("e3", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
