"""E8 — The headline result.

The paper: exploiting per-service scaling properties and processor
topology yields **+22% throughput and −18% latency** over a
performance-tuned baseline.  The reproduction applies the same recipe:

1. run the tuned baseline (good replica counts, generous thread pools,
   no pinning) and profile per-service CPU consumption;
2. derive CCX budgets from the measured weights;
3. deploy the scaling-aware, CCX-pinned configuration
   (:func:`~repro.placement.policies.ccx_aware_auto`: one replica per L3
   domain, database kept singular) and measure again;
4. optionally let the greedy optimizer refine the budgets.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
import typing as t

from repro.orchestrator import plan
from repro.placement.allocation import Allocation
from repro.placement.optimizer import optimize_ccx_budget
from repro.placement.policies import ccx_aware_auto, unpinned
from repro.placement.scaling import weights_from_utilization
from repro.workload.runner import RunResult

TITLE = "Optimized (topology + scaling aware) vs performance-tuned baseline"


@dataclasses.dataclass(frozen=True)
class HeadlineOutcome:
    """The numbers EXPERIMENTS.md compares against the paper."""

    baseline: RunResult
    optimized: RunResult
    allocation: Allocation

    @property
    def throughput_uplift(self) -> float:
        """Fractional throughput gain (paper: 0.22)."""
        return self.optimized.throughput / self.baseline.throughput - 1.0

    @property
    def mean_latency_reduction(self) -> float:
        """Fractional mean-latency reduction (paper: 0.18)."""
        return 1.0 - self.optimized.latency_mean / self.baseline.latency_mean

    @property
    def p99_latency_reduction(self) -> float:
        """Fractional p99 reduction."""
        return 1.0 - self.optimized.latency_p99 / self.baseline.latency_p99


def measure(settings: ExperimentSettings | None = None,
            optimize: bool = False,
            optimizer_iterations: int = 3) -> HeadlineOutcome:
    """Run the full recipe and return both measurements."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    counts = default_counts(settings)

    baseline_result, __, __ = run_store(
        settings, machine=machine,
        allocation=unpinned(machine, counts))
    weights = weights_from_utilization(baseline_result.service_utilization)
    allocation = ccx_aware_auto(machine, weights, fixed_counts={"db": 1})

    if optimize:
        short = dataclasses.replace(
            settings,
            warmup=max(0.5, settings.warmup / 2),
            duration=max(1.0, settings.duration / 2))

        def evaluate(candidate: Allocation) -> float:
            result, __, __ = run_store(short, machine=machine,
                                       allocation=candidate)
            return result.throughput

        # The optimizer explores weight shifts while keeping the replica
        # counts the auto policy derived.
        allocation, __ = optimize_ccx_budget(
            machine, allocation.replica_counts(), weights, evaluate,
            iterations=optimizer_iterations)

    optimized_result, __, __ = run_store(settings, machine=machine,
                                         allocation=allocation)
    return HeadlineOutcome(baseline_result, optimized_result, allocation)


def run(settings: ExperimentSettings | None = None,
        optimize: bool = False) -> ExperimentResult:
    """Two rows (baseline, optimized) plus the uplift note."""
    outcome = measure(settings, optimize=optimize)
    rows: list[Row] = []
    for name, result in (("tuned baseline", outcome.baseline),
                         ("optimized", outcome.optimized)):
        rows.append({
            "config": name,
            "throughput_rps": result.throughput,
            "latency_mean_ms": result.latency_mean * 1e3,
            "latency_p99_ms": result.latency_p99 * 1e3,
            "machine_util": result.machine_utilization,
        })
    notes = [
        f"throughput uplift: {100 * outcome.throughput_uplift:+.1f}% "
        f"(paper: +22%)",
        f"mean latency change: "
        f"{-100 * outcome.mean_latency_reduction:+.1f}% (paper: -18%)",
        f"p99 latency change: "
        f"{-100 * outcome.p99_latency_reduction:+.1f}%",
        f"optimized replica counts: "
        f"{outcome.allocation.replica_counts()}",
    ]
    return ExperimentResult("E8", TITLE, rows, notes=notes)


def sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """Two points: the tuned baseline and the optimized deployment.

    The optimized point re-measures the baseline in its own process to
    derive the CPU weights the auto policy budgets with; determinism
    makes that re-measurement identical to the baseline point's run, so
    the points stay independent.
    """
    return [
        plan.SweepPoint("e8", 0, "baseline", "tuned-baseline", settings),
        plan.SweepPoint("e8", 1, "optimized", "optimized", settings),
    ]


def _measurement(config: str, result: RunResult) -> plan.Payload:
    return {
        "row": {
            "config": config,
            "throughput_rps": result.throughput,
            "latency_mean_ms": result.latency_mean * 1e3,
            "latency_p99_ms": result.latency_p99 * 1e3,
            "machine_util": result.machine_utilization,
        },
        "throughput": result.throughput,
        "latency_mean": result.latency_mean,
        "latency_p99": result.latency_p99,
    }


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one side of the headline comparison."""
    settings = point.settings
    machine = settings.machine()
    counts = default_counts(settings)
    baseline_result, __, __ = run_store(
        settings, machine=machine,
        allocation=unpinned(machine, counts))
    if point.kind == "baseline":
        return _measurement("tuned baseline", baseline_result)
    weights = weights_from_utilization(baseline_result.service_utilization)
    allocation = ccx_aware_auto(machine, weights, fixed_counts={"db": 1})
    optimized_result, __, __ = run_store(settings, machine=machine,
                                         allocation=allocation)
    payload = _measurement("optimized", optimized_result)
    payload["replica_counts"] = allocation.replica_counts()
    return payload


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Rebuild the two-row table and the uplift notes."""
    baseline, optimized = payloads
    rows = [dict(baseline["row"]), dict(optimized["row"])]
    uplift = (t.cast(float, optimized["throughput"])
              / t.cast(float, baseline["throughput"]) - 1.0)
    mean_reduction = 1.0 - (t.cast(float, optimized["latency_mean"])
                            / t.cast(float, baseline["latency_mean"]))
    p99_reduction = 1.0 - (t.cast(float, optimized["latency_p99"])
                           / t.cast(float, baseline["latency_p99"]))
    notes = [
        f"throughput uplift: {100 * uplift:+.1f}% "
        f"(paper: +22%)",
        f"mean latency change: "
        f"{-100 * mean_reduction:+.1f}% (paper: -18%)",
        f"p99 latency change: "
        f"{-100 * p99_reduction:+.1f}%",
        f"optimized replica counts: "
        f"{optimized['replica_counts']}",
    ]
    return ExperimentResult("E8", TITLE, rows, notes=notes)


plan.register_sweep("e8", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
