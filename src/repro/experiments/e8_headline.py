"""E8 — The headline result.

The paper: exploiting per-service scaling properties and processor
topology yields **+22% throughput and −18% latency** over a
performance-tuned baseline.  The reproduction applies the same recipe:

1. run the tuned baseline (good replica counts, generous thread pools,
   no pinning) and profile per-service CPU consumption;
2. derive CCX budgets from the measured weights;
3. deploy the scaling-aware, CCX-pinned configuration
   (:func:`~repro.placement.policies.ccx_aware_auto`: one replica per L3
   domain, database kept singular) and measure again;
4. optionally let the greedy optimizer refine the budgets.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
from repro.placement.allocation import Allocation
from repro.placement.optimizer import optimize_ccx_budget
from repro.placement.policies import ccx_aware_auto, unpinned
from repro.placement.scaling import weights_from_utilization
from repro.workload.runner import RunResult

TITLE = "Optimized (topology + scaling aware) vs performance-tuned baseline"


@dataclasses.dataclass(frozen=True)
class HeadlineOutcome:
    """The numbers EXPERIMENTS.md compares against the paper."""

    baseline: RunResult
    optimized: RunResult
    allocation: Allocation

    @property
    def throughput_uplift(self) -> float:
        """Fractional throughput gain (paper: 0.22)."""
        return self.optimized.throughput / self.baseline.throughput - 1.0

    @property
    def mean_latency_reduction(self) -> float:
        """Fractional mean-latency reduction (paper: 0.18)."""
        return 1.0 - self.optimized.latency_mean / self.baseline.latency_mean

    @property
    def p99_latency_reduction(self) -> float:
        """Fractional p99 reduction."""
        return 1.0 - self.optimized.latency_p99 / self.baseline.latency_p99


def measure(settings: ExperimentSettings | None = None,
            optimize: bool = False,
            optimizer_iterations: int = 3) -> HeadlineOutcome:
    """Run the full recipe and return both measurements."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    counts = default_counts(settings)

    baseline_result, __, __ = run_store(
        settings, machine=machine,
        allocation=unpinned(machine, counts))
    weights = weights_from_utilization(baseline_result.service_utilization)
    allocation = ccx_aware_auto(machine, weights, fixed_counts={"db": 1})

    if optimize:
        short = dataclasses.replace(
            settings,
            warmup=max(0.5, settings.warmup / 2),
            duration=max(1.0, settings.duration / 2))

        def evaluate(candidate: Allocation) -> float:
            result, __, __ = run_store(short, machine=machine,
                                       allocation=candidate)
            return result.throughput

        # The optimizer explores weight shifts while keeping the replica
        # counts the auto policy derived.
        allocation, __ = optimize_ccx_budget(
            machine, allocation.replica_counts(), weights, evaluate,
            iterations=optimizer_iterations)

    optimized_result, __, __ = run_store(settings, machine=machine,
                                         allocation=allocation)
    return HeadlineOutcome(baseline_result, optimized_result, allocation)


def run(settings: ExperimentSettings | None = None,
        optimize: bool = False) -> ExperimentResult:
    """Two rows (baseline, optimized) plus the uplift note."""
    outcome = measure(settings, optimize=optimize)
    rows: list[Row] = []
    for name, result in (("tuned baseline", outcome.baseline),
                         ("optimized", outcome.optimized)):
        rows.append({
            "config": name,
            "throughput_rps": result.throughput,
            "latency_mean_ms": result.latency_mean * 1e3,
            "latency_p99_ms": result.latency_p99 * 1e3,
            "machine_util": result.machine_utilization,
        })
    notes = [
        f"throughput uplift: {100 * outcome.throughput_uplift:+.1f}% "
        f"(paper: +22%)",
        f"mean latency change: "
        f"{-100 * outcome.mean_latency_reduction:+.1f}% (paper: -18%)",
        f"p99 latency change: "
        f"{-100 * outcome.p99_latency_reduction:+.1f}%",
        f"optimized replica counts: "
        f"{outcome.allocation.replica_counts()}",
    ]
    return ExperimentResult("E8", TITLE, rows, notes=notes)
