"""E5 — Per-service CPU utilization breakdown.

Profiles the tuned baseline under saturating browse load and reports how
CPU time divides across services — the paper's motivation for per-service
treatment: WebUI dominates, the database and ImageProvider matter, Auth
and Recommender are light.
"""

from __future__ import annotations

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    percent,
    run_store,
)

TITLE = "Per-service CPU utilization breakdown (tuned baseline)"


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """One row per service, ordered by CPU share."""
    settings = settings or ExperimentSettings()
    result, __, __ = run_store(settings)
    rows: list[Row] = []
    for service, share in sorted(result.service_share.items(),
                                 key=lambda kv: kv[1], reverse=True):
        rows.append({
            "service": service,
            "cpu_share_pct": percent(share),
            "cpu_seconds_per_s": result.service_utilization[service],
        })
    heaviest = rows[0]["service"]
    lightest = rows[-1]["service"]
    return ExperimentResult(
        "E5", TITLE, rows,
        notes=[
            f"system throughput {result.throughput:.0f} req/s at "
            f"{percent(result.machine_utilization):.0f}% machine "
            f"utilization",
            f"{heaviest} is the heaviest consumer; {lightest} the "
            f"lightest — services must be sized individually",
        ])
