"""E5 — Per-service CPU utilization breakdown.

Profiles the tuned baseline under saturating browse load and reports how
CPU time divides across services — the paper's motivation for per-service
treatment: WebUI dominates, the database and ImageProvider matter, Auth
and Recommender are light.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    percent,
    run_store,
)
from repro.orchestrator import plan

TITLE = "Per-service CPU utilization breakdown (tuned baseline)"


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """One row per service, ordered by CPU share."""
    settings = settings or ExperimentSettings()
    return assemble_sweep(settings, [run_sweep_point(point)
                                     for point in sweep_points(settings)])


def sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """One point: the breakdown comes from a single profiled run."""
    return [plan.SweepPoint("e5", 0, "profile", "tuned-baseline", settings)]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Profile the tuned baseline; rows travel pre-sorted by share."""
    result, __, __ = run_store(point.settings)
    rows: list[Row] = []
    for service, share in sorted(result.service_share.items(),
                                 key=lambda kv: kv[1], reverse=True):
        rows.append({
            "service": service,
            "cpu_share_pct": percent(share),
            "cpu_seconds_per_s": result.service_utilization[service],
        })
    return {"rows": rows,
            "throughput": result.throughput,
            "machine_utilization": result.machine_utilization}


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Reattach the summary notes to the sorted rows."""
    [payload] = payloads
    rows = [dict(row) for row in payload["rows"]]
    heaviest = rows[0]["service"]
    lightest = rows[-1]["service"]
    return ExperimentResult(
        "E5", TITLE, rows,
        notes=[
            f"system throughput {payload['throughput']:.0f} req/s at "
            f"{percent(t.cast(float, payload['machine_utilization'])):.0f}"
            f"% machine "
            f"utilization",
            f"{heaviest} is the heaviest consumer; {lightest} the "
            f"lightest — services must be sized individually",
        ])


plan.register_sweep("e5", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
