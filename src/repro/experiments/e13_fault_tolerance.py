"""E13 — Fault tolerance under degraded replicas (extension).

The paper's +22%/−18% headline assumes every replica is healthy.  Related
characterization work (DeathStarBench; the architectural-implications
studies) shows that what actually dominates production tail latency is
inter-service amplification when replicas die, stall, or slow down.  This
experiment opens that workload dimension: a matrix of fault scenarios ×
resilience configurations, each measured with the standard browse load.

Fault scenarios (one schedule each, times placed inside the measurement
window):

* **healthy** — no faults (reference);
* **crash** — one Persistence replica killed, restored later in the
  window;
* **slow** — one Persistence replica inflates its CPU demand 16× for
  most of the window (thermal throttle / noisy neighbor);
* **pause** — the only Recommender replica stalls completely for part of
  the window (GC pause / SIGSTOP).

Resilience configurations:

* **none** — the plain dispatch path (the pre-resilience simulator);
* **timeout** — per-call deadlines plus graceful degradation only;
* **full** — deadlines, budgeted retries with backoff+jitter, circuit
  breakers, and degradation.

Reported per cell: throughput, p99 latency, error rate, degraded-call
count, retry amplification, and breaker trips.  The table quantifies the
resilience claim directly: under the same fault schedule and seed,
``full`` must beat ``none`` on p99 whenever a fault is active.
"""

from __future__ import annotations

import typing as t

from repro.chaos.campaign import execute_cell
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
)
from repro.orchestrator import plan
from repro.services.resilience import ResilienceConfig, resilience_preset

TITLE = "Fault tolerance under degraded replicas"

#: Fault scenarios in table order.
SCENARIOS = ("healthy", "crash", "slow", "pause")

#: Resilience configurations in table order.
MODES = ("none", "timeout", "full")

#: Per-call deadline (seconds) used by the resilient modes — several
#: multiples of the healthy p99, so it only fires on genuinely stuck
#: calls.
CALL_TIMEOUT = 0.25


def resilience_config(mode: str) -> ResilienceConfig | None:
    """The :class:`ResilienceConfig` for one mode name (None = plain).

    Delegates to the canonical
    :func:`~repro.services.resilience.resilience_preset`, keeping this
    module's historical ``ValueError`` contract for unknown names.
    """
    if mode not in MODES:
        raise ValueError(f"unknown resilience mode {mode!r}; "
                         f"choose from {MODES}")
    return resilience_preset(mode, call_timeout=CALL_TIMEOUT)


def fault_schedule(scenario: str,
                   settings: ExperimentSettings
                   ) -> list[dict[str, t.Any]]:
    """The JSON-native fault schedule for one scenario.

    Fault times are placed relative to the measurement window (which
    starts after ``settings.warmup``), so the same scenario scales from
    ``--fast`` to paper-scale settings.
    """
    start = settings.warmup
    window = settings.duration
    if scenario == "healthy":
        return []
    if scenario == "crash":
        return [{"kind": "kill", "time": start + 0.10 * window,
                 "service": "persistence", "replica": 0,
                 "restore_after": 0.50 * window}]
    if scenario == "slow":
        return [{"kind": "slow", "time": start + 0.05 * window,
                 "service": "persistence", "replica": 0,
                 "factor": 16.0, "duration": 0.80 * window}]
    if scenario == "pause":
        return [{"kind": "pause", "time": start + 0.10 * window,
                 "service": "recommender", "replica": 0,
                 "duration": 0.45 * window}]
    raise ValueError(f"unknown fault scenario {scenario!r}; "
                     f"choose from {SCENARIOS}")


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """The full scenario × resilience matrix, sequentially."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """One independent point per (scenario, resilience mode) cell."""
    points = []
    index = 0
    for scenario in SCENARIOS:
        for mode in MODES:
            points.append(plan.SweepPoint(
                "e13", index, scenario, f"{scenario}/{mode}", settings,
                params=(("scenario", scenario), ("resilience", mode))))
            index += 1
    return points


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one (scenario, resilience) cell.

    A thin wrapper over the chaos campaign engine's
    :func:`~repro.chaos.campaign.execute_cell` — the same deployment /
    injector / workload sequence a campaign cell runs, untraced.
    """
    settings = point.settings
    scenario = point.param("scenario")
    mode = point.param("resilience")
    outcome = execute_cell(settings, fault_schedule(scenario, settings),
                           resilience_config(mode), trace=False)
    result = outcome.result
    stats = outcome.deployment.resilience_stats
    served = result.completed + result.errors
    return {
        "scenario": scenario,
        "resilience": mode,
        "throughput_rps": result.throughput,
        "p99_ms": result.latency_p99 * 1e3,
        "error_rate": (result.errors / served) if served else 0.0,
        "degraded": stats.degraded,
        "retry_amplification": stats.retry_amplification(),
        "timeouts": stats.timeouts,
        "breaker_opens": sum(b.opened_count
                             for b in outcome.deployment.breakers),
        "faults": len(outcome.injector.events),
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Fold the cells back into the matrix table plus p99 comparisons."""
    rows: list[Row] = []
    for payload in payloads:
        rows.append({
            "scenario": payload["scenario"],
            "resilience": payload["resilience"],
            "throughput_rps": payload["throughput_rps"],
            "p99_ms": payload["p99_ms"],
            "error_rate_pct": 100.0 * t.cast(float, payload["error_rate"]),
            "degraded": payload["degraded"],
            "retry_amp": payload["retry_amplification"],
            "breaker_opens": payload["breaker_opens"],
        })
    notes = []
    p99 = {(t.cast(str, p["scenario"]), t.cast(str, p["resilience"])):
           t.cast(float, p["p99_ms"]) for p in payloads}
    for scenario in SCENARIOS:
        if scenario == "healthy":
            continue
        base = p99[(scenario, "none")]
        full = p99[(scenario, "full")]
        if base > 0:
            notes.append(
                f"{scenario}: p99 {base:.1f} ms unprotected -> "
                f"{full:.1f} ms with full resilience "
                f"({100.0 * (base - full) / base:+.1f}% tail reduction)")
    amp = max(t.cast(float, p["retry_amplification"]) for p in payloads)
    notes.append(f"retry amplification peaked at {amp:.3f}x "
                 f"(budget caps it at 1.25x)")
    return ExperimentResult("E13", TITLE, rows, notes=notes)


plan.register_sweep("e13", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
