"""E14 — Cross-application scale-up characterization (extension).

Re-runs the E2-style load ladder on every bundled application
(:data:`repro.apps.APP_NAMES`) through the same tuned-baseline
``run_store`` path, then reports the knee, the peak, and the fitted USL
coefficients of each service graph side by side.  The paper
characterizes exactly one application; this experiment asks how much of
its scale-up story is TeaStore-specific: a deeper call graph (Online
Boutique's checkout chain) or a write-coupled storage tier (the social
network's post storage) moves the knee and the coherency coefficient
even under the identical machine, scheduler, and workload harness.

One sweep point per (application, population) pair, so ``repro sweep
e14`` parallelizes and caches across the full grid.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.analysis.usl import fit_usl
from repro.apps.registry import APP_NAMES
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.orchestrator import plan

TITLE = "Cross-application scale-up: knees & USL per service graph"

#: Load ladder for the paper-scale machine (matches E2's grid).
DEFAULT_USER_COUNTS = (125, 250, 500, 1000, 2000, 3000)

#: Load ladder for the small presets (four points keep the golden
#: suite fast; the USL fit needs at least three).
FAST_USER_COUNTS = (25, 50, 100, 200)


def run(settings: ExperimentSettings | None = None,
        apps: t.Sequence[str] | None = None,
        user_counts: t.Sequence[int] | None = None) -> ExperimentResult:
    """One summary row per application."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, apps, user_counts)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 apps: t.Sequence[str] | None = None,
                 user_counts: t.Sequence[int] | None = None
                 ) -> list[plan.SweepPoint]:
    """One independent point per (application, population) pair.

    When the caller pinned ``settings.app`` to a non-default
    application, only that application's ladder runs; otherwise the
    whole bundled family is characterized.
    """
    if apps is None:
        apps = ((settings.app,) if settings.app != "teastore"
                else APP_NAMES)
    if user_counts is None:
        user_counts = (DEFAULT_USER_COUNTS
                       if settings.preset.startswith("rome")
                       else FAST_USER_COUNTS)
    points = []
    index = 0
    for app in apps:
        for users in user_counts:
            points.append(plan.SweepPoint(
                "e14", index, "load", f"{app}/users={users}",
                settings, params=(("app", str(app)),
                                  ("users", int(users)))))
            index += 1
    return points


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one (application, population) cell."""
    app = t.cast(str, point.param("app"))
    users = t.cast(int, point.param("users"))
    settings = dataclasses.replace(point.settings, app=app)
    result, __, store = run_store(settings, users=users)
    return {
        "app": app,
        "users": users,
        "services": len(store.replica_counts()),
        "throughput_rps": result.throughput,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
    }


def _knee(user_levels: t.Sequence[int],
          throughputs: t.Sequence[float]) -> tuple[int, float]:
    """The saturation knee: first population within 95% of the peak."""
    peak = max(throughputs, default=0.0)
    for users, throughput in zip(user_levels, throughputs):
        if throughput > 0.95 * peak:
            return users, peak
    return user_levels[-1], peak


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Fold per-cell payloads into the side-by-side application table."""
    by_app: dict[str, list[plan.Payload]] = {}
    for payload in payloads:
        by_app.setdefault(t.cast(str, payload["app"]), []).append(payload)
    rows: list[Row] = []
    notes: list[str] = []
    knees: dict[str, int] = {}
    kappas: dict[str, float] = {}
    for app, cells in by_app.items():
        user_levels = [t.cast(int, c["users"]) for c in cells]
        throughputs = [t.cast(float, c["throughput_rps"]) for c in cells]
        knee_users, peak = _knee(user_levels, throughputs)
        fit = fit_usl([float(u) for u in user_levels], throughputs)
        n_star = fit.peak_concurrency()
        rows.append({
            "app": app,
            "services": cells[0]["services"],
            "points": len(cells),
            "peak_rps": peak,
            "knee_users": knee_users,
            "p99_at_knee_ms": next(
                t.cast(float, c["latency_p99_ms"]) for c in cells
                if c["users"] == knee_users),
            "usl_lambda": fit.lambda_,
            "usl_sigma": fit.sigma,
            "usl_kappa": fit.kappa,
            "usl_r2": fit.r_squared,
            "usl_peak_n": (-1.0 if math.isinf(n_star) else n_star),
        })
        knees[app] = knee_users
        kappas[app] = fit.kappa
        curve = ", ".join(f"{u}:{x:.0f}"
                          for u, x in zip(user_levels, throughputs))
        notes.append(f"{app}: load curve (users:rps) {curve}")
    if len(by_app) > 1:
        first = next(iter(knees))
        deltas = []
        for app in knees:
            if app == first:
                continue
            ratio = knees[app] / knees[first] if knees[first] else 0.0
            deltas.append(f"{app} knee at {ratio:.2f}x {first}'s")
        most_coherent = max(kappas, key=lambda a: kappas[a])
        notes.append(
            "topology sensitivity: " + "; ".join(deltas)
            + f"; highest coherency penalty (USL kappa): {most_coherent}")
    return ExperimentResult("E14", TITLE, rows, notes=notes)


plan.register_sweep("e14", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
