"""E4 — SMT sensitivity.

Compares the same 64 physical cores with SMT disabled (64 logical CPUs)
against SMT enabled (128), and sweeps the modelled SMT yield.  Server-side
Java workloads gain substantially from SMT — one reason the paper's
128-thread socket is a good host for microservices.
"""

from __future__ import annotations

import typing as t

from repro.cpu.smt import SmtModel
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.orchestrator import plan

TITLE = "SMT on/off and SMT-yield sensitivity"


def run(settings: ExperimentSettings | None = None,
        smt_yields: t.Sequence[float] = (1.3,)) -> ExperimentResult:
    """Rows: SMT-off, then SMT-on per modelled yield."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, smt_yields)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 smt_yields: t.Sequence[float] = (1.3,)
                 ) -> list[plan.SweepPoint]:
    """The SMT-off reference plus one point per modelled yield."""
    points = [plan.SweepPoint("e4", 0, "smt-off", "smt-off", settings)]
    points.extend(
        plan.SweepPoint("e4", index + 1, "smt-on",
                        f"smt-yield={smt_yield:.2f}", settings,
                        params=(("smt_yield", float(smt_yield)),))
        for index, smt_yield in enumerate(smt_yields))
    return points


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one SMT configuration."""
    settings = point.settings
    machine = settings.machine()
    if point.kind == "smt-off":
        first_threads = machine.first_threads()
        result, __, __ = run_store(settings, machine=machine,
                                   online=first_threads)
        lcpus = len(first_threads)
    else:
        result, __, __ = run_store(
            settings, machine=machine,
            smt_model=SmtModel(point.param("smt_yield")))
        lcpus = machine.n_logical_cpus
    payload: plan.Payload = {
        "lcpus": lcpus,
        "throughput_rps": result.throughput,
        "latency_p99_ms": result.latency_p99 * 1e3,
        "machine_util": result.machine_utilization,
    }
    if point.kind == "smt-on":
        payload["smt_yield"] = point.param("smt_yield")
    return payload


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Label the configurations and compute uplifts vs SMT-off."""
    off, *on = payloads
    rows: list[Row] = [{
        "config": f"SMT off ({off['lcpus']} lcpus)",
        "throughput_rps": off["throughput_rps"],
        "latency_p99_ms": off["latency_p99_ms"],
        "machine_util": off["machine_util"],
        "uplift_vs_smt_off": 1.0,
    }]
    for payload in on:
        smt_yield = payload["smt_yield"]
        rows.append({
            "config": f"SMT on, yield {smt_yield:.2f} "
                      f"({payload['lcpus']} lcpus)",
            "throughput_rps": payload["throughput_rps"],
            "latency_p99_ms": payload["latency_p99_ms"],
            "machine_util": payload["machine_util"],
            "uplift_vs_smt_off": (t.cast(float, payload["throughput_rps"])
                                  / t.cast(float, off["throughput_rps"])),
        })
    best = max(t.cast(float, row["uplift_vs_smt_off"]) for row in rows)
    return ExperimentResult(
        "E4", TITLE, rows,
        notes=[f"SMT provides up to {100 * (best - 1):.1f}% more "
               f"throughput from the same cores"])


plan.register_sweep("e4", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
