"""E4 — SMT sensitivity.

Compares the same 64 physical cores with SMT disabled (64 logical CPUs)
against SMT enabled (128), and sweeps the modelled SMT yield.  Server-side
Java workloads gain substantially from SMT — one reason the paper's
128-thread socket is a good host for microservices.
"""

from __future__ import annotations

import typing as t

from repro.cpu.smt import SmtModel
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)

TITLE = "SMT on/off and SMT-yield sensitivity"


def run(settings: ExperimentSettings | None = None,
        smt_yields: t.Sequence[float] = (1.3,)) -> ExperimentResult:
    """Rows: SMT-off, then SMT-on per modelled yield."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    first_threads = machine.first_threads()

    rows: list[Row] = []
    off_result, __, __ = run_store(settings, machine=machine,
                                   online=first_threads)
    rows.append({
        "config": f"SMT off ({len(first_threads)} lcpus)",
        "throughput_rps": off_result.throughput,
        "latency_p99_ms": off_result.latency_p99 * 1e3,
        "machine_util": off_result.machine_utilization,
        "uplift_vs_smt_off": 1.0,
    })
    for smt_yield in smt_yields:
        on_result, __, __ = run_store(
            settings, machine=machine,
            smt_model=SmtModel(smt_yield))
        rows.append({
            "config": f"SMT on, yield {smt_yield:.2f} "
                      f"({machine.n_logical_cpus} lcpus)",
            "throughput_rps": on_result.throughput,
            "latency_p99_ms": on_result.latency_p99 * 1e3,
            "machine_util": on_result.machine_utilization,
            "uplift_vs_smt_off": (on_result.throughput
                                  / off_result.throughput),
        })
    best = max(t.cast(float, row["uplift_vs_smt_off"]) for row in rows)
    return ExperimentResult(
        "E4", TITLE, rows,
        notes=[f"SMT provides up to {100 * (best - 1):.1f}% more "
               f"throughput from the same cores"])
