"""E11 — End-to-end latency decomposition (tracing extension).

Traces every request under saturating load and decomposes user-visible
page latency into per-service *exclusive* contributions (time each hop
added after subtracting waits on its own downstream calls).  This extends
the paper's CPU-time breakdown (E5) to latency: the two differ exactly
where queueing, not CPU consumption, dominates — under the write-heavy
buy profile the database's serialized section contributes more latency
than its CPU share suggests.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
)
from repro.orchestrator import plan
from repro.services.deployment import Deployment
from repro.teastore.store import build_teastore
from repro.tracing.collector import TraceCollector
from repro.workload.cohorts import closed_workload

TITLE = "Per-service latency decomposition (traced, buy profile)"

#: Endpoints decomposed by default.
DEFAULT_ENDPOINTS = ("product", "category", "checkout")


def run(settings: ExperimentSettings | None = None,
        endpoints: t.Sequence[str] = DEFAULT_ENDPOINTS) -> ExperimentResult:
    """One row per (endpoint, service) with exclusive-latency shares."""
    settings = settings or ExperimentSettings()
    points = sweep_points(settings, endpoints)
    return assemble_sweep(settings,
                          [run_sweep_point(point) for point in points])


def sweep_points(settings: ExperimentSettings,
                 endpoints: t.Sequence[str] = DEFAULT_ENDPOINTS
                 ) -> list[plan.SweepPoint]:
    """One point: all endpoints decompose from a single traced run."""
    return [plan.SweepPoint(
        "e11", 0, "trace", "buy-profile", settings,
        params=(("endpoints", tuple(endpoints)),))]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Trace one buy-profile run and decompose every endpoint."""
    settings = point.settings
    machine = settings.machine()
    deployment = Deployment(machine, seed=settings.seed,
                            memory_config=settings.memory_config)
    store = build_teastore(deployment, settings.store_config())
    # The buy profile exercises the checkout path the browse profile
    # lacks.  Moderate load (quarter of the saturating population): the
    # decomposition should expose the *structure* of page latency, not
    # the depth of saturation queues.
    workload = closed_workload(
        deployment, store.buy_session_factory(),
        n_users=max(64, settings.users // 4),
        think_time=settings.think_time,
        cohort_factor=settings.cohort_factor)
    workload.start()
    deployment.run(until=deployment.sim.now + settings.warmup)
    tracer = TraceCollector()
    deployment.tracer = tracer  # trace the measurement window only
    deployment.run(until=deployment.sim.now + settings.duration)

    rows: list[Row] = []
    for endpoint in point.param("endpoints"):
        breakdown = tracer.breakdown(endpoint)
        total = sum(breakdown.values())
        for service, value in sorted(breakdown.items(),
                                     key=lambda kv: -kv[1]):
            rows.append({
                "endpoint": endpoint,
                "service": service,
                "exclusive_ms": value * 1e3,
                "share_pct": 100.0 * value / total if total > 0 else 0.0,
            })
    return {"rows": rows,
            "spans": len(tracer),
            "roots": len(tracer.roots),
            "mean_latency": tracer.mean_root_latency()}


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Reattach the tracing summary notes."""
    [payload] = payloads
    rows = [dict(row) for row in payload["rows"]]
    return ExperimentResult(
        "E11", TITLE, rows,
        notes=[
            f"{payload['spans']} spans over {payload['roots']} "
            f"user requests "
            f"(buy profile), mean page latency "
            f"{t.cast(float, payload['mean_latency']) * 1e3:.1f} ms",
            "exclusive time = hop latency minus waits on its own "
            "downstream calls",
        ])


plan.register_sweep("e11", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
