"""E11 — End-to-end latency decomposition (tracing extension).

Traces every request under saturating load and decomposes user-visible
page latency into per-service *exclusive* contributions (time each hop
added after subtracting waits on its own downstream calls).  This extends
the paper's CPU-time breakdown (E5) to latency: the two differ exactly
where queueing, not CPU consumption, dominates — under the write-heavy
buy profile the database's serialized section contributes more latency
than its CPU share suggests.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
)
from repro.services.deployment import Deployment
from repro.teastore.store import build_teastore
from repro.tracing.collector import TraceCollector
from repro.workload.closed import ClosedLoopWorkload

TITLE = "Per-service latency decomposition (traced, buy profile)"

#: Endpoints decomposed by default.
DEFAULT_ENDPOINTS = ("product", "category", "checkout")


def run(settings: ExperimentSettings | None = None,
        endpoints: t.Sequence[str] = DEFAULT_ENDPOINTS) -> ExperimentResult:
    """One row per (endpoint, service) with exclusive-latency shares."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    deployment = Deployment(machine, seed=settings.seed,
                            memory_config=settings.memory_config)
    store = build_teastore(deployment, settings.store_config())
    # The buy profile exercises the checkout path the browse profile
    # lacks.  Moderate load (quarter of the saturating population): the
    # decomposition should expose the *structure* of page latency, not
    # the depth of saturation queues.
    workload = ClosedLoopWorkload(
        deployment, store.buy_session_factory(),
        n_users=max(64, settings.users // 4),
        think_time=settings.think_time)
    workload.start()
    deployment.run(until=deployment.sim.now + settings.warmup)
    tracer = TraceCollector()
    deployment.tracer = tracer  # trace the measurement window only
    deployment.run(until=deployment.sim.now + settings.duration)

    rows: list[Row] = []
    for endpoint in endpoints:
        breakdown = tracer.breakdown(endpoint)
        total = sum(breakdown.values())
        for service, value in sorted(breakdown.items(),
                                     key=lambda kv: -kv[1]):
            rows.append({
                "endpoint": endpoint,
                "service": service,
                "exclusive_ms": value * 1e3,
                "share_pct": 100.0 * value / total if total > 0 else 0.0,
            })
    mean_latency = tracer.mean_root_latency()
    return ExperimentResult(
        "E11", TITLE, rows,
        notes=[
            f"{len(tracer)} spans over {len(tracer.roots)} user requests "
            f"(buy profile), mean page latency "
            f"{mean_latency * 1e3:.1f} ms",
            "exclusive time = hop latency minus waits on its own "
            "downstream calls",
        ])
