"""E10 — NUMA locality effects.

On a two-socket machine, compares: everything packed on socket 0 with
local memory; the same compute with memory homed on the *remote* socket
(the worst case unpinned deployments drift into); and node-spread with
local memory on both sockets.  Remote memory costs double-digit
throughput for the memory-hungry services — the reason placement must be
NUMA-aware before it is CCX-aware.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
from repro.orchestrator import plan
from repro.placement.allocation import Allocation, ReplicaPlacement
from repro.placement.policies import node_spread, socket_pack

TITLE = "NUMA locality: local vs remote memory placement"

#: Configurations in table order: (display name, allocation kind).
CONFIGS = (("socket0 + local memory", "local"),
           ("socket0 + remote memory", "remote"),
           ("node-spread + local", "spread"))


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Three rows: socket0+local, socket0+remote memory, node-spread."""
    settings = settings or ExperimentSettings(preset="rome-2s")
    return assemble_sweep(settings, [run_sweep_point(point)
                                     for point in sweep_points(settings)])


def sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """One independent point per memory-placement configuration."""
    machine = settings.machine()
    if len(machine.nodes) < 2:
        raise ValueError("E10 requires a machine with >= 2 NUMA nodes "
                         f"(got preset {settings.preset!r})")
    return [plan.SweepPoint("e10", index, kind, name, settings,
                            params=(("config", name), ("placement", kind)))
            for index, (name, kind) in enumerate(CONFIGS)]


def run_sweep_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one memory-placement configuration."""
    settings = point.settings
    machine = settings.machine()
    counts = default_counts(settings)
    remote_node = machine.nodes[-1].index
    placement = point.param("placement")
    local = socket_pack(machine, counts, socket=0)
    if placement == "local":
        allocation = local
    elif placement == "remote":
        allocation = Allocation(machine, {
            service: [ReplicaPlacement(replica.affinity,
                                       home_node=remote_node)
                      for replica in local.replicas(service)]
            for service in local.services
        })
    else:
        allocation = node_spread(machine, counts)
    # Load only what one socket can serve, identically in all configs, so
    # the comparison isolates memory locality.
    users = settings.users // 2
    result, __, __ = run_store(settings, machine=machine,
                               allocation=allocation, users=users)
    return {
        "config": point.param("config"),
        "throughput_rps": result.throughput,
        "latency_mean_ms": result.latency_mean * 1e3,
        "latency_p99_ms": result.latency_p99 * 1e3,
    }


def assemble_sweep(settings: ExperimentSettings,
                   payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Compute the remote-memory penalty across the ordered rows."""
    rows: list[Row] = [dict(payload) for payload in payloads]
    by_config = {t.cast(str, row["config"]): row for row in rows}
    penalty = (1.0 - t.cast(float, by_config["socket0 + remote memory"]
                            ["throughput_rps"])
               / t.cast(float, by_config["socket0 + local memory"]
                        ["throughput_rps"]))
    return ExperimentResult(
        "E10", TITLE, rows,
        notes=[f"remote memory costs {100 * penalty:.1f}% throughput on "
               f"identical compute"])


plan.register_sweep("e10", TITLE, points=sweep_points,
                    run_point=run_sweep_point, assemble=assemble_sweep)
