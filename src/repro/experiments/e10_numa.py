"""E10 — NUMA locality effects.

On a two-socket machine, compares: everything packed on socket 0 with
local memory; the same compute with memory homed on the *remote* socket
(the worst case unpinned deployments drift into); and node-spread with
local memory on both sockets.  Remote memory costs double-digit
throughput for the memory-hungry services — the reason placement must be
NUMA-aware before it is CCX-aware.
"""

from __future__ import annotations

import typing as t

from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    default_counts,
    run_store,
)
from repro.placement.allocation import Allocation, ReplicaPlacement
from repro.placement.policies import node_spread, socket_pack

TITLE = "NUMA locality: local vs remote memory placement"


def run(settings: ExperimentSettings | None = None) -> ExperimentResult:
    """Three rows: socket0+local, socket0+remote memory, node-spread."""
    settings = settings or ExperimentSettings(preset="rome-2s")
    machine = settings.machine()
    if len(machine.nodes) < 2:
        raise ValueError("E10 requires a machine with >= 2 NUMA nodes "
                         f"(got preset {settings.preset!r})")
    counts = default_counts(settings)
    remote_node = machine.nodes[-1].index

    local = socket_pack(machine, counts, socket=0)
    remote = Allocation(machine, {
        service: [ReplicaPlacement(replica.affinity, home_node=remote_node)
                  for replica in local.replicas(service)]
        for service in local.services
    })
    spread = node_spread(machine, counts)

    rows: list[Row] = []
    results = {}
    # Load only what one socket can serve, identically in all configs, so
    # the comparison isolates memory locality.
    users = settings.users // 2
    for name, allocation in (("socket0 + local memory", local),
                             ("socket0 + remote memory", remote),
                             ("node-spread + local", spread)):
        result, __, __ = run_store(settings, machine=machine,
                                   allocation=allocation, users=users)
        results[name] = result
        rows.append({
            "config": name,
            "throughput_rps": result.throughput,
            "latency_mean_ms": result.latency_mean * 1e3,
            "latency_p99_ms": result.latency_p99 * 1e3,
        })
    penalty = (1.0 - results["socket0 + remote memory"].throughput
               / results["socket0 + local memory"].throughput)
    return ExperimentResult(
        "E10", TITLE, rows,
        notes=[f"remote memory costs {100 * penalty:.1f}% throughput on "
               f"identical compute"])
