"""Shared experiment plumbing: settings, system assembly, tables."""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.apps.runtime import Application, deploy_application
from repro.apps.spec import ApplicationSpec
from repro.memory.config import MemoryConfig
from repro.placement.allocation import Allocation
from repro.services.deployment import Deployment
from repro.teastore.config import TeaStoreConfig
from repro.teastore.store import TeaStore, build_teastore
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine
from repro.topology.presets import machine_from_preset
from repro.workload.cohorts import closed_workload
from repro.workload.runner import RunResult, run_experiment

#: One output row of an experiment table.
Row = dict[str, object]


@dataclasses.dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    ``full()`` reproduces the paper's platform scale; ``fast()`` shrinks
    everything so integration tests finish in seconds.
    """

    preset: str = "rome-1s"
    seed: int = 1
    users: int = 2000
    think_time: float = 0.125
    warmup: float = 1.5
    duration: float = 3.0
    #: Users collapsed per weighted cohort (1 = uncompressed; see
    #: :mod:`repro.workload.cohorts`).
    cohort_factor: int = 1
    #: Deployment shards the population is partitioned across (1 = the
    #: classic single-deployment run; see :mod:`repro.scale`).
    shards: int = 1
    #: The application under test (a :mod:`repro.apps` registry name).
    app: str = "teastore"
    memory_config: MemoryConfig = dataclasses.field(
        default_factory=MemoryConfig)

    @classmethod
    def full(cls, **overrides) -> "ExperimentSettings":
        """Paper-scale settings (the defaults)."""
        return cls(**overrides)

    @classmethod
    def fast(cls, **overrides) -> "ExperimentSettings":
        """Small-machine settings for quick runs and tests."""
        values: dict[str, t.Any] = dict(
            preset="medium", users=400, warmup=0.8, duration=1.5)
        values.update(overrides)
        return cls(**values)

    def to_dict(self) -> dict[str, t.Any]:
        """Canonical JSON-native form (nested ``memory_config`` dict).

        This — not ``hash()``, which is salted per process for the str
        fields — is what the sweep cache keys on; two equal settings
        always serialize identically.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: t.Mapping[str, t.Any]) -> "ExperimentSettings":
        """Inverse of :meth:`to_dict`."""
        values = dict(data)
        memory = values.pop("memory_config", None)
        if memory is not None:
            values["memory_config"] = MemoryConfig(**memory)
        return cls(**values)

    def machine(self) -> Machine:
        """The machine this experiment runs on."""
        return machine_from_preset(self.preset)

    def store_config(self, **overrides) -> TeaStoreConfig:
        """A TeaStore configuration sized for this machine."""
        if self.preset in ("medium", "small", "tiny"):
            values: dict[str, t.Any] = dict(
                replicas={"webui": 2, "auth": 1, "persistence": 2,
                          "image": 1, "recommender": 1, "db": 1},
                workers={"webui": 96, "auth": 16, "persistence": 32,
                         "image": 32, "recommender": 16, "db": 32},
            )
        else:
            values = {}
        values.update(overrides)
        return TeaStoreConfig(**values)

    def application(self) -> ApplicationSpec:
        """The active application's spec, sized for this machine.

        TeaStore flows through :meth:`store_config`, so its calibration
        knobs keep working; the other bundled applications carry their
        fast-preset sizing in the spec itself.
        """
        if self.app == "teastore":
            from repro.apps.teastore_app import teastore_app
            return teastore_app(self.store_config())
        from repro.apps.registry import get_app
        return get_app(self.app,
                       fast=self.preset in ("medium", "small", "tiny"))


@dataclasses.dataclass
class ExperimentResult:
    """Rows plus free-form notes, renderable as an aligned text table."""

    experiment: str
    title: str
    rows: list[Row]
    notes: list[str] = dataclasses.field(default_factory=list)

    def table(self) -> str:
        """The rows as an aligned text table."""
        return format_table(self.rows)

    def render(self) -> str:
        """Header, table, and notes — what the CLI prints."""
        parts = [f"[{self.experiment}] {self.title}", self.table()]
        parts.extend(f"  note: {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, name: str) -> list[t.Any]:
        """One column across all rows."""
        return [row[name] for row in self.rows]

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table with notes, for reports."""
        if not self.rows:
            return f"### {self.experiment} — {self.title}\n\n(no rows)\n"
        columns = list(self.rows[0].keys())

        def cell(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        lines = [f"### {self.experiment} — {self.title}", ""]
        lines.append("| " + " | ".join(columns) + " |")
        lines.append("|" + "|".join("---" for __ in columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(cell(row.get(column, ""))
                                           for column in columns) + " |")
        if self.notes:
            lines.append("")
            lines.extend(f"* {note}" for note in self.notes)
        return "\n".join(lines) + "\n"


def format_table(rows: t.Sequence[Row]) -> str:
    """Render dict rows as an aligned text table (3-decimal floats)."""
    if not rows:
        return "(no rows)"
    columns = list(rows[0].keys())

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered = [[cell(row.get(column, "")) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(r[i]) for r in rendered))
              for i, column in enumerate(columns)]
    header = "  ".join(column.ljust(width)
                       for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.rjust(width)
                  for value, width in zip(row, widths))
        for row in rendered
    ]
    return "\n".join([header, separator, *body])


def run_store(settings: ExperimentSettings,
              machine: Machine | None = None,
              online: CpuSet | None = None,
              allocation: Allocation | None = None,
              store_config: TeaStoreConfig | None = None,
              counter_sink: t.Any | None = None,
              users: int | None = None,
              seed: int | None = None,
              smt_model: t.Any | None = None,
              frequency_model: t.Any | None = None,
              ) -> tuple[RunResult, Deployment, Application]:
    """Deploy the active application and measure one default-load run.

    TeaStore deploys per ``allocation``/``store_config`` under the
    browse profile; other applications (``settings.app``) deploy their
    spec sizing under their default session profile — the
    allocation/store-config overrides are TeaStore-specific and raise
    for them.

    With ``settings.shards > 1`` the run is partitioned across shard
    deployments by :func:`repro.scale.executor.run_sharded`; the merged
    result is returned together with shard 0's deployment and store
    (the shard the driver executes in-process).  Sharding covers the
    tuned-baseline path only — machine/placement overrides require
    ``shards == 1``.
    """
    if settings.app != "teastore" and (allocation is not None
                                       or store_config is not None):
        raise ConfigurationError(
            f"allocation/store_config overrides are TeaStore-specific; "
            f"application {settings.app!r} does not support them")
    if settings.shards > 1:
        if any(override is not None
               for override in (machine, online, allocation, store_config,
                                counter_sink, smt_model, frequency_model)):
            raise ConfigurationError(
                "sharded execution (settings.shards > 1) supports the "
                "tuned-baseline run_store path only; drop the "
                "machine/placement overrides or run with shards=1")
        from repro.scale.executor import run_sharded
        outcome = run_sharded(settings, users=users, seed=seed)
        return outcome.result, outcome.deployment, outcome.store
    machine = machine or settings.machine()
    deployment = Deployment(
        machine,
        online=online,
        seed=seed if seed is not None else settings.seed,
        memory_config=settings.memory_config,
        counter_sink=counter_sink,
        smt_model=smt_model,
        frequency_model=frequency_model)
    if settings.app == "teastore":
        config = store_config or settings.store_config()
        placement = (allocation.as_placement()
                     if allocation is not None else None)
        store: Application = build_teastore(deployment, config,
                                            placement=placement)
    else:
        store = deploy_application(deployment, settings.application())
    workload = closed_workload(
        deployment, store.session_factory(),
        n_users=users if users is not None else settings.users,
        think_time=settings.think_time,
        cohort_factor=settings.cohort_factor)
    result = run_experiment(deployment, workload,
                            warmup=settings.warmup,
                            duration=settings.duration)
    return result, deployment, store


def build_application(settings: ExperimentSettings,
                      deployment: Deployment) -> Application:
    """Deploy the active application, untuned, on ``deployment``."""
    if settings.app == "teastore":
        return build_teastore(deployment, settings.store_config())
    return deploy_application(deployment, settings.application())


def default_counts(settings: ExperimentSettings,
                   store_config: TeaStoreConfig | None = None
                   ) -> dict[str, int]:
    """The tuned-baseline replica counts for this settings profile.

    Snapshotted from the active application's services rather than the
    TeaStore service-name constant, so non-TeaStore graphs report their
    own services.
    """
    if store_config is not None:
        from repro.apps.teastore_app import teastore_app
        spec = teastore_app(store_config)
    else:
        spec = settings.application()
    return {service.name: service.replicas for service in spec.services}


def percent(value: float) -> float:
    """Fractions → percents, for table readability."""
    return value * 100.0


def require_positive(name: str, value: float) -> None:
    """Guard for experiment parameters."""
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive: {value}")
