"""A1/A2/A3 — Ablations of the design choices DESIGN.md calls out.

* **A1 — code sharing on a CCX.** The identical deployment with the
  memory model's text-page sharing between same-service replicas turned
  on (real systems) versus off — isolating the mechanism behind packing
  same-service replicas per CCX.
* **A2 — frequency boost model.** The tuned baseline with and without the
  active-core boost model, across online-CPU counts (few active cores of
  a big socket clock far above base).
* **A3 — SMT yield sensitivity.** Throughput as the modelled SMT yield
  varies, bounding how much of the story depends on that constant.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cpu.frequency import FlatFrequencyModel
from repro.cpu.smt import SmtModel
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.orchestrator import plan
from repro.topology.cpuset import CpuSet

A1_TITLE = "Code sharing between same-service replicas on/off"
A2_TITLE = "Frequency-boost model on/off"
A3_TITLE = "SMT-yield sensitivity"
A4_TITLE = "Memory-bandwidth contention model (optional extension)"


def run_code_sharing(settings: ExperimentSettings | None = None
                     ) -> ExperimentResult:
    """A1: text-page sharing between same-service replicas on/off.

    Runs the *identical* unpinned deployment twice, toggling only the
    memory model's code-sharing behaviour, so capacity and load balance
    are held equal and the measured gap is purely the shared-code
    mechanism the CCX-packing policy exploits.
    """
    settings = settings or ExperimentSettings()
    points = a1_sweep_points(settings)
    return a1_assemble(settings, [a1_run_point(point) for point in points])


def a1_sweep_points(settings: ExperimentSettings) -> list[plan.SweepPoint]:
    """Two points: sharing on (real) and off (ablated)."""
    return [plan.SweepPoint(
        "a1", index, "code-sharing", f"share_code={share}", settings,
        params=(("config", name), ("share_code", share)))
        for index, (name, share) in enumerate(
            (("code sharing on (real)", True),
             ("code sharing off (ablated)", False)))]


def a1_run_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one code-sharing setting."""
    settings = point.settings
    config = dataclasses.replace(settings.memory_config,
                                 share_code=point.param("share_code"))
    ablated = dataclasses.replace(settings, memory_config=config)
    result, __, __ = run_store(ablated, machine=settings.machine())
    return {
        "config": point.param("config"),
        "throughput_rps": result.throughput,
        "latency_p99_ms": result.latency_p99 * 1e3,
    }


def a1_assemble(settings: ExperimentSettings,
                payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """The two rows plus the sharing-gain note."""
    rows: list[Row] = [dict(payload) for payload in payloads]
    by_config = {t.cast(str, row["config"]): row for row in rows}
    gain = (t.cast(float,
                   by_config["code sharing on (real)"]["throughput_rps"])
            / t.cast(float, by_config["code sharing off (ablated)"]
                     ["throughput_rps"]) - 1.0)
    return ExperimentResult(
        "A1", A1_TITLE,
        rows,
        notes=[f"sharing text pages is worth {100 * gain:+.1f}% "
               f"throughput on the tuned baseline"])


def run_frequency_ablation(settings: ExperimentSettings | None = None,
                           cpu_counts: t.Sequence[int] | None = None
                           ) -> ExperimentResult:
    """A2: boost model on/off across partial-occupancy core counts."""
    settings = settings or ExperimentSettings()
    points = a2_sweep_points(settings, cpu_counts)
    return a2_assemble(settings, [a2_run_point(point) for point in points])


def a2_sweep_points(settings: ExperimentSettings,
                    cpu_counts: t.Sequence[int] | None = None
                    ) -> list[plan.SweepPoint]:
    """Two points (boost, flat) per online-CPU count."""
    machine = settings.machine()
    if cpu_counts is None:
        n = machine.n_logical_cpus
        cpu_counts = (n // 8, n // 2, n)
    points: list[plan.SweepPoint] = []
    for count in cpu_counts:
        users = max(64, int(settings.users * count / machine.n_logical_cpus))
        for model in ("boost", "flat"):
            points.append(plan.SweepPoint(
                "a2", len(points), "frequency",
                f"cpus={count},{model}", settings,
                params=(("cpus", int(count)), ("users", users),
                        ("model", model))))
    return points


def a2_run_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one (CPU count, frequency model) combination."""
    settings = point.settings
    online = CpuSet.range(0, point.param("cpus"))
    frequency_model = (FlatFrequencyModel()
                       if point.param("model") == "flat" else None)
    result, __, __ = run_store(settings, online=online,
                               users=point.param("users"),
                               frequency_model=frequency_model)
    return {"logical_cpus": point.param("cpus"),
            "model": point.param("model"),
            "throughput_rps": result.throughput}


def a2_assemble(settings: ExperimentSettings,
                payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Pair the boost/flat halves per CPU count, in point order."""
    by_count: dict[int, dict[str, float]] = {}
    for payload in payloads:
        count = t.cast(int, payload["logical_cpus"])
        by_count.setdefault(count, {})[
            t.cast(str, payload["model"])] = t.cast(
                float, payload["throughput_rps"])
    rows: list[Row] = []
    for count, pair in by_count.items():
        rows.append({
            "logical_cpus": count,
            "throughput_boost_rps": pair["boost"],
            "throughput_flat_rps": pair["flat"],
            "boost_gain_pct": 100.0 * (pair["boost"]
                                       / pair["flat"] - 1.0),
        })
    low = rows[0]
    return ExperimentResult(
        "A2", A2_TITLE, rows,
        notes=[f"boost matters most at partial occupancy "
               f"(+{t.cast(float, low['boost_gain_pct']):.1f}% at "
               f"{low['logical_cpus']} lcpus)"])


def run_bandwidth_ablation(settings: ExperimentSettings | None = None,
                           capacities: t.Sequence[float | None] = (
                               None, 48.0, 24.0, 12.0)
                           ) -> ExperimentResult:
    """A4: optional memory-bandwidth contention model.

    ``None`` disables the model (the default elsewhere); finite
    capacities in "concurrent fully-memory-bound bursts" tighten the
    machine.  Throughput degrades monotonically as channels shrink,
    hitting the memory-hungry services (ImageProvider, DB) hardest.
    """
    settings = settings or ExperimentSettings()
    points = a4_sweep_points(settings, capacities)
    return a4_assemble(settings, [a4_run_point(point) for point in points])


def a4_sweep_points(settings: ExperimentSettings,
                    capacities: t.Sequence[float | None] = (
                        None, 48.0, 24.0, 12.0)
                    ) -> list[plan.SweepPoint]:
    """One point per modelled bandwidth capacity (``None`` = off)."""
    return [plan.SweepPoint(
        "a4", index, "bandwidth", f"capacity={capacity}", settings,
        params=(("capacity", capacity),))
        for index, capacity in enumerate(capacities)]


def a4_run_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one bandwidth-capacity setting."""
    settings = point.settings
    capacity = point.param("capacity")
    config = dataclasses.replace(settings.memory_config,
                                 bandwidth_capacity=capacity)
    bounded = dataclasses.replace(settings, memory_config=config)
    result, __, __ = run_store(bounded, machine=settings.machine())
    return {"capacity": capacity,
            "throughput_rps": result.throughput,
            "latency_p99_ms": result.latency_p99 * 1e3}


def a4_assemble(settings: ExperimentSettings,
                payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Relative-throughput rows against the unbounded leading point."""
    base = t.cast(float, payloads[0]["throughput_rps"])
    rows: list[Row] = []
    for payload in payloads:
        capacity = payload["capacity"]
        rows.append({
            "bandwidth_capacity": ("unlimited" if capacity is None
                                   else capacity),
            "throughput_rps": payload["throughput_rps"],
            "latency_p99_ms": payload["latency_p99_ms"],
            "relative": t.cast(float, payload["throughput_rps"]) / base,
        })
    loss = 1.0 - t.cast(float, rows[-1]["relative"])
    return ExperimentResult(
        "A4", A4_TITLE,
        rows,
        notes=[f"tightest channel budget costs {100 * loss:.1f}% "
               f"throughput vs the unbounded model"])


def run_smt_yield_ablation(settings: ExperimentSettings | None = None,
                           smt_yields: t.Sequence[float] = (1.0, 1.15,
                                                            1.3, 1.45)
                           ) -> ExperimentResult:
    """A3: sensitivity of saturated throughput to the SMT-yield constant."""
    settings = settings or ExperimentSettings()
    points = a3_sweep_points(settings, smt_yields)
    return a3_assemble(settings, [a3_run_point(point) for point in points])


def a3_sweep_points(settings: ExperimentSettings,
                    smt_yields: t.Sequence[float] = (1.0, 1.15,
                                                     1.3, 1.45)
                    ) -> list[plan.SweepPoint]:
    """One point per modelled SMT yield."""
    return [plan.SweepPoint(
        "a3", index, "smt-yield", f"yield={smt_yield}", settings,
        params=(("smt_yield", float(smt_yield)),))
        for index, smt_yield in enumerate(smt_yields)]


def a3_run_point(point: plan.SweepPoint) -> plan.Payload:
    """Measure one SMT-yield constant."""
    settings = point.settings
    result, __, __ = run_store(settings, machine=settings.machine(),
                               smt_model=SmtModel(point.param("smt_yield")))
    return {"smt_yield": point.param("smt_yield"),
            "throughput_rps": result.throughput}


def a3_assemble(settings: ExperimentSettings,
                payloads: t.Sequence[plan.Payload]) -> ExperimentResult:
    """Relative-throughput rows against the leading yield point."""
    base = t.cast(float, payloads[0]["throughput_rps"])
    rows: list[Row] = [{
        "smt_yield": payload["smt_yield"],
        "throughput_rps": payload["throughput_rps"],
        "relative": t.cast(float, payload["throughput_rps"]) / base,
    } for payload in payloads]
    return ExperimentResult(
        "A3", A3_TITLE, rows,
        notes=["throughput responds sub-linearly to the SMT yield "
               "constant (not all work co-runs)"])


plan.register_sweep("a1", A1_TITLE, points=a1_sweep_points,
                    run_point=a1_run_point, assemble=a1_assemble)
plan.register_sweep("a2", A2_TITLE, points=a2_sweep_points,
                    run_point=a2_run_point, assemble=a2_assemble)
plan.register_sweep("a3", A3_TITLE, points=a3_sweep_points,
                    run_point=a3_run_point, assemble=a3_assemble)
plan.register_sweep("a4", A4_TITLE, points=a4_sweep_points,
                    run_point=a4_run_point, assemble=a4_assemble)
