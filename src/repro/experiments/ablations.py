"""A1/A2/A3 — Ablations of the design choices DESIGN.md calls out.

* **A1 — code sharing on a CCX.** The identical deployment with the
  memory model's text-page sharing between same-service replicas turned
  on (real systems) versus off — isolating the mechanism behind packing
  same-service replicas per CCX.
* **A2 — frequency boost model.** The tuned baseline with and without the
  active-core boost model, across online-CPU counts (few active cores of
  a big socket clock far above base).
* **A3 — SMT yield sensitivity.** Throughput as the modelled SMT yield
  varies, bounding how much of the story depends on that constant.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.cpu.frequency import FlatFrequencyModel
from repro.cpu.smt import SmtModel
from repro.experiments.common import (
    ExperimentResult,
    ExperimentSettings,
    Row,
    run_store,
)
from repro.topology.cpuset import CpuSet


def run_code_sharing(settings: ExperimentSettings | None = None
                     ) -> ExperimentResult:
    """A1: text-page sharing between same-service replicas on/off.

    Runs the *identical* unpinned deployment twice, toggling only the
    memory model's code-sharing behaviour, so capacity and load balance
    are held equal and the measured gap is purely the shared-code
    mechanism the CCX-packing policy exploits.
    """
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    rows: list[Row] = []
    results = {}
    for name, share in (("code sharing on (real)", True),
                        ("code sharing off (ablated)", False)):
        config = dataclasses.replace(settings.memory_config,
                                     share_code=share)
        ablated = dataclasses.replace(settings, memory_config=config)
        result, __, __ = run_store(ablated, machine=machine)
        results[name] = result
        rows.append({
            "config": name,
            "throughput_rps": result.throughput,
            "latency_p99_ms": result.latency_p99 * 1e3,
        })
    gain = (results["code sharing on (real)"].throughput
            / results["code sharing off (ablated)"].throughput - 1.0)
    return ExperimentResult(
        "A1", "Code sharing between same-service replicas on/off",
        rows,
        notes=[f"sharing text pages is worth {100 * gain:+.1f}% "
               f"throughput on the tuned baseline"])


def run_frequency_ablation(settings: ExperimentSettings | None = None,
                           cpu_counts: t.Sequence[int] | None = None
                           ) -> ExperimentResult:
    """A2: boost model on/off across partial-occupancy core counts."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    if cpu_counts is None:
        n = machine.n_logical_cpus
        cpu_counts = (n // 8, n // 2, n)
    rows: list[Row] = []
    for count in cpu_counts:
        online = CpuSet.range(0, count)
        users = max(64, int(settings.users * count / machine.n_logical_cpus))
        boosted, __, __ = run_store(settings, machine=machine,
                                    online=online, users=users)
        flat, __, __ = run_store(settings, machine=machine, online=online,
                                 users=users,
                                 frequency_model=FlatFrequencyModel())
        rows.append({
            "logical_cpus": count,
            "throughput_boost_rps": boosted.throughput,
            "throughput_flat_rps": flat.throughput,
            "boost_gain_pct": 100.0 * (boosted.throughput
                                       / flat.throughput - 1.0),
        })
    low = rows[0]
    return ExperimentResult(
        "A2", "Frequency-boost model on/off", rows,
        notes=[f"boost matters most at partial occupancy "
               f"(+{t.cast(float, low['boost_gain_pct']):.1f}% at "
               f"{low['logical_cpus']} lcpus)"])


def run_bandwidth_ablation(settings: ExperimentSettings | None = None,
                           capacities: t.Sequence[float | None] = (
                               None, 48.0, 24.0, 12.0)
                           ) -> ExperimentResult:
    """A4: optional memory-bandwidth contention model.

    ``None`` disables the model (the default elsewhere); finite
    capacities in "concurrent fully-memory-bound bursts" tighten the
    machine.  Throughput degrades monotonically as channels shrink,
    hitting the memory-hungry services (ImageProvider, DB) hardest.
    """
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    rows: list[Row] = []
    base = None
    for capacity in capacities:
        config = dataclasses.replace(settings.memory_config,
                                     bandwidth_capacity=capacity)
        bounded = dataclasses.replace(settings, memory_config=config)
        result, __, __ = run_store(bounded, machine=machine)
        if base is None:
            base = result.throughput
        rows.append({
            "bandwidth_capacity": ("unlimited" if capacity is None
                                   else capacity),
            "throughput_rps": result.throughput,
            "latency_p99_ms": result.latency_p99 * 1e3,
            "relative": result.throughput / base,
        })
    loss = 1.0 - t.cast(float, rows[-1]["relative"])
    return ExperimentResult(
        "A4", "Memory-bandwidth contention model (optional extension)",
        rows,
        notes=[f"tightest channel budget costs {100 * loss:.1f}% "
               f"throughput vs the unbounded model"])


def run_smt_yield_ablation(settings: ExperimentSettings | None = None,
                           smt_yields: t.Sequence[float] = (1.0, 1.15,
                                                            1.3, 1.45)
                           ) -> ExperimentResult:
    """A3: sensitivity of saturated throughput to the SMT-yield constant."""
    settings = settings or ExperimentSettings()
    machine = settings.machine()
    rows: list[Row] = []
    base = None
    for smt_yield in smt_yields:
        result, __, __ = run_store(settings, machine=machine,
                                   smt_model=SmtModel(smt_yield))
        if base is None:
            base = result.throughput
        rows.append({
            "smt_yield": smt_yield,
            "throughput_rps": result.throughput,
            "relative": result.throughput / base,
        })
    return ExperimentResult(
        "A3", "SMT-yield sensitivity", rows,
        notes=["throughput responds sub-linearly to the SMT yield "
               "constant (not all work co-runs)"])
