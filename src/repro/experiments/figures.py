"""Experiment → SVG figure mapping.

The paper's evaluation is figures, not only tables; this module turns an
:class:`~repro.experiments.common.ExperimentResult` into the matching
chart via :mod:`repro.viz`.  ``repro run all --figures DIR`` writes one
SVG per experiment that has a natural chart (E1's platform table and
E11's two-key breakdown render better as tables and are skipped).
"""

from __future__ import annotations

import pathlib
import typing as t

from repro.experiments.common import ExperimentResult
from repro.viz import bar_chart, grouped_bar_chart, line_chart


def figure_for(result: ExperimentResult) -> str | None:
    """The SVG for ``result``, or ``None`` if it has no natural chart."""
    builder = _BUILDERS.get(result.experiment)
    if builder is None:
        return None
    return builder(result)


def write_figures(results: t.Sequence[ExperimentResult],
                  directory: str | pathlib.Path) -> list[pathlib.Path]:
    """Write one SVG per chartable result; returns the paths written."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for result in results:
        svg = figure_for(result)
        if svg is None:
            continue
        path = directory / f"{result.experiment.lower()}.svg"
        path.write_text(svg)
        written.append(path)
    return written


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def _e2(result: ExperimentResult) -> str:
    return line_chart(
        {"throughput": [(r["users"], r["throughput_rps"])
                        for r in result.rows],
         "p99 latency (ms)": [(r["users"], r["latency_p99_ms"])
                              for r in result.rows]},
        title=result.title, x_label="concurrent users",
        y_label="req/s | ms")


def _e3(result: ExperimentResult) -> str:
    return line_chart(
        {"throughput": [(r["logical_cpus"], r["throughput_rps"])
                        for r in result.rows]},
        title=result.title, x_label="logical CPUs online",
        y_label="req/s")


def _e4(result: ExperimentResult) -> str:
    return bar_chart(
        [str(r["config"]) for r in result.rows],
        [t.cast(float, r["throughput_rps"]) for r in result.rows],
        title=result.title, y_label="req/s")


def _e5(result: ExperimentResult) -> str:
    return bar_chart(
        [str(r["service"]) for r in result.rows],
        [t.cast(float, r["cpu_share_pct"]) for r in result.rows],
        title=result.title, y_label="% of CPU time")


def _e6(result: ExperimentResult) -> str:
    series: dict[str, list[tuple[float, float]]] = {}
    for row in result.rows:
        series.setdefault(str(row["service"]), []).append(
            (t.cast(int, row["ccxs"]),
             t.cast(float, row["throughput_rps"])))
    return line_chart(series, title=result.title,
                      x_label="CCXs given to the service",
                      y_label="system req/s")


def _config_bars(result: ExperimentResult, value_key: str,
                 label_key: str, y_label: str) -> str:
    return bar_chart(
        [str(r[label_key]) for r in result.rows],
        [t.cast(float, r[value_key]) for r in result.rows],
        title=result.title, y_label=y_label)


def _e9(result: ExperimentResult) -> str:
    return grouped_bar_chart(
        [str(r["workload"]) for r in result.rows],
        {"IPC": [t.cast(float, r["ipc"]) for r in result.rows],
         "L1i MPKI / 20": [t.cast(float, r["l1i_mpki"]) / 20.0
                           for r in result.rows]},
        title=result.title, y_label="IPC | scaled MPKI")


_BUILDERS: dict[str, t.Callable[[ExperimentResult], str]] = {
    "E2": _e2,
    "E3": _e3,
    "E4": _e4,
    "E5": _e5,
    "E6": _e6,
    "E7": lambda r: _config_bars(r, "throughput_rps", "policy", "req/s"),
    "E8": lambda r: _config_bars(r, "throughput_rps", "config", "req/s"),
    "E9": _e9,
    "E10": lambda r: _config_bars(r, "throughput_rps", "config", "req/s"),
    "E12": lambda r: _config_bars(r, "store_rps", "config", "store req/s"),
    "A2": lambda r: _config_bars(r, "boost_gain_pct", "logical_cpus",
                                 "boost gain %"),
    "A3": lambda r: _config_bars(r, "throughput_rps", "smt_yield", "req/s"),
    "A4": lambda r: _config_bars(r, "throughput_rps",
                                 "bandwidth_capacity", "req/s"),
}
