"""Scalability analysis: USL and Amdahl fits, speedup utilities."""

from repro.analysis.usl import AmdahlFit, UslFit, fit_amdahl, fit_usl

__all__ = ["AmdahlFit", "UslFit", "fit_amdahl", "fit_usl"]
