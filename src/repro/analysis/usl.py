"""Universal Scalability Law and Amdahl fits.

The USL (Gunther) models throughput versus concurrency ``n`` as::

    X(n) = lambda * n / (1 + sigma * (n - 1) + kappa * n * (n - 1))

``sigma`` captures contention (serialization, queueing on a shared
resource — the database lock, here) and ``kappa`` coherency costs
(cross-agent communication).  Fitting measured scaling curves with the
USL is the standard way to summarize "how well does this service scale",
which is exactly the per-service question the paper's sizing step answers.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t
import warnings

import numpy as np
from scipy import optimize

from repro._errors import AnalysisError


@dataclasses.dataclass(frozen=True)
class UslFit:
    """Fitted USL parameters."""

    lambda_: float  # throughput of one unit (n=1 slope)
    sigma: float    # contention coefficient
    kappa: float    # coherency coefficient
    r_squared: float

    def predict(self, n: float) -> float:
        """Predicted throughput at concurrency ``n``."""
        if n <= 0:
            raise AnalysisError(f"concurrency must be positive: {n}")
        return (self.lambda_ * n
                / (1.0 + self.sigma * (n - 1.0)
                   + self.kappa * n * (n - 1.0)))

    def peak_concurrency(self) -> float:
        """Concurrency at which throughput peaks (inf if it never does)."""
        if self.kappa <= 0:
            return math.inf
        return math.sqrt((1.0 - self.sigma) / self.kappa)

    def __str__(self) -> str:
        return (f"USL(λ={self.lambda_:.4g}, σ={self.sigma:.4g}, "
                f"κ={self.kappa:.4g}, R²={self.r_squared:.4f})")


@dataclasses.dataclass(frozen=True)
class AmdahlFit:
    """Fitted Amdahl parallel fraction."""

    parallel_fraction: float
    r_squared: float

    def predict_speedup(self, n: float) -> float:
        """Predicted speedup at ``n`` units."""
        if n <= 0:
            raise AnalysisError(f"n must be positive: {n}")
        p = self.parallel_fraction
        return 1.0 / ((1.0 - p) + p / n)

    def __str__(self) -> str:
        return (f"Amdahl(p={self.parallel_fraction:.4f}, "
                f"R²={self.r_squared:.4f})")


def _r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    residual = float(np.sum((observed - predicted) ** 2))
    total = float(np.sum((observed - observed.mean()) ** 2))
    if total == 0.0:
        return 1.0 if residual == 0.0 else 0.0
    return 1.0 - residual / total


def _validate_curve(counts: t.Sequence[float],
                    throughputs: t.Sequence[float],
                    minimum_points: int) -> tuple[np.ndarray, np.ndarray]:
    if len(counts) != len(throughputs):
        raise AnalysisError("counts and throughputs differ in length")
    if len(counts) < minimum_points:
        raise AnalysisError(
            f"need at least {minimum_points} points, got {len(counts)}")
    n = np.asarray(counts, dtype=float)
    x = np.asarray(throughputs, dtype=float)
    if np.any(n <= 0) or np.any(x <= 0):
        raise AnalysisError("counts and throughputs must be positive")
    if len(set(n.tolist())) != len(n):
        raise AnalysisError("duplicate concurrency points")
    return n, x


def fit_usl(counts: t.Sequence[float],
            throughputs: t.Sequence[float]) -> UslFit:
    """Least-squares USL fit with non-negativity bounds."""
    n, x = _validate_curve(counts, throughputs, minimum_points=3)

    def usl(n_values, lambda_, sigma, kappa):
        return (lambda_ * n_values
                / (1.0 + sigma * (n_values - 1.0)
                   + kappa * n_values * (n_values - 1.0)))

    lambda_guess = float(x[0] / n[0])
    try:
        with warnings.catch_warnings():
            # Perfectly linear curves make the covariance singular; the
            # parameter estimates themselves are still exactly right.
            warnings.simplefilter("ignore", optimize.OptimizeWarning)
            params, __ = optimize.curve_fit(
                usl, n, x,
                p0=[lambda_guess, 0.05, 0.001],
                bounds=([1e-12, 0.0, 0.0], [np.inf, 1.0, 1.0]),
                maxfev=20_000)
    except RuntimeError as exc:
        raise AnalysisError(f"USL fit did not converge: {exc}") from exc
    lambda_, sigma, kappa = (float(v) for v in params)
    fit = UslFit(lambda_, sigma, kappa,
                 _r_squared(x, usl(n, lambda_, sigma, kappa)))
    return fit


def fit_amdahl(counts: t.Sequence[float],
               speedups: t.Sequence[float]) -> AmdahlFit:
    """Least-squares Amdahl fit of a speedup curve (speedup(1) ≈ 1)."""
    n, s = _validate_curve(counts, speedups, minimum_points=2)

    def amdahl(n_values, p):
        return 1.0 / ((1.0 - p) + p / n_values)

    try:
        params, __ = optimize.curve_fit(
            amdahl, n, s, p0=[0.9], bounds=([0.0], [1.0]), maxfev=10_000)
    except RuntimeError as exc:
        raise AnalysisError(f"Amdahl fit did not converge: {exc}") from exc
    p = float(params[0])
    return AmdahlFit(p, _r_squared(s, amdahl(n, p)))
