"""Calibrating the memory model against a target headline uplift.

The paper reports +22% over its tuned baseline; the simulator's uplift
depends on the L3/front-end penalty weights in
:class:`~repro.memory.MemoryConfig`.  ``calibrate_headline`` finds the
scale factor on those weights that reproduces a chosen target, by
bisection over a monotone response (heavier cache penalties → unpinned
baseline suffers more → bigger uplift from pinning).

The search is measurement-agnostic: it bisects any ``measure(scale) →
uplift`` function, so tests can drive it with synthetic responses and
users can plug in their own experiment.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import ConfigurationError
from repro.memory.config import MemoryConfig


@dataclasses.dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a calibration search."""

    scale: float
    achieved: float
    target: float
    evaluations: int
    config: MemoryConfig

    @property
    def error(self) -> float:
        """Absolute deviation from the target."""
        return abs(self.achieved - self.target)


def scaled_memory_config(scale: float,
                         base: MemoryConfig | None = None) -> MemoryConfig:
    """A MemoryConfig with cache-penalty weights multiplied by ``scale``."""
    if scale <= 0:
        raise ConfigurationError(f"scale must be positive: {scale}")
    base = base or MemoryConfig()
    return dataclasses.replace(
        base,
        l3_miss_weight=base.l3_miss_weight * scale,
        frontend_miss_weight=base.frontend_miss_weight * scale,
    )


def bisect_to_target(measure: t.Callable[[float], float],
                     target: float,
                     lo: float = 0.25,
                     hi: float = 3.0,
                     iterations: int = 8,
                     tolerance: float = 0.02) -> tuple[float, float, int]:
    """Bisection on a monotone-increasing response.

    Returns ``(scale, achieved, evaluations)``; stops early once within
    ``tolerance`` of the target.  Raises when the target is outside the
    bracket's response range.
    """
    if not lo < hi:
        raise ConfigurationError(f"need lo < hi (got {lo}, {hi})")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1: {iterations}")
    evaluations = 0

    def run(scale: float) -> float:
        nonlocal evaluations
        evaluations += 1
        return measure(scale)

    response_lo, response_hi = run(lo), run(hi)
    if not response_lo <= target <= response_hi:
        raise ConfigurationError(
            f"target {target:.3f} outside the bracket's response "
            f"[{response_lo:.3f}, {response_hi:.3f}]; widen (lo, hi)")
    best = (lo, response_lo) if (abs(response_lo - target)
                                 < abs(response_hi - target)) else (hi, response_hi)
    for __ in range(iterations):
        mid = (lo + hi) / 2.0
        response = run(mid)
        if abs(response - target) < abs(best[1] - target):
            best = (mid, response)
        if abs(response - target) <= tolerance:
            break
        if response < target:
            lo = mid
        else:
            hi = mid
    return best[0], best[1], evaluations


def headline_measure(settings: t.Any | None = None
                     ) -> t.Callable[[float], float]:
    """The default ``measure(scale)``: run E8 with scaled weights.

    Uses half-length windows to keep calibration affordable; see
    :func:`repro.experiments.e8_headline.measure`.
    """
    from repro.experiments.common import ExperimentSettings
    from repro.experiments.e8_headline import measure as measure_headline
    settings = settings or ExperimentSettings()
    short = dataclasses.replace(settings,
                                warmup=max(0.5, settings.warmup / 2),
                                duration=max(1.0, settings.duration / 2))

    def measure(scale: float) -> float:
        scaled = dataclasses.replace(
            short, memory_config=scaled_memory_config(
                scale, settings.memory_config))
        return measure_headline(scaled).throughput_uplift
    return measure


def calibrate_headline(target_uplift: float = 0.22,
                       measure: t.Callable[[float], float] | None = None,
                       settings: t.Any | None = None,
                       lo: float = 0.25, hi: float = 3.0,
                       iterations: int = 8,
                       tolerance: float = 0.02) -> CalibrationResult:
    """Find the weight scale whose headline uplift matches the target."""
    if measure is None:
        measure = headline_measure(settings)
    scale, achieved, evaluations = bisect_to_target(
        measure, target_uplift, lo=lo, hi=hi,
        iterations=iterations, tolerance=tolerance)
    base = getattr(settings, "memory_config", None) or MemoryConfig()
    return CalibrationResult(scale, achieved, target_uplift, evaluations,
                             scaled_memory_config(scale, base))
