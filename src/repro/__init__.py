"""repro — reproduction of *Characterizing the Scale-Up Performance of
Microservices using TeaStore* (IISWC 2020).

A discrete-event scale-up simulation platform for microservice workloads
on high-core-count servers:

* :mod:`repro.sim` — simulation kernel;
* :mod:`repro.topology` — server topology (sockets/NUMA/CCD/CCX/SMT);
* :mod:`repro.cpu` — OS-like scheduler, SMT and boost models;
* :mod:`repro.memory` — L3/NUMA performance model;
* :mod:`repro.services` — microservice substrate (instances, RPC, LB);
* :mod:`repro.teastore` — the TeaStore application model;
* :mod:`repro.workload` — closed/open-loop load generation;
* :mod:`repro.metrics` — latency/throughput/counters/statistics;
* :mod:`repro.placement` — topology-aware placement (the paper's
  contribution);
* :mod:`repro.analysis` — USL/Amdahl scalability fits;
* :mod:`repro.spec` — SPEC-class comparison kernels;
* :mod:`repro.experiments` — the paper's experiments E1..E10 + ablations.

Quickstart::

    from repro import Deployment, TeaStoreConfig, build_teastore
    from repro import ClosedLoopWorkload, run_experiment, single_socket_rome

    deployment = Deployment(single_socket_rome(), seed=1)
    store = build_teastore(deployment, TeaStoreConfig())
    load = ClosedLoopWorkload(deployment, store.browse_session_factory(),
                              n_users=1000, think_time=0.125)
    print(run_experiment(deployment, load))
"""

from repro._errors import (
    AnalysisError,
    ConfigurationError,
    DeadlineExceededError,
    PlacementError,
    ReproError,
    SchedulingError,
    ServiceOverloadError,
    ServiceUnavailableError,
    SimulationError,
    TopologyError,
    WorkloadError,
)
from repro.analysis import fit_amdahl, fit_usl
from repro.calibration import calibrate_headline
from repro.memory import MemoryConfig, MemorySystemModel, WorkloadProfile
from repro.metrics import CounterBank, LatencyRecorder, ThroughputMeter
from repro.placement import (
    Allocation,
    ReplicaPlacement,
    ccx_aware,
    ccx_aware_auto,
    node_spread,
    socket_pack,
    unpinned,
    weights_from_utilization,
)
from repro.services import Deployment, ResilienceConfig, ServiceSpec
from repro.sim import Simulator
from repro.teastore import TeaStore, TeaStoreConfig, browse_profile, build_teastore
from repro.topology import (
    CpuSet,
    Machine,
    MachineSpec,
    dual_socket_rome,
    machine_from_preset,
    medium_machine,
    single_socket_rome,
    small_numa_machine,
    tiny_machine,
)
from repro.workload import (
    ClosedLoopWorkload,
    FaultInjector,
    OpenLoopWorkload,
    RunResult,
    run_experiment,
)

__version__ = "1.0.0"

__all__ = [
    "Allocation",
    "AnalysisError",
    "ClosedLoopWorkload",
    "ConfigurationError",
    "CounterBank",
    "CpuSet",
    "DeadlineExceededError",
    "Deployment",
    "FaultInjector",
    "LatencyRecorder",
    "Machine",
    "MachineSpec",
    "MemoryConfig",
    "MemorySystemModel",
    "OpenLoopWorkload",
    "PlacementError",
    "ReplicaPlacement",
    "ReproError",
    "ResilienceConfig",
    "RunResult",
    "SchedulingError",
    "ServiceOverloadError",
    "ServiceSpec",
    "ServiceUnavailableError",
    "SimulationError",
    "Simulator",
    "TeaStore",
    "TeaStoreConfig",
    "ThroughputMeter",
    "TopologyError",
    "WorkloadError",
    "WorkloadProfile",
    "browse_profile",
    "build_teastore",
    "calibrate_headline",
    "ccx_aware",
    "ccx_aware_auto",
    "dual_socket_rome",
    "fit_amdahl",
    "fit_usl",
    "machine_from_preset",
    "medium_machine",
    "node_spread",
    "run_experiment",
    "single_socket_rome",
    "small_numa_machine",
    "socket_pack",
    "tiny_machine",
    "unpinned",
    "weights_from_utilization",
    "__version__",
]
