"""Statistical summaries for benchmark results.

Follows the methodology literature for performance comparisons: report
confidence intervals across repeated runs, summarize *speedups* with the
harmonic mean (and provide the geometric mean for reference), never a bare
average of ratios.
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

import numpy as np
from scipy import stats as scipy_stats

from repro._errors import AnalysisError


def harmonic_mean(values: t.Sequence[float]) -> float:
    """Harmonic mean — the right summary for rates and speedup ratios."""
    if not values:
        raise AnalysisError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise AnalysisError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def geometric_mean(values: t.Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise AnalysisError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise AnalysisError("geometric_mean requires positive values")
    return float(math.exp(np.mean(np.log(values))))


@dataclasses.dataclass(frozen=True)
class Summary:
    """Mean with a two-sided confidence interval."""

    mean: float
    ci_low: float
    ci_high: float
    n: int

    @property
    def ci_half_width(self) -> float:
        """Half-width of the interval around the mean."""
        return (self.ci_high - self.ci_low) / 2.0

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.ci_half_width:.2g} (n={self.n})"


def confidence_interval(values: t.Sequence[float],
                        confidence: float = 0.95) -> Summary:
    """Student-t confidence interval for the mean of repeated runs."""
    if not values:
        raise AnalysisError("confidence_interval of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise AnalysisError(f"confidence must be in (0, 1): {confidence}")
    data = np.asarray(values, dtype=float)
    mean = float(data.mean())
    if len(data) == 1:
        return Summary(mean, mean, mean, 1)
    sem = float(scipy_stats.sem(data))
    if sem == 0.0:
        return Summary(mean, mean, mean, len(data))
    half = float(sem * scipy_stats.t.ppf((1.0 + confidence) / 2.0,
                                         len(data) - 1))
    return Summary(mean, mean - half, mean + half, len(data))


def summarize(values: t.Sequence[float], confidence: float = 0.95) -> Summary:
    """Alias of :func:`confidence_interval` reading better at call sites."""
    return confidence_interval(values, confidence)


def speedup_summary(baseline: t.Sequence[float],
                    candidate: t.Sequence[float]) -> float:
    """Harmonic-mean speedup of paired (baseline, candidate) throughputs."""
    if len(baseline) != len(candidate):
        raise AnalysisError("speedup_summary requires paired sequences")
    ratios = [c / b for b, c in zip(baseline, candidate)]
    return harmonic_mean(ratios)
