"""Growable preallocated column buffers for the measurement plane.

The measurement plane used to store one Python object (or tuple field) per
sample; at 10k simulated users that is tens of millions of boxed floats.
A :class:`Column` keeps samples in a single preallocated numpy array that
doubles when full, so appends stay amortized O(1) and the live view is a
zero-copy slice of the backing store.  String dimensions (request tags,
service names) are interned to dense ``uint32`` codes by a
:class:`StringInterner`, turning per-tag slicing into a vectorized mask.
"""

from __future__ import annotations

import numpy as np

#: Initial backing-store capacity.  Small enough that thousands of idle
#: columns (one per metric per experiment point) cost almost nothing,
#: large enough that a busy column doubles only a handful of times.
_INITIAL_CAPACITY = 64


class Column:
    """An append-only typed column with amortized-doubling storage."""

    __slots__ = ("_data", "_length")

    def __init__(self, dtype: np.dtype | type = np.float64,
                 capacity: int = _INITIAL_CAPACITY):
        self._data = np.empty(max(1, capacity), dtype=dtype)
        self._length = 0

    def __len__(self) -> int:
        return self._length

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    def append(self, value) -> None:
        """Add one value, doubling the backing store when full."""
        n = self._length
        data = self._data
        if n == len(data):
            grown = np.empty(2 * len(data), dtype=data.dtype)
            grown[:n] = data
            self._data = data = grown
        data[n] = value
        self._length = n + 1

    def extend(self, values) -> None:
        """Append a batch of values at once."""
        values = np.asarray(values, dtype=self._data.dtype)
        n = self._length
        needed = n + len(values)
        if needed > len(self._data):
            capacity = len(self._data)
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=self._data.dtype)
            grown[:n] = self._data[:n]
            self._data = grown
        self._data[n:needed] = values
        self._length = needed

    def as_array(self) -> np.ndarray:
        """Zero-copy view of the recorded samples.

        The view aliases the backing store: it is invalidated by the next
        append that triggers a resize, so consumers should not hold it
        across further recording.
        """
        return self._data[:self._length]

    def clear(self) -> None:
        """Drop all samples, keeping the current capacity."""
        self._length = 0

    @property
    def nbytes(self) -> int:
        """Bytes held by the backing store (capacity, not length)."""
        return self._data.nbytes

    def __repr__(self) -> str:
        return (f"<Column {self._data.dtype} {self._length}"
                f"/{len(self._data)}>")


class StringInterner:
    """Bidirectional string ↔ dense ``uint32`` code mapping.

    Code 0 is reserved for "no value" so columns can mix tagged and
    untagged rows without an option type.
    """

    __slots__ = ("_code_of", "_names")

    #: Reserved code meaning "no tag".
    NONE = 0

    def __init__(self):
        self._code_of: dict[str, int] = {}
        self._names: list[str] = [""]  # index 0 = NONE

    def __len__(self) -> int:
        """Number of interned strings (excluding the NONE slot)."""
        return len(self._names) - 1

    def encode(self, name: str) -> int:
        """The code for ``name``, assigning the next one on first use."""
        code = self._code_of.get(name)
        if code is None:
            code = len(self._names)
            self._code_of[name] = code
            self._names.append(name)
        return code

    def code_if_known(self, name: str) -> int | None:
        """The code for ``name`` or ``None`` — never assigns."""
        return self._code_of.get(name)

    def decode(self, code: int) -> str:
        """The string for ``code`` (NONE decodes to the empty string)."""
        return self._names[code]

    @property
    def names(self) -> list[str]:
        """All interned strings indexed by code (slot 0 = the NONE slot).

        This is the vocabulary a serialized column needs to travel with:
        ``names[code]`` decodes every stored code, and re-encoding the
        list into another interner yields a code remap table.
        """
        return list(self._names)

    def __repr__(self) -> str:
        return f"<StringInterner {len(self)} names>"
