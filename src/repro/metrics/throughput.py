"""Throughput measurement over an explicit window."""

from __future__ import annotations

import numpy as np

from repro._errors import AnalysisError
from repro.metrics.columns import Column
from repro.sim.engine import Simulator


class ThroughputMeter:
    """Counts completed operations; rate is computed over a marked window.

    The experiment runner calls :meth:`start_window` when warmup ends and
    :meth:`stop_window` when measurement ends; completions outside the
    window still increment the lifetime count but not the windowed one.

    With ``record_timeline=True`` every mark's timestamp is additionally
    appended to a float64 column, enabling post-hoc windowed-rate series
    (:meth:`rate_series`) at 8 bytes per completion.  Off by default: the
    aggregate counters answer the standard experiment questions for free.
    """

    def __init__(self, sim: Simulator, record_timeline: bool = False):
        self.sim = sim
        self.lifetime_count = 0
        self._window_count = 0
        self._window_start: float | None = None
        self._window_end: float | None = None
        self._timeline: Column | None = (
            Column(np.float64) if record_timeline else None)

    def mark(self, n: int = 1) -> None:
        """Record ``n`` completed operations at the current time."""
        self.lifetime_count += n
        if self._window_start is not None and self._window_end is None:
            self._window_count += n
        timeline = self._timeline
        if timeline is not None:
            now = self.sim.now
            for __ in range(n):
                timeline.append(now)

    def start_window(self) -> None:
        """Begin the measurement window at the current simulated time."""
        self._window_start = self.sim.now
        self._window_end = None
        self._window_count = 0

    def stop_window(self) -> None:
        """Close the measurement window at the current simulated time."""
        if self._window_start is None:
            raise AnalysisError("stop_window() before start_window()")
        if self._window_end is not None:
            raise AnalysisError("measurement window already stopped")
        self._window_end = self.sim.now

    @property
    def window_duration(self) -> float:
        """Length of the (closed) measurement window."""
        if self._window_start is None or self._window_end is None:
            raise AnalysisError("measurement window is not closed")
        return self._window_end - self._window_start

    @property
    def window_count(self) -> int:
        """Operations completed inside the window."""
        return self._window_count

    def rate(self) -> float:
        """Operations per second over the closed window."""
        duration = self.window_duration
        if duration <= 0:
            raise AnalysisError("measurement window has zero duration")
        return self._window_count / duration

    def mark_times(self) -> np.ndarray:
        """Zero-copy view of recorded mark timestamps (timeline mode)."""
        if self._timeline is None:
            raise AnalysisError(
                "meter was created without record_timeline=True")
        return self._timeline.as_array()

    def rate_series(self, bucket: float) -> tuple[np.ndarray, np.ndarray]:
        """Completions-per-second in fixed ``bucket``-second bins.

        Returns ``(bin_left_edges, rates)`` over the recorded timeline;
        computed with one vectorized histogram pass over the column.
        """
        if bucket <= 0:
            raise AnalysisError(f"bucket must be positive: {bucket}")
        times = self.mark_times()
        if len(times) == 0:
            return np.empty(0), np.empty(0)
        start = float(times[0])
        n_bins = int((float(times[-1]) - start) // bucket) + 1
        edges = start + bucket * np.arange(n_bins + 1)
        counts, __ = np.histogram(times, bins=edges)
        return edges[:-1], counts / bucket

    def __repr__(self) -> str:
        return (f"<ThroughputMeter lifetime={self.lifetime_count} "
                f"window={self._window_count}>")
