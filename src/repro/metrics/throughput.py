"""Throughput measurement over an explicit window."""

from __future__ import annotations

from repro._errors import AnalysisError
from repro.sim.engine import Simulator


class ThroughputMeter:
    """Counts completed operations; rate is computed over a marked window.

    The experiment runner calls :meth:`start_window` when warmup ends and
    :meth:`stop_window` when measurement ends; completions outside the
    window still increment the lifetime count but not the windowed one.
    """

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.lifetime_count = 0
        self._window_count = 0
        self._window_start: float | None = None
        self._window_end: float | None = None

    def mark(self, n: int = 1) -> None:
        """Record ``n`` completed operations at the current time."""
        self.lifetime_count += n
        if self._window_start is not None and self._window_end is None:
            self._window_count += n

    def start_window(self) -> None:
        """Begin the measurement window at the current simulated time."""
        self._window_start = self.sim.now
        self._window_end = None
        self._window_count = 0

    def stop_window(self) -> None:
        """Close the measurement window at the current simulated time."""
        if self._window_start is None:
            raise AnalysisError("stop_window() before start_window()")
        if self._window_end is not None:
            raise AnalysisError("measurement window already stopped")
        self._window_end = self.sim.now

    @property
    def window_duration(self) -> float:
        """Length of the (closed) measurement window."""
        if self._window_start is None or self._window_end is None:
            raise AnalysisError("measurement window is not closed")
        return self._window_end - self._window_start

    @property
    def window_count(self) -> int:
        """Operations completed inside the window."""
        return self._window_count

    def rate(self) -> float:
        """Operations per second over the closed window."""
        duration = self.window_duration
        if duration <= 0:
            raise AnalysisError("measurement window has zero duration")
        return self._window_count / duration

    def __repr__(self) -> str:
        return (f"<ThroughputMeter lifetime={self.lifetime_count} "
                f"window={self._window_count}>")
