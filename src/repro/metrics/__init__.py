"""Measurement and statistics.

* :class:`~repro.metrics.latency.LatencyRecorder` — request latency samples
  with percentile queries.
* :class:`~repro.metrics.throughput.ThroughputMeter` — completed-operations
  counting over a measurement window.
* :mod:`~repro.metrics.utilization` — per-CPU and per-group CPU-time
  accounting deltas.
* :class:`~repro.metrics.hwcounters.CounterBank` — synthetic hardware
  counters (instructions, cycles, MPKI, stall decomposition) fed by the
  memory-system model.
* :mod:`~repro.metrics.stats` — confidence intervals and the harmonic /
  geometric means appropriate for speedup summaries.
"""

from repro.metrics.hwcounters import CounterBank, CounterTotals
from repro.metrics.latency import LatencyRecorder
from repro.metrics.resilience import ResilienceStats
from repro.metrics.stats import (
    confidence_interval,
    geometric_mean,
    harmonic_mean,
    summarize,
)
from repro.metrics.throughput import ThroughputMeter
from repro.metrics.utilization import UtilizationProbe

__all__ = [
    "CounterBank",
    "CounterTotals",
    "LatencyRecorder",
    "ResilienceStats",
    "ThroughputMeter",
    "UtilizationProbe",
    "confidence_interval",
    "geometric_mean",
    "harmonic_mean",
    "summarize",
]
