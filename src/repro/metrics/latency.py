"""Latency sample collection and percentile queries."""

from __future__ import annotations

import numpy as np

from repro._errors import AnalysisError
from repro.metrics.columns import Column, StringInterner

#: Magnitude below which a negative sample is treated as floating-point
#: noise rather than a genuinely negative latency.  Subtracting two
#: near-equal clock values can produce ``-1e-18``-scale artifacts; a
#: nanosecond is far below anything the simulation resolves.
NEGATIVE_EPSILON = 1e-9


class LatencyRecorder:
    """Collects latency samples, optionally tagged by request type.

    Samples are kept in full (simulations produce at most a few hundred
    thousand requests), so percentiles are exact rather than sketched.
    Storage is columnar: one float64 column of values plus one uint32
    column of interned tag codes, so a sample costs 12 bytes instead of
    a boxed float per list it appears in.  Derived per-tag arrays are
    cached and invalidated by recording, so repeated percentile queries
    against a quiescent recorder slice the columns only once.
    """

    def __init__(self):
        self._values = Column(np.float64)
        self._codes = Column(np.uint32)
        self._interner = StringInterner()
        #: Monotone edit counter; bumped by record()/reset() so cached
        #: derived arrays self-invalidate without a clear on the hot path.
        self._version = 0
        #: tag (or None for "all samples") → (version, array).
        self._array_cache: dict[str | None, tuple[int, np.ndarray]] = {}
        self._tags_cache: tuple[int, list[str]] | None = None
        self.enabled = True

    def record(self, latency: float, tag: str | None = None) -> None:
        """Add one sample (ignored while disabled, e.g. during warmup)."""
        if not self.enabled:
            return
        if latency < 0:
            if latency > -NEGATIVE_EPSILON:
                # Float subtraction of near-equal clocks; clamp to zero
                # instead of killing a multi-hour sweep at the last
                # reduction.
                latency = 0.0
            else:
                raise AnalysisError(f"negative latency sample: {latency}")
        self._values.append(latency)
        self._codes.append(StringInterner.NONE if tag is None
                           else self._interner.encode(tag))
        self._version += 1

    def reset(self) -> None:
        """Drop all samples (end of warmup)."""
        self._values.clear()
        self._codes.clear()
        self._version += 1

    def to_payload(self) -> dict:
        """JSON-native dump of every sample: values, codes, tag vocab.

        The samples cross process boundaries in sharded runs, so the
        dump must survive a canonical-JSON round trip exactly — values
        are plain floats and the tag dimension stays interned (codes +
        vocabulary) rather than exploding into one string per sample.
        """
        return {
            "values": self._values.as_array().tolist(),
            "codes": self._codes.as_array().tolist(),
            "tags": self._interner.names,
        }

    def extend_from_payload(self, payload: dict) -> None:
        """Append another recorder's :meth:`to_payload` samples.

        Tag codes are remapped through this recorder's interner, so
        recorders with different tag-arrival orders merge correctly.
        Appending shard payloads in shard order makes the merged sample
        sequence — and therefore every percentile — deterministic.
        """
        names = payload["tags"]
        remap = [StringInterner.NONE]
        remap.extend(self._interner.encode(name) for name in names[1:])
        self._values.extend(payload["values"])
        self._codes.extend([remap[code] for code in payload["codes"]])
        self._version += 1

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._values)

    @property
    def tags(self) -> list[str]:
        """Request types seen so far, sorted."""
        cached = self._tags_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        codes = np.unique(self._codes.as_array())
        tags = sorted(self._interner.decode(int(code)) for code in codes
                      if code != StringInterner.NONE)
        self._tags_cache = (self._version, tags)
        return tags

    def _array(self, tag: str | None) -> np.ndarray:
        cached = self._array_cache.get(tag)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if tag is None:
            samples = self._values.as_array()
        else:
            code = self._interner.code_if_known(tag)
            if code is None:
                samples = np.empty(0)
            else:
                samples = self._values.as_array()[
                    self._codes.as_array() == code]
        if len(samples) == 0:
            raise AnalysisError(
                "no latency samples recorded"
                + (f" for tag {tag!r}" if tag else ""))
        self._array_cache[tag] = (self._version, samples)
        return samples

    def mean(self, tag: str | None = None) -> float:
        """Arithmetic mean latency."""
        return float(self._array(tag).mean())

    def percentile(self, p: float, tag: str | None = None) -> float:
        """The ``p``-th percentile (0–100)."""
        if not 0 <= p <= 100:
            raise AnalysisError(f"percentile must be in [0, 100]: {p}")
        return float(np.percentile(self._array(tag), p))

    def p50(self, tag: str | None = None) -> float:
        """Median latency."""
        return self.percentile(50, tag)

    def p95(self, tag: str | None = None) -> float:
        """95th-percentile latency."""
        return self.percentile(95, tag)

    def p99(self, tag: str | None = None) -> float:
        """99th-percentile latency."""
        return self.percentile(99, tag)

    def max(self, tag: str | None = None) -> float:
        """Worst observed latency."""
        return float(self._array(tag).max())

    def __repr__(self) -> str:
        return f"<LatencyRecorder {len(self._values)} samples>"
