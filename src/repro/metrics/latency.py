"""Latency sample collection and percentile queries."""

from __future__ import annotations

import numpy as np

from repro._errors import AnalysisError

#: Magnitude below which a negative sample is treated as floating-point
#: noise rather than a genuinely negative latency.  Subtracting two
#: near-equal clock values can produce ``-1e-18``-scale artifacts; a
#: nanosecond is far below anything the simulation resolves.
NEGATIVE_EPSILON = 1e-9


class LatencyRecorder:
    """Collects latency samples, optionally tagged by request type.

    Samples are kept in full (simulations produce at most a few hundred
    thousand requests), so percentiles are exact rather than sketched.
    """

    def __init__(self):
        self._samples: list[float] = []
        self._by_tag: dict[str, list[float]] = {}
        self.enabled = True

    def record(self, latency: float, tag: str | None = None) -> None:
        """Add one sample (ignored while disabled, e.g. during warmup)."""
        if not self.enabled:
            return
        if latency < 0:
            if latency > -NEGATIVE_EPSILON:
                # Float subtraction of near-equal clocks; clamp to zero
                # instead of killing a multi-hour sweep at the last
                # reduction.
                latency = 0.0
            else:
                raise AnalysisError(f"negative latency sample: {latency}")
        self._samples.append(latency)
        if tag is not None:
            self._by_tag.setdefault(tag, []).append(latency)

    def reset(self) -> None:
        """Drop all samples (end of warmup)."""
        self._samples.clear()
        self._by_tag.clear()

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    @property
    def tags(self) -> list[str]:
        """Request types seen so far, sorted."""
        return sorted(self._by_tag)

    def _array(self, tag: str | None) -> np.ndarray:
        samples = self._samples if tag is None else self._by_tag.get(tag, [])
        if not samples:
            raise AnalysisError(
                "no latency samples recorded"
                + (f" for tag {tag!r}" if tag else ""))
        return np.asarray(samples)

    def mean(self, tag: str | None = None) -> float:
        """Arithmetic mean latency."""
        return float(self._array(tag).mean())

    def percentile(self, p: float, tag: str | None = None) -> float:
        """The ``p``-th percentile (0–100)."""
        if not 0 <= p <= 100:
            raise AnalysisError(f"percentile must be in [0, 100]: {p}")
        return float(np.percentile(self._array(tag), p))

    def p50(self, tag: str | None = None) -> float:
        """Median latency."""
        return self.percentile(50, tag)

    def p95(self, tag: str | None = None) -> float:
        """95th-percentile latency."""
        return self.percentile(95, tag)

    def p99(self, tag: str | None = None) -> float:
        """99th-percentile latency."""
        return self.percentile(99, tag)

    def max(self, tag: str | None = None) -> float:
        """Worst observed latency."""
        return float(self._array(tag).max())

    def __repr__(self) -> str:
        return f"<LatencyRecorder {len(self._samples)} samples>"
