"""CPU-time accounting: per-CPU and per-group utilization over a window."""

from __future__ import annotations

import typing as t

from repro._errors import AnalysisError
from repro.cpu.scheduler import CpuScheduler

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.burst import TaskGroup


class UtilizationProbe:
    """Snapshot-based utilization measurement.

    Take a snapshot when the measurement window opens and query deltas when
    it closes; works for both logical CPUs (from the scheduler's busy-time
    integrals) and task groups (from their accumulated CPU time).
    """

    def __init__(self, scheduler: CpuScheduler,
                 groups: t.Iterable["TaskGroup"] = ()):
        self.scheduler = scheduler
        self.groups = list(groups)
        self._start_time: float | None = None
        self._end_time: float | None = None
        self._cpu_busy_at_start: dict[int, float] = {}
        self._group_time_at_start: dict[int, float] = {}
        self._cpu_busy_at_end: dict[int, float] = {}
        self._group_time_at_end: dict[int, float] = {}

    def track(self, group: "TaskGroup") -> None:
        """Add a group to per-group accounting (before the window opens)."""
        if self._start_time is not None:
            raise AnalysisError("cannot add groups after start()")
        self.groups.append(group)

    def start(self) -> None:
        """Open the measurement window."""
        self._start_time = self.scheduler.sim.now
        self._cpu_busy_at_start = {
            i: self.scheduler.busy_time(i) for i in self.scheduler.online}
        self._group_time_at_start = {
            g.group_id: g.cpu_time for g in self.groups}

    def stop(self) -> None:
        """Close the measurement window."""
        if self._start_time is None:
            raise AnalysisError("stop() before start()")
        self._end_time = self.scheduler.sim.now
        self._cpu_busy_at_end = {
            i: self.scheduler.busy_time(i) for i in self.scheduler.online}
        self._group_time_at_end = {
            g.group_id: g.cpu_time for g in self.groups}

    @property
    def duration(self) -> float:
        """Window length in simulated seconds."""
        if self._start_time is None or self._end_time is None:
            raise AnalysisError("window is not closed")
        return self._end_time - self._start_time

    def cpu_utilization(self, cpu_index: int) -> float:
        """Busy fraction of one logical CPU over the window."""
        duration = self.duration
        if duration <= 0:
            raise AnalysisError("zero-length measurement window")
        delta = (self._cpu_busy_at_end[cpu_index]
                 - self._cpu_busy_at_start[cpu_index])
        return delta / duration

    def machine_utilization(self) -> float:
        """Average busy fraction over all online logical CPUs."""
        online = list(self.scheduler.online)
        return sum(self.cpu_utilization(i) for i in online) / len(online)

    def group_cpu_time(self, group: "TaskGroup") -> float:
        """CPU seconds consumed by one group inside the window."""
        if group.group_id not in self._group_time_at_end:
            raise AnalysisError(f"group {group.name!r} was not tracked")
        return (self._group_time_at_end[group.group_id]
                - self._group_time_at_start[group.group_id])

    def group_share(self) -> dict[str, float]:
        """Fraction of total tracked CPU time per group *name*.

        Instances of the same service aggregate under one name, giving the
        paper-style per-service utilization breakdown.
        """
        by_name: dict[str, float] = {}
        for group in self.groups:
            by_name[group.name] = (by_name.get(group.name, 0.0)
                                   + self.group_cpu_time(group))
        total = sum(by_name.values())
        if total <= 0:
            return {name: 0.0 for name in by_name}
        return {name: value / total for name, value in by_name.items()}

    def group_utilization(self) -> dict[str, float]:
        """Per-service-name CPU seconds per second of window time."""
        duration = self.duration
        by_name: dict[str, float] = {}
        for group in self.groups:
            by_name[group.name] = (by_name.get(group.name, 0.0)
                                   + self.group_cpu_time(group))
        return {name: value / duration for name, value in by_name.items()}
