"""CPU-time accounting: per-CPU and per-group utilization over a window."""

from __future__ import annotations

import typing as t

import numpy as np

from repro._errors import AnalysisError
from repro.cpu.scheduler import CpuScheduler

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.burst import TaskGroup


class UtilizationProbe:
    """Snapshot-based utilization measurement.

    Take a snapshot when the measurement window opens and query deltas when
    it closes; works for both logical CPUs (from the scheduler's busy-time
    integrals) and task groups (from their accumulated CPU time).

    Snapshots are columnar: one float64 array per side of the window in a
    fixed CPU/group order captured at :meth:`start`, so the delta for all
    64+ logical CPUs is a single vectorized subtraction.  Per-element sums
    stay in the original snapshot order, which keeps aggregate results
    bit-identical to the per-dict implementation this replaced.
    """

    def __init__(self, scheduler: CpuScheduler,
                 groups: t.Iterable["TaskGroup"] = ()):
        self.scheduler = scheduler
        self.groups = list(groups)
        self._start_time: float | None = None
        self._end_time: float | None = None
        #: CPU indices in snapshot order (captured at start()).
        self._cpu_order: list[int] = []
        self._cpu_pos: dict[int, int] = {}
        self._group_pos: dict[int, int] = {}
        self._cpu_busy_start = np.empty(0)
        self._cpu_busy_end: np.ndarray | None = None
        self._group_time_start = np.empty(0)
        self._group_time_end: np.ndarray | None = None

    def track(self, group: "TaskGroup") -> None:
        """Add a group to per-group accounting (before the window opens)."""
        if self._start_time is not None:
            raise AnalysisError("cannot add groups after start()")
        self.groups.append(group)

    def start(self) -> None:
        """Open the measurement window."""
        scheduler = self.scheduler
        self._start_time = scheduler.sim.now
        self._cpu_order = list(scheduler.online)
        self._cpu_pos = {i: pos for pos, i in enumerate(self._cpu_order)}
        self._group_pos = {g.group_id: pos
                           for pos, g in enumerate(self.groups)}
        self._cpu_busy_start = np.fromiter(
            (scheduler.busy_time(i) for i in self._cpu_order),
            dtype=np.float64, count=len(self._cpu_order))
        self._group_time_start = np.fromiter(
            (g.cpu_time for g in self.groups),
            dtype=np.float64, count=len(self.groups))

    def stop(self) -> None:
        """Close the measurement window."""
        if self._start_time is None:
            raise AnalysisError("stop() before start()")
        scheduler = self.scheduler
        self._end_time = scheduler.sim.now
        self._cpu_busy_end = np.fromiter(
            (scheduler.busy_time(i) for i in self._cpu_order),
            dtype=np.float64, count=len(self._cpu_order))
        self._group_time_end = np.fromiter(
            (g.cpu_time for g in self.groups),
            dtype=np.float64, count=len(self.groups))

    @property
    def duration(self) -> float:
        """Window length in simulated seconds."""
        if self._start_time is None or self._end_time is None:
            raise AnalysisError("window is not closed")
        return self._end_time - self._start_time

    def _require_closed(self) -> float:
        duration = self.duration
        if duration <= 0:
            raise AnalysisError("zero-length measurement window")
        return duration

    def cpu_utilization(self, cpu_index: int) -> float:
        """Busy fraction of one logical CPU over the window."""
        duration = self._require_closed()
        pos = self._cpu_pos.get(cpu_index)
        if pos is None:
            raise AnalysisError(f"cpu {cpu_index} was not online at start()")
        end = t.cast(np.ndarray, self._cpu_busy_end)
        return float((end[pos] - self._cpu_busy_start[pos]) / duration)

    def machine_utilization(self) -> float:
        """Average busy fraction over all online logical CPUs."""
        duration = self._require_closed()
        end = t.cast(np.ndarray, self._cpu_busy_end)
        deltas = (end - self._cpu_busy_start) / duration
        # Sequential sum in snapshot order: same bits as summing the
        # per-CPU scalars one by one.
        return sum(deltas.tolist()) / len(self._cpu_order)

    def group_cpu_time(self, group: "TaskGroup") -> float:
        """CPU seconds consumed by one group inside the window."""
        if self._group_time_end is None:
            raise AnalysisError("window is not closed")
        pos = self._group_pos.get(group.group_id)
        if pos is None:
            raise AnalysisError(f"group {group.name!r} was not tracked")
        return float(self._group_time_end[pos] - self._group_time_start[pos])

    def group_share(self) -> dict[str, float]:
        """Fraction of total tracked CPU time per group *name*.

        Instances of the same service aggregate under one name, giving the
        paper-style per-service utilization breakdown.
        """
        by_name: dict[str, float] = {}
        for group in self.groups:
            by_name[group.name] = (by_name.get(group.name, 0.0)
                                   + self.group_cpu_time(group))
        total = sum(by_name.values())
        if total <= 0:
            return {name: 0.0 for name in by_name}
        return {name: value / total for name, value in by_name.items()}

    def group_utilization(self) -> dict[str, float]:
        """Per-service-name CPU seconds per second of window time."""
        duration = self.duration
        by_name: dict[str, float] = {}
        for group in self.groups:
            by_name[group.name] = (by_name.get(group.name, 0.0)
                                   + self.group_cpu_time(group))
        return {name: value / duration for name, value in by_name.items()}
