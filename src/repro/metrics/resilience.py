"""Counters for the resilience layer (retries, timeouts, degradation).

One :class:`ResilienceStats` lives on each deployment whose resilient
dispatch path is active.  Its invariants are what the property-based
tests (and experiment E13) check:

* conservation — once the simulation drains, every logical call resolved
  exactly once: ``successes + degraded + errors == calls``;
* bounded amplification — ``retries <= retry_budget * calls`` at every
  instant, because the budget gate compares against these live counters.
"""

from __future__ import annotations

import dataclasses
import typing as t


@dataclasses.dataclass
class ResilienceStats:
    """Deployment-wide counters maintained by the resilient dispatch path."""

    #: Logical calls (one per ``dispatch``, however many attempts).
    calls: int = 0
    #: Physical attempts (first tries + retries).
    attempts: int = 0
    #: Retry attempts only (``attempts - calls`` for resolved calls).
    retries: int = 0
    #: Calls that resolved with a real response.
    successes: int = 0
    #: Calls that resolved with a registered fallback payload.
    degraded: int = 0
    #: Calls that resolved with a failure after exhausting attempts.
    errors: int = 0
    #: Attempts that hit their deadline (caller-side timeout).
    timeouts: int = 0
    #: Attempts that failed with an exception (shed, crashed, expired).
    failures: int = 0
    #: Retries denied by the retry budget alone.
    budget_denied: int = 0
    #: Attempts rejected instantly because every replica's breaker was
    #: open (the fail-fast path; no request was dispatched).
    breaker_rejected: int = 0

    def resolved(self) -> int:
        """Calls that have reached a terminal outcome."""
        return self.successes + self.degraded + self.errors

    def retry_amplification(self) -> float:
        """Physical attempts per logical call (1.0 = no retries)."""
        if self.calls == 0:
            return 1.0
        return self.attempts / self.calls

    def error_rate(self) -> float:
        """Fraction of calls that resolved as errors."""
        resolved = self.resolved()
        if resolved == 0:
            return 0.0
        return self.errors / resolved

    def to_dict(self) -> dict[str, t.Any]:
        """JSON-native view for payloads and reports."""
        return {
            "calls": self.calls,
            "attempts": self.attempts,
            "retries": self.retries,
            "successes": self.successes,
            "degraded": self.degraded,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "failures": self.failures,
            "budget_denied": self.budget_denied,
            "breaker_rejected": self.breaker_rejected,
            "retry_amplification": self.retry_amplification(),
        }
