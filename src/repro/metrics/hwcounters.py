"""Synthetic hardware-counter model.

Produces the per-workload microarchitectural statistics the paper's
characterization section reports — IPC, cache MPKI, and a stall-cycle
decomposition — from the same analytic model that drives simulated
performance, so the characterization table and the performance results are
internally consistent.

Accounting per completed burst (demands are calibrated at base clock with
warm caches):

* ``base_cycles  = demand_seconds × base_freq_hz``
* ``instructions = base_cycles × base_ipc``
* ``cycles       = base_cycles × cpi_inflation``  (what the inflated CPI
  actually costs)
* cache MPKI scale up from the profile's warm baselines with the miss
  fractions implied by current L3 code/data pressure.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro._errors import AnalysisError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.cpu.burst import CpuBurst
    from repro.memory.system import MemorySystemModel
    from repro.topology.model import LogicalCpu


@dataclasses.dataclass
class CounterTotals:
    """Accumulated counters for one workload name."""

    instructions: float = 0.0
    cycles: float = 0.0
    base_cycles: float = 0.0
    l1i_misses: float = 0.0
    l1d_misses: float = 0.0
    l2_misses: float = 0.0
    l3_misses: float = 0.0
    branch_mispredicts: float = 0.0
    frontend_stall_cycles: float = 0.0
    data_stall_cycles: float = 0.0
    numa_stall_cycles: float = 0.0
    bursts: int = 0

    @property
    def ipc(self) -> float:
        """Effective instructions per cycle."""
        if self.cycles <= 0:
            raise AnalysisError("no cycles recorded")
        return self.instructions / self.cycles

    def _mpki(self, misses: float) -> float:
        if self.instructions <= 0:
            raise AnalysisError("no instructions recorded")
        return misses / (self.instructions / 1000.0)

    @property
    def l1i_mpki(self) -> float:
        """L1 instruction-cache misses per kilo-instruction."""
        return self._mpki(self.l1i_misses)

    @property
    def l1d_mpki(self) -> float:
        """L1 data-cache misses per kilo-instruction."""
        return self._mpki(self.l1d_misses)

    @property
    def l2_mpki(self) -> float:
        """L2 misses per kilo-instruction."""
        return self._mpki(self.l2_misses)

    @property
    def l3_mpki(self) -> float:
        """L3 misses per kilo-instruction."""
        return self._mpki(self.l3_misses)

    @property
    def branch_mpki(self) -> float:
        """Branch mispredicts per kilo-instruction."""
        return self._mpki(self.branch_mispredicts)

    @property
    def frontend_bound_fraction(self) -> float:
        """Share of cycles stalled on the front end."""
        if self.cycles <= 0:
            raise AnalysisError("no cycles recorded")
        return self.frontend_stall_cycles / self.cycles

    @property
    def memory_bound_fraction(self) -> float:
        """Share of cycles stalled on data/NUMA memory access."""
        if self.cycles <= 0:
            raise AnalysisError("no cycles recorded")
        return (self.data_stall_cycles + self.numa_stall_cycles) / self.cycles


class CounterBank:
    """Aggregates synthetic counters per workload name.

    Install as the memory model's ``counter_sink``; it is called once per
    completed burst.
    """

    def __init__(self):
        self._totals: dict[str, CounterTotals] = {}

    def totals(self, name: str) -> CounterTotals:
        """Counters for one workload name (raises if never seen)."""
        try:
            return self._totals[name]
        except KeyError:
            raise AnalysisError(f"no counters recorded for {name!r}") from None

    @property
    def names(self) -> list[str]:
        """Workload names seen so far, sorted."""
        return sorted(self._totals)

    def record_burst(self, memory_model: "MemorySystemModel",
                     burst: "CpuBurst", cpu: "LogicalCpu",
                     wall_time: float) -> None:
        """Attribute one completed burst's synthetic counters."""
        group = burst.group
        profile = group.profile
        if profile is None:
            return
        breakdown = memory_model.breakdown(group, cpu.ccx.index,
                                           cpu.node.index)
        base_freq_hz = memory_model.machine.spec.base_freq_ghz * 1e9
        base_cycles = burst.demand * base_freq_hz
        instructions = base_cycles * profile.base_ipc
        cycles = base_cycles * breakdown.total

        from repro.memory.system import _miss_fraction  # shared curve
        code_miss = _miss_fraction(breakdown.code_pressure)
        data_miss = _miss_fraction(breakdown.data_pressure)
        kilo_instructions = instructions / 1000.0

        totals = self._totals.setdefault(group.name, CounterTotals())
        totals.instructions += instructions
        totals.cycles += cycles
        totals.base_cycles += base_cycles
        totals.bursts += 1
        # Warm-cache baselines scale with pressure-driven miss fractions:
        # front-end misses grow with code pressure; L3 misses absorb the
        # L2-miss traffic that no longer hits in L3.
        totals.l1i_misses += (profile.l1i_mpki * (1.0 + 2.0 * code_miss)
                              * kilo_instructions)
        totals.l1d_misses += profile.l1d_mpki * kilo_instructions
        totals.l2_misses += (profile.l2_mpki * (1.0 + code_miss)
                             * kilo_instructions)
        totals.l3_misses += ((profile.l3_mpki
                              + profile.l2_mpki * data_miss)
                             * kilo_instructions)
        totals.branch_mispredicts += profile.branch_mpki * kilo_instructions
        extra_cycles = cycles - base_cycles
        if breakdown.total > 1.0:
            inflation_terms = breakdown.total - 1.0
            totals.frontend_stall_cycles += (
                extra_cycles * breakdown.code_component / inflation_terms)
            totals.data_stall_cycles += (
                extra_cycles * breakdown.data_component / inflation_terms)
            totals.numa_stall_cycles += (
                extra_cycles * breakdown.numa_component / inflation_terms)

    def table(self) -> list[dict[str, float | str]]:
        """One row per workload: the paper-style characterization table."""
        rows: list[dict[str, float | str]] = []
        for name in self.names:
            totals = self._totals[name]
            rows.append({
                "workload": name,
                "ipc": totals.ipc,
                "l1i_mpki": totals.l1i_mpki,
                "l1d_mpki": totals.l1d_mpki,
                "l2_mpki": totals.l2_mpki,
                "l3_mpki": totals.l3_mpki,
                "branch_mpki": totals.branch_mpki,
                "frontend_bound": totals.frontend_bound_fraction,
                "memory_bound": totals.memory_bound_fraction,
            })
        return rows
