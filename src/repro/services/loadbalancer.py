"""Replica selection policies."""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError, ServiceUnavailableError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.instance import ServiceInstance

#: Valid policy names for :class:`LoadBalancer`.
POLICIES = ("round_robin", "least_outstanding")


class LoadBalancer:
    """Chooses the replica that serves each request for one service.

    ``round_robin`` matches TeaStore's default (its WebUI iterates the
    registry's instance list); ``least_outstanding`` is the stronger
    baseline useful for sensitivity studies.
    """

    def __init__(self, service_name: str, policy: str = "round_robin"):
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown load-balancing policy {policy!r}; "
                f"choose from {POLICIES}")
        self.service_name = service_name
        self.policy = policy
        self._instances: list["ServiceInstance"] = []
        self._next = 0

    @property
    def instances(self) -> list["ServiceInstance"]:
        """Registered replicas (in registration order)."""
        return list(self._instances)

    def add(self, instance: "ServiceInstance") -> None:
        """Register one replica."""
        self._instances.append(instance)

    def remove(self, instance: "ServiceInstance") -> None:
        """Deregister one replica (it must be present).

        The round-robin cursor is re-anchored so the rotation continues
        from the same successor replica: a mid-window kill neither
        resets fairness to replica 0 nor lets the cursor land on the
        slot the dead replica vacated (which is how a just-killed
        replica used to be re-picked during a pick-heavy window).
        """
        try:
            index = self._instances.index(instance)
        except ValueError:
            raise ConfigurationError(
                f"instance {instance!r} is not registered with "
                f"{self.service_name!r}") from None
        position = self._next % len(self._instances)
        del self._instances[index]
        if index < position:
            position -= 1
        self._next = position if self._instances else 0

    def pick(self, now: float = 0.0) -> "ServiceInstance":
        """Choose the replica for the next request.

        Replicas whose circuit breaker is open are skipped while any
        breaker-available replica exists; when *every* accepting replica
        is circuit-open the pick **fails fast** with
        :class:`ServiceUnavailableError` — the whole point of a breaker
        is that callers stop waiting out timeouts against a replica set
        already known to be sick (they retry or degrade immediately).

        Replicas that merely stopped accepting (crashed mid-window but
        not yet deregistered) are skipped too, but when *none* accepts
        the pick still returns a dead replica: shedding there preserves
        the caller-visible rejection rather than masking a total outage.
        """
        instances = self._instances
        if not instances:
            raise ConfigurationError(
                f"service {self.service_name!r} has no instances")
        if self.policy == "round_robin":
            # Rotation is anchored to the *stable* registration order:
            # the cursor is a position in ``_instances``, and the pick
            # scans forward past non-candidates.  Indexing a filtered
            # candidate list instead would let a tripped breaker change
            # the cursor's meaning and skew which survivors absorb the
            # traffic.
            n = len(instances)
            start = self._next
            if start >= n:
                start %= n
            # First probe inlined: in the healthy steady state the cursor
            # replica accepts and no modulo arithmetic is needed.
            instance = instances[start]
            if instance.accepting and (
                    instance.breaker is None
                    or instance.breaker.available(now)):
                self._next = start + 1 if start + 1 < n else 0
                return instance
            for offset in range(1, n):
                position = (start + offset) % n
                instance = instances[position]
                if instance.accepting and (
                        instance.breaker is None
                        or instance.breaker.available(now)):
                    self._next = (position + 1) % n
                    return instance
            if any(i.accepting for i in instances):
                raise ServiceUnavailableError(
                    f"service {self.service_name!r}: every replica's "
                    f"circuit breaker is open")
            # Total outage: keep rotating over the dead set so shedding
            # preserves the caller-visible rejection.
            position = start % n
            self._next = (position + 1) % n
            return instances[position]
        candidates = [i for i in instances
                      if i.accepting and (i.breaker is None
                                          or i.breaker.available(now))]
        if not candidates:
            if any(i.accepting for i in instances):
                raise ServiceUnavailableError(
                    f"service {self.service_name!r}: every replica's "
                    f"circuit breaker is open")
            candidates = instances
        # least_outstanding: fewest requests in flight; ties to the
        # lowest-index replica for determinism.
        return min(candidates, key=lambda i: (i.outstanding, i.instance_id))

    def __repr__(self) -> str:
        return (f"<LoadBalancer {self.service_name!r} {self.policy} "
                f"{len(self._instances)} instances>")
