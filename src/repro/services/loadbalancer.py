"""Replica selection policies."""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.services.instance import ServiceInstance

#: Valid policy names for :class:`LoadBalancer`.
POLICIES = ("round_robin", "least_outstanding")


class LoadBalancer:
    """Chooses the replica that serves each request for one service.

    ``round_robin`` matches TeaStore's default (its WebUI iterates the
    registry's instance list); ``least_outstanding`` is the stronger
    baseline useful for sensitivity studies.
    """

    def __init__(self, service_name: str, policy: str = "round_robin"):
        if policy not in POLICIES:
            raise ConfigurationError(
                f"unknown load-balancing policy {policy!r}; "
                f"choose from {POLICIES}")
        self.service_name = service_name
        self.policy = policy
        self._instances: list["ServiceInstance"] = []
        self._next = 0

    @property
    def instances(self) -> list["ServiceInstance"]:
        """Registered replicas (in registration order)."""
        return list(self._instances)

    def add(self, instance: "ServiceInstance") -> None:
        """Register one replica."""
        self._instances.append(instance)

    def remove(self, instance: "ServiceInstance") -> None:
        """Deregister one replica (it must be present)."""
        try:
            self._instances.remove(instance)
        except ValueError:
            raise ConfigurationError(
                f"instance {instance!r} is not registered with "
                f"{self.service_name!r}") from None
        self._next = 0

    def pick(self) -> "ServiceInstance":
        """Choose the replica for the next request."""
        if not self._instances:
            raise ConfigurationError(
                f"service {self.service_name!r} has no instances")
        if self.policy == "round_robin":
            instance = self._instances[self._next % len(self._instances)]
            self._next += 1
            return instance
        # least_outstanding: fewest requests in flight; ties to the
        # lowest-index replica for determinism.
        return min(self._instances, key=lambda i: (i.outstanding, i.instance_id))

    def __repr__(self) -> str:
        return (f"<LoadBalancer {self.service_name!r} {self.policy} "
                f"{len(self._instances)} instances>")
