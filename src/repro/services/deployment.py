"""The system under test: machine + scheduler + memory model + services."""

from __future__ import annotations

import typing as t

from repro._errors import (
    ConfigurationError,
    DeadlineExceededError,
    ServiceUnavailableError,
)
from repro.cpu.frequency import FrequencyModel
from repro.cpu.scheduler import make_scheduler
from repro.cpu.smt import SmtModel
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystemModel
from repro.metrics.resilience import ResilienceStats
from repro.services.instance import ServiceInstance
from repro.services.registry import ServiceRegistry
from repro.services.request import Request
from repro.services.resilience import (
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
)
from repro.services.rpc import RpcFabric
from repro.services.spec import ServiceSpec
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rand import RandomStreams
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine

#: Sentinel distinguishing "no fallback registered" from ``None``.
_NO_FALLBACK = object()


class Deployment:
    """Wires all substrates together and hosts service instances.

    One :class:`Deployment` is one experimental configuration: a machine,
    the online CPU set, SMT/frequency/memory models, and a set of placed
    service replicas.  Experiments construct a fresh deployment per
    configuration (nothing is hot-swapped mid-run).
    """

    def __init__(self, machine: Machine,
                 online: CpuSet | None = None,
                 seed: int = 0,
                 smt_model: SmtModel | None = None,
                 frequency_model: FrequencyModel | None = None,
                 memory_config: MemoryConfig | None = None,
                 counter_sink: t.Any | None = None,
                 rpc: RpcFabric | None = None,
                 lb_policy: str = "round_robin",
                 resilience: ResilienceConfig | None = None):
        self.sim = Simulator()
        self.machine = machine
        self.streams = RandomStreams(seed)
        #: Whether the compiled model layer (C scheduler core + C worker
        #: machines) is active.  Resolved once per deployment from the
        #: same selection the kernel backend uses, so a deployment is
        #: all-compiled or all-reference — never a mix.
        from repro.sim.kernel import model_available
        self.compiled_model = (self.sim.kernel_backend == "compiled"
                               and model_available())
        self.memory_model = MemorySystemModel(
            machine, memory_config, counter_sink=counter_sink)
        self.scheduler = make_scheduler(
            self.sim, machine, online=online,
            smt_model=smt_model,
            frequency_model=frequency_model,
            perf_model=self.memory_model,
            compiled=self.compiled_model)
        self.rpc = rpc or RpcFabric(self.sim)
        if self.rpc.sim is not self.sim:
            raise ConfigurationError(
                "rpc fabric must be built on the deployment's simulator")
        self.registry = ServiceRegistry(default_policy=lb_policy)
        self.instances: list[ServiceInstance] = []
        #: Active resilience policy, or ``None`` when the config is
        #: absent/inert — the plain dispatch path is then used verbatim.
        self.resilience = (resilience if resilience is not None
                           and resilience.active else None)
        #: Counters kept by the resilient dispatch path (always present
        #: so callers can read it unconditionally).
        self.resilience_stats = ResilienceStats()
        self._retry_policy = (RetryPolicy(self.resilience, self.streams)
                              if self.resilience is not None else None)
        #: Service name → spec, recorded at first placement so fallbacks
        #: resolve even when every replica of a service is dead.
        self.specs: dict[str, ServiceSpec] = {}
        #: Every breaker ever attached (kills don't remove them), for
        #: whole-run telemetry such as E13's trip counts.
        self.breakers: list[CircuitBreaker] = []
        #: Optional :class:`repro.tracing.TraceCollector`; when set, every
        #: completed request is recorded as a span.
        self.tracer = None

    @property
    def online(self) -> CpuSet:
        """Online logical CPUs of this configuration."""
        return self.scheduler.online

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def add_instance(self, spec: ServiceSpec,
                     affinity: CpuSet | None = None,
                     home_node: int | None = None) -> ServiceInstance:
        """Place one replica of ``spec``.

        ``affinity`` defaults to every online CPU (the unpinned baseline);
        ``home_node`` defaults to the NUMA node of the lowest CPU in the
        mask (first-touch allocation).
        """
        affinity = affinity if affinity is not None else self.online
        effective = affinity & self.online
        if not effective:
            raise ConfigurationError(
                f"{spec.name}: affinity {affinity.to_string()!r} has no "
                f"online CPU")
        if home_node is None:
            home_node = self.machine.cpu(effective.first()).node.index
        instance = ServiceInstance(self, spec, effective, home_node,
                                   local_id=len(self.instances))
        self.specs.setdefault(spec.name, spec)
        if self.resilience is not None and self.resilience.breaker_enabled:
            instance.breaker = CircuitBreaker.from_config(self.resilience)
            self.breakers.append(instance.breaker)
        self.registry.register(instance)
        self.memory_model.register_for_affinity(instance.group)
        self.instances.append(instance)
        return instance

    def remove_instance(self, instance: ServiceInstance) -> None:
        """Tear one replica down (registry + memory residency)."""
        self.registry.deregister(instance)
        self.memory_model.deregister(instance.group)
        self.instances.remove(instance)

    def groups(self):
        """All replicas' task groups (for utilization probes)."""
        return [instance.group for instance in self.instances]

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def dispatch(self, service_name: str, endpoint: str,
                 payload: object = None,
                 parent: Request | None = None, *,
                 protected: bool = True) -> Event:
        """Route one request to a replica; returns its completion event.

        With an active resilience config the call goes through the
        resilient path: a per-call deadline spanning all attempts,
        caller-side retries under the retry budget, circuit-breaker
        consultation, and (when the target spec registered one) a
        degradation fallback.  Without one, this is a single
        fire-and-forget delivery, exactly as before.

        ``protected=False`` forces the plain path even when resilience
        is configured.  Load generators use it: the resilience layer
        protects *inter-service* RPCs, while the client edge stays
        outside the fabric — exactly like browsers hitting a datacenter
        — so measured end-to-end latency reflects what the internal
        policies deliver rather than client-side request-killing.
        """
        if self.resilience is None or not protected:
            now = self.sim.now
            done = Event(self.sim)
            request = Request(service_name, endpoint, done, payload=payload,
                              parent=parent, created_at=now)
            instance = self.registry.lookup(service_name, now=now)
            self.rpc.deliver(request, instance)
            return done
        if not self.registry.has_service(service_name):
            raise ConfigurationError(
                f"no such service: {service_name!r}; "
                f"known: {self.registry.service_names}")
        outer = self.sim.event()
        self.sim.process(self._resilient_call(
            service_name, endpoint, payload, parent, outer))
        return outer

    def _fallback_for(self, service_name: str, endpoint: str) -> object:
        """The registered fallback payload, or the no-fallback sentinel."""
        spec = self.specs.get(service_name)
        if spec is None or not spec.has_fallback(endpoint):
            return _NO_FALLBACK
        return spec.fallback_for(endpoint)

    def _resilient_call(self, service_name: str, endpoint: str,
                        payload: object, parent: Request | None,
                        outer: Event) -> t.Generator:
        """One logical call: attempts, backoff, breakers, degradation.

        ``outer`` resolves exactly once — with the response, with a
        fallback payload (degraded), or with the last attempt's failure.

        The deadline spans the *whole logical call* (gRPC semantics),
        not each attempt: an attempt that burns the budget waiting is
        terminal, while fast failures — shed at a dead replica, every
        breaker open, the service deregistered — leave the budget intact
        and are worth retrying.  This is what keeps retry storms from
        multiplying the very timeouts they are meant to mask.
        """
        config = t.cast(ResilienceConfig, self.resilience)
        policy = t.cast(RetryPolicy, self._retry_policy)
        stats = self.resilience_stats
        stats.calls += 1
        deadline = (self.sim.now + config.timeout
                    if config.timeout is not None else None)
        attempt = 0
        last_error: Exception = ConfigurationError(
            f"call to {service_name}/{endpoint} never attempted")
        while True:
            attempt += 1
            stats.attempts += 1
            done = self.sim.event()
            request = Request(service_name, endpoint, done, payload=payload,
                              parent=parent, created_at=self.sim.now,
                              attempt=attempt, deadline=deadline)
            instance: ServiceInstance | None = None
            failure: Exception | None = None
            try:
                instance = self.registry.lookup(service_name,
                                                now=self.sim.now)
            except ConfigurationError as exc:
                # The service is known but every replica is gone.
                failure = exc
                stats.failures += 1
            except ServiceUnavailableError as exc:
                # Every accepting replica is circuit-open: fail fast.
                failure = exc
                stats.breaker_rejected += 1
            if instance is not None:
                if instance.breaker is not None:
                    instance.breaker.note_dispatch(self.sim.now)
                self.rpc.deliver(request, instance)
                value: object = None
                if deadline is None:
                    try:
                        value = yield done
                    except Exception as exc:
                        failure = exc
                        stats.failures += 1
                else:
                    race = done | self.sim.timeout(deadline - self.sim.now)
                    try:
                        winners = t.cast(dict, (yield race))
                    except Exception as exc:
                        failure = exc
                        stats.failures += 1
                    else:
                        if done in winners:
                            value = winners[done]
                        else:
                            stats.timeouts += 1
                            failure = DeadlineExceededError(
                                f"{service_name}/{endpoint} missed its "
                                f"{config.timeout}s deadline "
                                f"(attempt {attempt})")
                if failure is None:
                    stats.successes += 1
                    if instance.breaker is not None:
                        instance.breaker.record_success(self.sim.now)
                    outer.succeed(value)
                    return
                if instance.breaker is not None:
                    instance.breaker.record_failure(self.sim.now)
            last_error = t.cast(Exception, failure)
            if deadline is not None and self.sim.now >= deadline:
                break  # budget burned; the deadline covers all attempts
            if not policy.should_retry(attempt, stats):
                break
            delay = policy.backoff(service_name, attempt)
            if deadline is not None and self.sim.now + delay >= deadline:
                break  # backing off would outlive the deadline
            stats.retries += 1
            if delay > 0:
                yield self.sim.timeout(delay)
        if config.degradation:
            fallback = self._fallback_for(service_name, endpoint)
            if fallback is not _NO_FALLBACK:
                stats.degraded += 1
                outer.succeed(fallback)
                return
        stats.errors += 1
        outer.fail(last_error)

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)
