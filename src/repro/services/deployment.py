"""The system under test: machine + scheduler + memory model + services."""

from __future__ import annotations

import typing as t

from repro._errors import ConfigurationError
from repro.cpu.frequency import FrequencyModel
from repro.cpu.scheduler import CpuScheduler
from repro.cpu.smt import SmtModel
from repro.memory.config import MemoryConfig
from repro.memory.system import MemorySystemModel
from repro.services.instance import ServiceInstance
from repro.services.registry import ServiceRegistry
from repro.services.request import Request
from repro.services.rpc import RpcFabric
from repro.services.spec import ServiceSpec
from repro.sim.engine import Simulator
from repro.sim.events import Event
from repro.sim.rand import RandomStreams
from repro.topology.cpuset import CpuSet
from repro.topology.model import Machine


class Deployment:
    """Wires all substrates together and hosts service instances.

    One :class:`Deployment` is one experimental configuration: a machine,
    the online CPU set, SMT/frequency/memory models, and a set of placed
    service replicas.  Experiments construct a fresh deployment per
    configuration (nothing is hot-swapped mid-run).
    """

    def __init__(self, machine: Machine,
                 online: CpuSet | None = None,
                 seed: int = 0,
                 smt_model: SmtModel | None = None,
                 frequency_model: FrequencyModel | None = None,
                 memory_config: MemoryConfig | None = None,
                 counter_sink: t.Any | None = None,
                 rpc: RpcFabric | None = None,
                 lb_policy: str = "round_robin"):
        self.sim = Simulator()
        self.machine = machine
        self.streams = RandomStreams(seed)
        self.memory_model = MemorySystemModel(
            machine, memory_config, counter_sink=counter_sink)
        self.scheduler = CpuScheduler(
            self.sim, machine, online=online,
            smt_model=smt_model,
            frequency_model=frequency_model,
            perf_model=self.memory_model)
        self.rpc = rpc or RpcFabric(self.sim)
        if self.rpc.sim is not self.sim:
            raise ConfigurationError(
                "rpc fabric must be built on the deployment's simulator")
        self.registry = ServiceRegistry(default_policy=lb_policy)
        self.instances: list[ServiceInstance] = []
        #: Optional :class:`repro.tracing.TraceCollector`; when set, every
        #: completed request is recorded as a span.
        self.tracer = None

    @property
    def online(self) -> CpuSet:
        """Online logical CPUs of this configuration."""
        return self.scheduler.online

    # ------------------------------------------------------------------
    # Instance management
    # ------------------------------------------------------------------
    def add_instance(self, spec: ServiceSpec,
                     affinity: CpuSet | None = None,
                     home_node: int | None = None) -> ServiceInstance:
        """Place one replica of ``spec``.

        ``affinity`` defaults to every online CPU (the unpinned baseline);
        ``home_node`` defaults to the NUMA node of the lowest CPU in the
        mask (first-touch allocation).
        """
        affinity = affinity if affinity is not None else self.online
        effective = affinity & self.online
        if not effective:
            raise ConfigurationError(
                f"{spec.name}: affinity {affinity.to_string()!r} has no "
                f"online CPU")
        if home_node is None:
            home_node = self.machine.cpu(effective.first()).node.index
        instance = ServiceInstance(self, spec, effective, home_node,
                                   local_id=len(self.instances))
        self.registry.register(instance)
        self.memory_model.register_for_affinity(instance.group)
        self.instances.append(instance)
        return instance

    def remove_instance(self, instance: ServiceInstance) -> None:
        """Tear one replica down (registry + memory residency)."""
        self.registry.deregister(instance)
        self.memory_model.deregister(instance.group)
        self.instances.remove(instance)

    def groups(self):
        """All replicas' task groups (for utilization probes)."""
        return [instance.group for instance in self.instances]

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------
    def dispatch(self, service_name: str, endpoint: str,
                 payload: object = None,
                 parent: Request | None = None) -> Event:
        """Route one request to a replica; returns its completion event."""
        done = self.sim.event()
        request = Request(service_name, endpoint, done, payload=payload,
                          parent=parent, created_at=self.sim.now)
        instance = self.registry.lookup(service_name)
        self.rpc.deliver(request, instance)
        return done

    def run(self, until: float | None = None) -> None:
        """Advance the simulation."""
        self.sim.run(until=until)
